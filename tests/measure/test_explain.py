"""Execution explanation reports."""

import pytest

from repro.kernels import Daxpy, Dgemm, Dot, StridedSum
from repro.machine.presets import tiny_test_machine
from repro.measure import explain_kernel


class TestExplain:
    def test_streaming_kernel_is_dram_bound_cold(self):
        machine = tiny_test_machine()
        report = explain_kernel(machine, Daxpy(), 16384, protocol="cold")
        assert report.dominant_bound == "dram_bandwidth"
        assert report.share("dram_bandwidth") > 0.9
        assert report.memory_events["dram_reads"] > 0

    def test_l1_resident_kernel_is_issue_bound_warm(self):
        machine = tiny_test_machine()
        report = explain_kernel(machine, Daxpy(), 64, protocol="warm")
        assert report.dominant_bound == "mem_issue"
        assert report.memory_events["dram_reads"] == 0

    def test_single_accumulator_dot_is_chain_bound(self):
        machine = tiny_test_machine()
        report = explain_kernel(machine, Dot(accumulators=1), 128,
                                protocol="warm")
        assert report.dominant_bound == "dependency_chain"

    def test_tiled_dgemm_is_fp_bound(self):
        machine = tiny_test_machine()
        report = explain_kernel(machine, Dgemm(variant="tiled"), 32,
                                protocol="warm")
        assert report.dominant_bound == "fp_issue"

    def test_render_mentions_the_bound(self):
        machine = tiny_test_machine()
        report = explain_kernel(machine, Daxpy(), 8192, protocol="cold")
        text = report.render()
        assert "bound by" in text
        assert "dram_bandwidth" in text
        assert "DRAM traffic" in text

    def test_tlb_walks_reported_for_sparse_walks(self):
        machine = tiny_test_machine()
        report = explain_kernel(machine, StridedSum(stride_elems=512),
                                2048, protocol="cold")
        assert report.memory_events["tlb_misses"] > 1000

    def test_shares_sum_to_one(self):
        machine = tiny_test_machine()
        report = explain_kernel(machine, Daxpy(), 4096, protocol="cold")
        total = sum(
            report.share(bound) for bound in report.dominant_cycles
        )
        assert total == pytest.approx(1.0)
