"""Protocol/machine lifecycle edge cases."""

import pytest

from repro.kernels import Daxpy
from repro.machine.presets import tiny_test_machine
from repro.measure import ColdCache, measure_kernel


class TestBusterReuse:
    def test_buster_loaded_once_per_machine(self, tiny):
        protocol = ColdCache(method="sweep")
        before = tiny.allocator.bytes_allocated
        protocol.prepare(tiny, lambda: None)
        after_first = tiny.allocator.bytes_allocated
        protocol.prepare(tiny, lambda: None)
        assert tiny.allocator.bytes_allocated == after_first
        assert after_first > before

    def test_buster_per_machine_isolation(self):
        protocol = ColdCache(method="sweep")
        a = tiny_test_machine()
        b = tiny_test_machine()
        protocol.prepare(a, lambda: None)
        protocol.prepare(b, lambda: None)
        assert len(protocol._busters) == 2

    def test_buster_resets_prefetcher_training(self, tiny):
        port = tiny.hierarchy.port(0)
        port.access_lines(list(range(32)), is_write=False)
        ColdCache(method="sweep").prepare(tiny, lambda: None)
        for engine in tiny.hierarchy.prefetchers_of(0):
            assert engine.stats.issued == 0


class TestRepeatedMeasurements:
    def test_many_measurements_on_one_machine_are_stable(self, tiny):
        values = [
            measure_kernel(tiny, Daxpy(), 4096, protocol="cold",
                           reps=1).performance
            for _ in range(3)
        ]
        spread = (max(values) - min(values)) / values[0]
        assert spread < 0.05

    def test_cold_and_warm_interleave_cleanly(self, tiny):
        cold1 = measure_kernel(tiny, Daxpy(), 4096, protocol="cold", reps=1)
        warm = measure_kernel(tiny, Daxpy(), 64, protocol="warm", reps=1)
        cold2 = measure_kernel(tiny, Daxpy(), 4096, protocol="cold", reps=1)
        assert cold2.performance == pytest.approx(cold1.performance,
                                                  rel=0.05)
        assert warm.work_overcount == pytest.approx(1.0, abs=0.05)

    def test_parallel_traffic_counts_both_cores(self, tiny):
        m = measure_kernel(tiny, Daxpy(), 16384, protocol="cold",
                           cores=(0, 1), reps=1)
        # both ranks' compulsory traffic is present
        assert m.traffic_bytes > 0.7 * m.compulsory_bytes
        assert m.work_flops > m.true_flops  # cold overcount on both
