"""Measurement methodology: protocols, subtraction, statistics."""

import pytest

from repro.errors import MeasurementError
from repro.kernels import Daxpy, Dgemm, StreamTriad
from repro.machine.presets import tiny_test_machine
from repro.measure import (
    ColdCache,
    WarmCache,
    build_init_program,
    make_protocol,
    measure_kernel,
    measure_sweep,
    relative_error,
    summarize,
)


class TestStats:
    def test_summary_fields(self):
        summary = summarize([3.0, 1.0, 2.0])
        assert summary.median == 2.0
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.count == 3
        assert summary.spread == 1.0

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            summarize([])

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.10)
        with pytest.raises(MeasurementError):
            relative_error(1.0, 0.0)


class TestProtocols:
    def test_make_protocol(self):
        assert isinstance(make_protocol("cold"), ColdCache)
        assert isinstance(make_protocol("warm"), WarmCache)
        proto = WarmCache(warmups=2)
        assert make_protocol(proto) is proto
        with pytest.raises(MeasurementError):
            make_protocol("lukewarm")

    def test_cold_drop_empties_caches(self, tiny):
        from tests.conftest import build_triad
        loaded = tiny.load(build_triad(256))
        tiny.run(loaded, core_id=0)
        ColdCache(method="drop").prepare(tiny, lambda: None)
        assert tiny.hierarchy.l1[0].occupancy() == 0

    def test_cold_sweep_evicts_kernel_data(self, tiny):
        from tests.conftest import build_triad
        program = build_triad(64)  # 1 KiB: would stay L1-resident
        loaded = tiny.load(program)
        tiny.run(loaded, core_id=0)
        x_line = loaded.buffer_map["x"].base // 64
        assert tiny.hierarchy.l1[0].contains(x_line)
        ColdCache(method="sweep").prepare(tiny, lambda: None)
        assert not tiny.hierarchy.l1[0].contains(x_line)
        assert not tiny.hierarchy.l3[0].contains(x_line)

    def test_warm_runs_kernel(self, tiny):
        calls = []
        WarmCache(warmups=3).prepare(tiny, lambda: calls.append(1))
        assert len(calls) == 3

    def test_warm_requires_positive_warmups(self):
        with pytest.raises(MeasurementError):
            WarmCache(warmups=0)

    def test_bad_cold_method(self):
        with pytest.raises(MeasurementError):
            ColdCache(method="reboot")


class TestInitProgram:
    def test_touches_every_line(self):
        program = build_init_program({"x": 4096, "y": 130})
        counts = program.static_counts()
        assert counts.stores == 4096 // 64 + 2 + 1  # y: 2 line stores + tail
        program.check_bounds()

    def test_tiny_buffer(self):
        program = build_init_program({"x": 8})
        assert program.static_counts().stores == 1


class TestMeasureKernel:
    def test_warm_measurement_is_exact(self, tiny):
        m = measure_kernel(tiny, Daxpy(), 64, protocol="warm", reps=2)
        assert m.work_overcount == pytest.approx(1.0, abs=0.02)
        assert m.true_flops == 128
        assert m.protocol == "warm"
        assert m.runtime_seconds > 0

    def test_cold_measurement_overcounts(self, tiny):
        m = measure_kernel(tiny, Daxpy(), 8192, protocol="cold", reps=1)
        assert m.work_overcount > 1.3
        assert m.traffic_bytes > 0.7 * m.compulsory_bytes

    def test_subtraction_removes_setup_traffic(self, tiny):
        """Measured Q must be close to the kernel's own traffic, far
        below the raw session traffic that includes init stores."""
        n = 8192
        m = measure_kernel(tiny, Daxpy(), n, protocol="cold", reps=1)
        assert m.traffic_bytes < 1.5 * m.compulsory_bytes

    def test_parallel_measurement(self, tiny):
        m = measure_kernel(tiny, Daxpy(), 8192, protocol="cold",
                           cores=(0, 1), reps=1)
        assert m.threads == 2
        assert m.true_flops == 2 * 8192

    def test_reps_validated(self, tiny):
        with pytest.raises(MeasurementError):
            measure_kernel(tiny, Daxpy(), 64, reps=0)

    def test_measurement_derived_properties(self, tiny):
        m = measure_kernel(tiny, Daxpy(), 4096, protocol="cold", reps=1)
        assert m.performance == m.true_flops / m.runtime_seconds
        assert m.intensity == pytest.approx(
            m.true_flops / max(m.traffic_bytes, 64.0))
        assert m.traffic_ratio == m.traffic_bytes / m.compulsory_bytes
        assert "daxpy" in m.label()

    def test_zero_traffic_intensity_floored(self, tiny):
        m = measure_kernel(tiny, Daxpy(), 64, protocol="warm", reps=1)
        assert m.intensity <= m.true_flops / 64.0

    def test_llc_bytes_populated(self, tiny):
        tiny.prefetch_control.disable_all()
        m = measure_kernel(tiny, Daxpy(), 8192, protocol="cold", reps=1)
        # prefetch off: LLC demand misses carry all the read traffic
        assert m.llc_bytes == pytest.approx(16 * 8192, rel=0.05)

    def test_sweep(self, tiny):
        ms = measure_sweep(tiny, Daxpy(), [64, 128], protocol="warm", reps=1)
        assert [m.n for m in ms] == [64, 128]

    def test_summaries_attached(self, tiny):
        m = measure_kernel(tiny, Daxpy(), 256, protocol="warm", reps=3)
        assert m.work_summary.count == 3
        assert m.runtime_summary.count == 3
