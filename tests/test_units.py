"""Unit helpers: formatting, size math, statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestFormatting:
    def test_format_bytes_binary_suffixes(self):
        assert units.format_bytes(512) == "512 B"
        assert units.format_bytes(2048) == "2.00 KiB"
        assert units.format_bytes(3 * units.MIB) == "3.00 MiB"
        assert units.format_bytes(units.GIB) == "1.00 GiB"

    def test_format_bytes_negative(self):
        assert units.format_bytes(-2048) == "-2.00 KiB"

    def test_format_flops(self):
        assert units.format_flops(2.5e9) == "2.50 Gflop/s"
        assert units.format_flops(3e6) == "3.00 Mflop/s"
        assert units.format_flops(10.0) == "10.0 flop/s"

    def test_format_bandwidth(self):
        assert units.format_bandwidth(51.2e9) == "51.20 GB/s"
        assert units.format_bandwidth(2e6) == "2.00 MB/s"

    def test_format_time_units(self):
        assert units.format_time(2.0) == "2.000 s"
        assert units.format_time(3e-3) == "3.000 ms"
        assert units.format_time(4.5e-6) == "4.500 us"
        assert units.format_time(7e-9) == "7.0 ns"

    def test_format_intensity(self):
        assert "F/B" in units.format_intensity(0.0833)


class TestPowerOfTwo:
    def test_is_power_of_two(self):
        assert units.is_power_of_two(1)
        assert units.is_power_of_two(4096)
        assert not units.is_power_of_two(0)
        assert not units.is_power_of_two(12)
        assert not units.is_power_of_two(-8)

    def test_log2_int_exact(self):
        assert units.log2_int(1) == 0
        assert units.log2_int(1024) == 10

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ValueError):
            units.log2_int(12)

    @given(st.integers(min_value=0, max_value=50))
    def test_log2_roundtrip(self, exp):
        assert units.log2_int(2 ** exp) == exp


class TestRounding:
    def test_round_up(self):
        assert units.round_up(0, 64) == 0
        assert units.round_up(1, 64) == 64
        assert units.round_up(64, 64) == 64
        assert units.round_up(65, 64) == 128

    def test_round_up_rejects_bad_multiple(self):
        with pytest.raises(ValueError):
            units.round_up(10, 0)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=4096))
    def test_round_up_properties(self, value, multiple):
        rounded = units.round_up(value, multiple)
        assert rounded >= value
        assert rounded % multiple == 0
        assert rounded - value < multiple


class TestSizeSeries:
    def test_geometric_sizes_endpoints(self):
        sizes = units.geometric_sizes(10, 1000)
        assert sizes[0] == 10
        assert sizes[-1] == 1000
        assert sizes == sorted(sizes)

    def test_geometric_sizes_strictly_increasing(self):
        sizes = units.geometric_sizes(1, 10, per_decade=20)
        assert len(set(sizes)) == len(sizes)

    def test_geometric_sizes_rejects_bad_range(self):
        with pytest.raises(ValueError):
            units.geometric_sizes(10, 5)
        with pytest.raises(ValueError):
            units.geometric_sizes(0, 5)

    def test_pow2_sizes(self):
        assert units.pow2_sizes(3, 6) == [8, 16, 32, 64]
        assert units.pow2_sizes(2, 8, step=2) == [4, 16, 64, 256]

    def test_pow2_sizes_rejects_inverted(self):
        with pytest.raises(ValueError):
            units.pow2_sizes(5, 3)


class TestStats:
    def test_mean(self):
        assert units.mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            units.mean([])

    def test_median_odd_even(self):
        assert units.median([3, 1, 2]) == 2
        assert units.median([4, 1, 2, 3]) == 2.5

    def test_geomean(self):
        assert math.isclose(units.geomean([1, 100]), 10.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.geomean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=50))
    def test_median_within_range(self, values):
        med = units.median(values)
        assert min(values) <= med <= max(values)
