"""The ``repro sweep --live`` dashboard, rendered against a fake stream.

The dashboard only *reads*: its numbers come from the metrics registry
(latency histogram, queue-depth gauge) plus the executor's ``on_point``
callback.  These tests drive it with a StringIO (non-TTY path) and a
manual clock, so rendering is deterministic and nothing sleeps.
"""

import io

from repro.obs.dashboard import SweepDashboard
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


def make_dash(total=4, jobs=2, registry=None):
    clock = FakeClock()
    stream = io.StringIO()
    dash = SweepDashboard(total=total, jobs=jobs, stream=stream,
                          registry=registry or MetricsRegistry(),
                          clock=clock)
    return dash, stream, clock


class TestLines:
    def test_progress_and_hit_accounting(self):
        dash, _stream, clock = make_dash(total=4)
        dash.update(1, 4, None, "miss")
        clock.tick(1.0)
        dash.update(2, 4, None, "hit")
        rows = dash.lines()
        assert "2/4 points" in rows[0]
        assert "(50%)" in rows[0]
        assert "1 hit(s), 1 simulated (50% hit rate)" in rows[1]

    def test_zero_total_never_divides(self):
        dash, _stream, _clock = make_dash(total=0)
        rows = dash.lines()
        assert "0/0 points" in rows[0]

    def test_latency_percentiles_appear_with_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_sweep_point_seconds", "latency",
                                  buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        dash, _stream, _clock = make_dash(registry=registry)
        latency = [row for row in dash.lines() if "point latency" in row]
        assert latency, "observed histogram should produce a latency row"
        assert "p50<=1s" in latency[0]
        assert "p99<=10s" in latency[0]

    def test_no_latency_row_without_observations(self):
        dash, _stream, _clock = make_dash()
        assert not [row for row in dash.lines() if "point latency" in row]

    def test_queue_depth_and_worker_occupancy(self):
        registry = MetricsRegistry()
        registry.gauge("repro_sweep_executor_queue_depth",
                       "depth").set(5.0)
        dash, _stream, _clock = make_dash(jobs=2, registry=registry)
        pool = [row for row in dash.lines() if "pool:" in row][0]
        assert "queue depth 5" in pool
        assert "~2/2 worker(s) busy" in pool  # occupancy caps at jobs


class TestNonTtyRendering:
    def test_progress_lines_then_full_block_at_close(self):
        dash, stream, clock = make_dash(total=2)
        dash.update(1, 2, None, "miss")
        clock.tick(1.0)
        dash.update(2, 2, None, "hit")
        dash.close()
        out = stream.getvalue()
        assert "sweep [" in out
        assert "cache: 1 hit(s)" in out  # full block rendered at the end
        assert "\x1b[" not in out  # no ANSI control on a plain pipe

    def test_update_rate_limit_coalesces_paints(self):
        dash, stream, clock = make_dash(total=10)
        for done in range(1, 9):
            dash.update(done, 10, None, "miss")  # same instant: 1 paint
        painted = stream.getvalue().count("sweep [")
        assert painted == 1
        clock.tick(1.0)
        dash.update(9, 10, None, "miss")
        assert stream.getvalue().count("sweep [") == painted + 1

    def test_close_is_idempotent(self):
        dash, stream, _clock = make_dash(total=1)
        dash.update(1, 1, None, "miss")
        dash.close()
        once = stream.getvalue()
        dash.close()
        assert stream.getvalue() == once

    def test_broken_stream_never_raises(self):
        dash, stream, _clock = make_dash(total=1)
        stream.close()
        dash.update(1, 1, None, "miss")  # paints into a closed stream
        dash.close()
