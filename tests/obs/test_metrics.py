"""MetricsRegistry semantics: kinds, labels, absorption, JSON export."""

import pytest

from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("hits_total", "hits")
        c.inc()
        c.inc(2)
        assert c.value() == 3.0

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("hits_total", "hits")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_series_are_independent(self, registry):
        c = registry.counter("lookups_total", "lookups",
                             labelnames=("outcome",))
        c.inc(3, outcome="hit")
        c.inc(1, outcome="miss")
        assert c.value(outcome="hit") == 3.0
        assert c.value(outcome="miss") == 1.0

    def test_wrong_label_set_rejected(self, registry):
        c = registry.counter("lookups_total", "lookups",
                             labelnames=("outcome",))
        with pytest.raises(ValueError):
            c.inc(1, engine="stride")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth", "queue depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4.0


class TestHistogram:
    def test_observe_counts_and_sum(self, registry):
        h = registry.histogram("lat_seconds", "latency",
                               buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(100.0)  # beyond the last bound -> +Inf bucket
        assert h.count() == 3
        assert h.sum() == pytest.approx(100.55)

    def test_mean_none_with_no_observations(self, registry):
        h = registry.histogram("lat_seconds", "latency", buckets=(1.0,))
        doc = h.to_json_doc()
        assert doc["series"][0]["count"] == 0
        assert doc["series"][0]["mean"] is None


class TestRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        a = registry.counter("x_total", "x")
        b = registry.counter("x_total", "different help ignored")
        assert a is b
        assert len(registry) == 1

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_contains_and_get(self, registry):
        registry.gauge("g", "g")
        assert "g" in registry
        assert registry.get("g").kind == "gauge"
        assert registry.get("missing") is None

    def test_reset(self, registry):
        registry.counter("x_total", "x").inc()
        registry.reset()
        assert len(registry) == 0


class TestAbsorption:
    def test_absorb_plan_cache(self, registry):
        registry.absorb_plan_cache({
            "hits": 7, "misses": 3, "hit_rate": 0.7,
            "built_segments": 3, "built_lines": 120, "flushes": 1,
        })
        lookups = registry.get("repro_plan_cache_lookups_total")
        assert lookups.value(outcome="hit") == 7
        assert lookups.value(outcome="miss") == 3
        built = registry.get("repro_plan_cache_built_total")
        assert built.value(unit="lines") == 120
        assert registry.get("repro_plan_cache_hit_rate").value() == 0.7

    def test_absorb_sweep_stats(self, registry):
        registry.absorb_sweep_stats({
            "points": 4, "hits": 1, "misses": 3, "corrupt": 0,
            "hit_rate": 0.25, "elapsed_seconds": 1.5,
        })
        points = registry.get("repro_sweep_points_total")
        assert points.value(outcome="miss") == 3
        assert registry.get("repro_sweep_elapsed_seconds").value() == 1.5

    def test_absorption_is_cumulative_across_runs(self, registry):
        doc = {"hits": 2, "misses": 1, "hit_rate": 2 / 3,
               "built_segments": 1, "built_lines": 10, "flushes": 0}
        registry.absorb_plan_cache(doc)
        registry.absorb_plan_cache(doc)
        assert registry.get(
            "repro_plan_cache_lookups_total").value(outcome="hit") == 4

    def test_json_doc_shape(self, registry):
        registry.counter("c_total", "c").inc()
        registry.histogram("h_seconds", "h", buckets=(1.0,)).observe(0.5)
        doc = registry.to_json_doc()
        assert doc["c_total"]["kind"] == "counter"
        assert doc["h_seconds"]["series"][0]["count"] == 1
