"""Exporter edge cases (satellite of PR 6).

Empty trace, single-window timeline, zero-observation registry, empty
span profiler: every export path must produce valid, non-NaN output
rather than crash or emit malformed documents.
"""

import json
import math

import pytest

from repro.machine.presets import tiny_test_machine
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanProfiler
from repro.trace import (
    TimelineConfig,
    TraceCollector,
    timeline_from_events,
    to_chrome_trace,
    to_prometheus,
)
from .test_prometheus_format import check_exposition


def _no_nan(node):
    """Recursively assert no NaN/Inf float anywhere in a JSON doc."""
    if isinstance(node, dict):
        for v in node.values():
            _no_nan(v)
    elif isinstance(node, (list, tuple)):
        for v in node:
            _no_nan(v)
    elif isinstance(node, float):
        assert math.isfinite(node), f"non-finite float leaked: {node}"


class TestEmptyTrace:
    def test_chrome_trace_of_no_events(self):
        doc = to_chrome_trace([])
        # only the process_name metadata — but a valid document
        assert doc["traceEvents"][0]["ph"] == "M"
        json.dumps(doc)  # serializable
        _no_nan(doc)

    def test_prometheus_of_empty_collector_summary(self):
        collector = TraceCollector(tiny_test_machine())
        text = to_prometheus(collector.summary())
        check_exposition(text)
        assert "NaN" not in text

    def test_empty_collector_chrome_trace(self):
        collector = TraceCollector(tiny_test_machine())
        doc = to_chrome_trace(collector.events)
        json.dumps(doc)
        _no_nan(doc)


class TestSingleWindowTimeline:
    def _events(self):
        from repro.measure import measure_kernel
        from repro.kernels.registry import make_kernel
        machine = tiny_test_machine()
        collector = TraceCollector(machine)
        measure_kernel(machine, make_kernel("daxpy"), 256, reps=1,
                       trace=collector)
        return collector.events, machine

    @staticmethod
    def _span(events, machine):
        # the windowable span is the *measured* region (between the
        # measured:begin/end marks), not the full phase stream
        from repro.trace.timeline import TimelineSampler
        sampler = TimelineSampler(machine)
        for event in events:
            sampler.emit(event)
        t0, t1 = sampler.phase_span()
        return t1 - t0

    def test_one_window_spanning_the_whole_run(self):
        events, machine = self._events()
        # window == measured span: everything lands in window 0 (wider
        # windows are rejected by design)
        config = TimelineConfig(self._span(events, machine))
        timeline = timeline_from_events(events, config, machine=machine)
        assert len(timeline) == 1
        doc = to_chrome_trace(events, timeline=timeline)
        json.dumps(doc)
        _no_nan(doc)
        assert timeline.to_csv()  # renders without crashing

    def test_single_window_json_doc_finite(self):
        events, machine = self._events()
        config = TimelineConfig(self._span(events, machine))
        timeline = timeline_from_events(events, config, machine=machine)
        _no_nan(json.loads(json.dumps(timeline.to_json_doc())))


class TestZeroObservationRegistry:
    def test_prometheus_valid_with_zero_state(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total", "never incremented")
        reg.gauge("repro_g", "never set")
        reg.histogram("repro_h_seconds", "never observed", buckets=(1.0,))
        text = reg.to_prometheus()
        check_exposition(text)
        assert "repro_c_total 0" in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 0' in text
        assert "repro_h_seconds_count 0" in text
        assert "NaN" not in text

    def test_json_doc_with_zero_state(self):
        reg = MetricsRegistry()
        reg.histogram("repro_h_seconds", "never observed", buckets=(1.0,))
        doc = reg.to_json_doc()
        json.dumps(doc)
        assert doc["repro_h_seconds"]["series"][0]["mean"] is None

    def test_labelled_zero_state_emits_no_samples(self):
        # a labelled family with no observed series has nothing to
        # render — but the HELP/TYPE header must still be well-formed
        reg = MetricsRegistry()
        reg.counter("repro_c_total", "labelled", labelnames=("k",))
        check_exposition(reg.to_prometheus())


class TestEmptySpanProfiler:
    def test_chrome_trace_of_no_spans(self):
        doc = SpanProfiler().to_chrome_trace()
        json.dumps(doc)
        _no_nan(doc)
        assert all(e["ph"] == "M" for e in doc["traceEvents"])

    def test_json_doc_of_no_spans(self):
        doc = SpanProfiler().to_json_doc()
        assert doc == {"spans": 0, "dropped": 0, "root_seconds": 0.0,
                       "hotspots": []}

    def test_hotspot_table_of_no_spans(self):
        table = SpanProfiler().hotspot_table()
        assert "span" in table  # header renders, no division by zero
