"""Prometheus text-exposition conformance (satellite of PR 6).

One checker, applied to every exposition the repository produces —
the metrics registry's and ``repro.trace.export.to_prometheus``'s —
so the two paths cannot drift apart in formatting.
"""

import math
import re

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    escape_help,
    escape_label_value,
    format_labels,
    format_value,
)
from repro.trace.export import to_prometheus

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$"
)


def check_exposition(text: str) -> None:
    """Assert the structural rules of the text exposition format."""
    seen_help, seen_type = set(), set()
    for line in text.splitlines():
        assert line == line.rstrip(), f"trailing whitespace: {line!r}"
        if line.startswith("# HELP "):
            name = line.split()[2]
            assert name not in seen_help, f"duplicate HELP for {name}"
            seen_help.add(name)
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            assert name not in seen_type, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram", "untyped")
            assert name in seen_help, f"TYPE before HELP for {name}"
            seen_type.add(name)
        elif line:
            assert _SAMPLE_RE.match(line), f"malformed sample: {line!r}"
            value = line.rsplit(" ", 1)[1]
            assert value not in ("nan", "inf", "-inf"), \
                f"python float spelling leaked: {line!r}"
    if text:
        assert text.endswith("\n"), "non-empty exposition must end in \\n"


class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_help_escapes_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_format_labels_round_trip(self):
        rendered = format_labels({"kernel": 'say "hi"\n'})
        assert rendered == '{kernel="say \\"hi\\"\\n"}'

    def test_format_value_nonfinite(self):
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"


class TestRegistryExposition:
    def test_full_registry_conforms(self):
        reg = MetricsRegistry()
        reg.counter("repro_lookups_total", "lookups",
                    labelnames=("outcome",)).inc(3, outcome='we"ird')
        reg.gauge("repro_depth", "with \\ and \n in help").set(2)
        h = reg.histogram("repro_lat_seconds", "latency",
                          buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = reg.to_prometheus()
        check_exposition(text)
        assert 'outcome="we\\"ird"' in text

    def test_histogram_buckets_cumulative_ascending_end_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", "latency",
                          buckets=(1.0, 0.1, 10.0))  # unsorted on purpose
        for v in (0.05, 0.5, 0.5, 100.0):
            h.observe(v)
        text = reg.to_prometheus()
        buckets = re.findall(
            r'repro_lat_seconds_bucket\{le="([^"]+)"\} (\d+)', text)
        assert [b[0] for b in buckets] == ["0.1", "1", "10", "+Inf"]
        counts = [int(b[1]) for b in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 4
        assert "repro_lat_seconds_sum" in text
        assert text.count("repro_lat_seconds_count 4") == 1

    def test_one_help_and_type_per_family(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "x", labelnames=("k",))
        c.inc(1, k="a")
        c.inc(1, k="b")
        text = reg.to_prometheus()
        assert text.count("# HELP repro_x_total") == 1
        assert text.count("# TYPE repro_x_total") == 1

    def test_nonfinite_gauge_uses_prometheus_spelling(self):
        reg = MetricsRegistry()
        reg.gauge("repro_ratio", "ratio").set(math.inf)
        text = reg.to_prometheus()
        assert "repro_ratio +Inf" in text
        check_exposition(text)

    def test_empty_registry_is_empty_exposition(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestTraceExportExposition:
    def _summary(self):
        return {
            "phase_count": 2,
            "total_cycles": 1234.0,
            "bound_cycles": {'odd"bound': 10.0, "dram_bw": 90.0},
            "cache": {"l1_hits": 100, "l2_hits": 10},
            "dram": {"read_lines": 64, "write_lines": 32},
            "prefetch_engines": {"stride": {"issued": 5, "useful": 4}},
            "reissue": {"slots": 1, "overcounted_flops": 8},
            "bandwidth_utilization": {"dram": 0.5, "l3": None},
            "sweep": {"hits": 1, "misses": 2, "corrupt": 0,
                      "hit_rate": 1 / 3, "elapsed_seconds": 0.2},
            "plan_cache": {"hits": 6, "misses": 2, "hit_rate": 0.75,
                           "built_segments": 2, "built_lines": 40,
                           "flushes": 0},
        }

    def test_summary_exposition_conforms(self):
        text = to_prometheus(self._summary())
        check_exposition(text)

    def test_label_values_escaped(self):
        text = to_prometheus(self._summary())
        assert 'bound="odd\\"bound"' in text

    def test_plan_cache_section_present(self):
        text = to_prometheus(self._summary())
        assert 'repro_plan_cache_lookups_total{outcome="hit"} 6' in text
        assert "repro_plan_cache_hit_rate 0.75" in text

    def test_empty_summary_is_valid_zero_exposition(self):
        # an empty trace summary still renders the always-present
        # families with zero values — valid text, no bare newline
        text = to_prometheus({})
        check_exposition(text)
        assert text != "\n"
        assert "repro_phase_count 0" in text

    def test_nonfinite_value_spelling(self):
        text = to_prometheus({"total_cycles": float("nan"),
                              "phase_count": 1})
        assert "repro_cycles_total NaN" in text
        check_exposition(text)


class TestSharedHelpers:
    def test_both_paths_render_identical_label_syntax(self):
        # the regression this satellite fixes: trace.export used to
        # interpolate labels unescaped
        reg = MetricsRegistry()
        reg.counter("repro_a_total", "a", labelnames=("k",)).inc(1, k='x"y')
        registry_line = [
            line for line in reg.to_prometheus().splitlines()
            if line.startswith("repro_a_total{")
        ][0]
        export_text = to_prometheus(
            {"bound_cycles": {'x"y': 1.0}, "phase_count": 0})
        export_line = [
            line for line in export_text.splitlines()
            if line.startswith("repro_bound_cycles_total{")
        ][0]
        assert 'k="x\\"y"' in registry_line
        assert 'bound="x\\"y"' in export_line
