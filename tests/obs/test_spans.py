"""Span profiler mechanics: disabled path, nesting, aggregates, export."""

import pytest

from repro.obs.spans import SPANS, SpanProfiler


class FakeClock:
    """Deterministic ns clock the tests advance by hand."""

    def __init__(self):
        self.now = 0

    def __call__(self) -> int:
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def profiler(clock):
    p = SpanProfiler(clock=clock)
    p.enable()
    return p


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert SpanProfiler().enabled is False
        assert SPANS.enabled is False

    def test_disabled_call_returns_shared_null(self):
        p = SpanProfiler()
        a = p("engine.compile")
        b = p("engine.execute", n=4)
        # one shared object — the disabled path allocates nothing
        assert a is b

    def test_disabled_span_records_nothing(self):
        p = SpanProfiler()
        with p("x"):
            with p("y"):
                pass
        assert p.records == []
        assert p.hotspots() == []

    def test_null_span_propagates_exceptions(self):
        p = SpanProfiler()
        with pytest.raises(ValueError):
            with p("x"):
                raise ValueError("boom")


class TestNesting:
    def test_depth_and_parent(self, profiler, clock):
        with profiler("outer"):
            clock.now += 10
            with profiler("inner"):
                clock.now += 5
        outer, inner = profiler.records
        assert (outer.name, outer.depth, outer.parent) == ("outer", 0, -1)
        assert (inner.name, inner.depth, inner.parent) == ("inner", 1, 0)
        assert outer.dur_ns == 15
        assert inner.dur_ns == 5

    def test_self_time_excludes_children(self, profiler, clock):
        with profiler("outer"):
            clock.now += 10
            with profiler("inner"):
                clock.now += 30
            clock.now += 2
        rows = {r["name"]: r for r in profiler.hotspots()}
        assert rows["outer"]["total_s"] == pytest.approx(42e-9)
        assert rows["outer"]["self_s"] == pytest.approx(12e-9)
        assert rows["inner"]["self_s"] == pytest.approx(30e-9)

    def test_hotspots_sorted_by_self_time(self, profiler, clock):
        with profiler("small"):
            clock.now += 1
        with profiler("big"):
            clock.now += 100
        assert [r["name"] for r in profiler.hotspots()] == ["small", "big"][::-1]

    def test_top_n(self, profiler, clock):
        for name in ("a", "b", "c"):
            with profiler(name):
                clock.now += 1
        assert len(profiler.hotspots(top=2)) == 2

    def test_exception_still_closes_span(self, profiler, clock):
        with pytest.raises(RuntimeError):
            with profiler("x"):
                clock.now += 7
                raise RuntimeError
        assert profiler.records[0].dur_ns == 7
        assert profiler._stack == []


class TestRetentionCap:
    def test_cap_keeps_aggregates(self, clock):
        p = SpanProfiler(max_records=2, clock=clock)
        p.enable()
        for _ in range(5):
            with p("x"):
                clock.now += 1
        assert len(p.records) == 2
        assert p.dropped == 3
        # aggregates keep counting past the cap
        assert p.hotspots()[0]["count"] == 5

    def test_reset_clears_everything(self, profiler, clock):
        with profiler("x"):
            clock.now += 1
        profiler.reset()
        assert profiler.records == []
        assert profiler.dropped == 0
        assert profiler.hotspots() == []
        assert profiler.enabled  # reset keeps the enabled state


class TestExports:
    def test_chrome_trace_structure(self, profiler, clock):
        clock.now = 5_000
        with profiler("outer", n=64):
            clock.now += 2_000
        doc = profiler.to_chrome_trace()
        assert doc["traceEvents"][0]["ph"] == "M"
        x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(x) == 1
        # timestamps are rebased to the first span
        assert x[0]["ts"] == 0.0
        assert x[0]["dur"] == pytest.approx(2.0)  # us
        assert x[0]["args"] == {"n": 64}

    def test_attrs_captured(self, profiler, clock):
        with profiler("s", kernel="daxpy", n=256):
            clock.now += 1
        assert profiler.records[0].attrs == {"kernel": "daxpy", "n": 256}

    def test_json_doc(self, profiler, clock):
        with profiler("root"):
            clock.now += 10
        doc = profiler.to_json_doc()
        assert doc["spans"] == 1
        assert doc["dropped"] == 0
        assert doc["root_seconds"] == pytest.approx(10e-9)
        assert doc["hotspots"][0]["name"] == "root"

    def test_hotspot_table_renders(self, profiler, clock):
        with profiler("engine.execute"):
            clock.now += 1000
        table = profiler.hotspot_table()
        assert "engine.execute" in table
        assert "self [s]" in table
