"""CLI surface of PR 6: ``repro selfprofile`` and ``repro benchgate``.

The selfprofile runs use daxpy on the tiny machine so the suite stays
fast; the acceptance-sized run (``selfprofile dgemm --n 512``) is
exercised by the CI smoke job instead.
"""

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.obs import REGISTRY, SPANS


@pytest.fixture(autouse=True)
def _clean_observability():
    yield
    SPANS.reset()
    SPANS.disable()
    REGISTRY.reset()


def _engine_baseline(tmp_path):
    doc = {
        "bench": "s5_engine",
        "sweeps": {
            "daxpy": {"fast_seconds": 0.1, "reference_seconds": 2.0,
                      "speedup": 20.0, "plan_cache": {"hit_rate": 0.99}},
            "dgemm": {"fast_seconds": 0.75, "reference_seconds": 9.0,
                      "speedup": 12.0, "plan_cache": {"hit_rate": 0.99}},
        },
        "amortization": {"amortization_factor": 1.75,
                         "marginal_rep_seconds": 0.1,
                         "first_measurement_seconds": 0.2},
    }
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps(doc))
    return str(path)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        assert parser.parse_args(
            ["selfprofile", "daxpy"]).command == "selfprofile"
        assert parser.parse_args(["benchgate"]).command == "benchgate"

    def test_selfprofile_accepts_aliases(self):
        args = build_parser().parse_args(["selfprofile", "dgemm"])
        assert args.kernel == "dgemm"
        assert args.machine == "tiny"
        assert args.n == 512


class TestSelfprofile:
    def test_profiles_and_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "prof"
        rc = main(["selfprofile", "daxpy", "--n", "512",
                   "--out-dir", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        # the hotspot table names the span taxonomy's tiers
        assert "engine.execute" in printed
        assert "engine.compile" in printed
        flames = [f for f in os.listdir(out) if f.endswith(".trace.json")]
        proms = [f for f in os.listdir(out) if f.endswith(".metrics.prom")]
        assert len(flames) == 1 and len(proms) == 1
        doc = json.load(open(out / flames[0]))
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        # distinct compile/execute/cache/prefetch/sweep span categories
        assert "engine.compile" in names
        assert "engine.execute" in names
        assert any(n.startswith("cache.") for n in names)
        assert any(n.startswith("prefetch.") for n in names)
        assert any(n.startswith("sweep.") for n in names)
        prom_text = (out / proms[0]).read_text()
        assert "repro_plan_cache_lookups_total" in prom_text

    def test_json_mode(self, tmp_path, capsys):
        rc = main(["selfprofile", "daxpy", "--n", "256", "--json",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kernel"] == "daxpy"
        assert doc["profile"]["spans"] > 0
        # the symbolic tier interns loop structures process-globally, so
        # a structure another in-process run already resolved is a pure
        # hit: assert lookups flow, not a per-run miss
        assert doc["plan_cache"]["hits"] + doc["plan_cache"]["misses"] > 0
        assert doc["plan_cache"]["built_lines"] > 0
        assert "repro_sweep_point_seconds" in doc["metrics"]
        hotspot_names = {h["name"] for h in doc["profile"]["hotspots"]}
        assert "engine.execute" in hotspot_names

    def test_profiler_left_disabled_afterwards(self, tmp_path):
        main(["selfprofile", "daxpy", "--n", "256",
              "--out-dir", str(tmp_path)])
        assert SPANS.enabled is False

    def test_dropped_spans_are_surfaced_and_warned(self, tmp_path,
                                                   capsys, monkeypatch):
        monkeypatch.setattr(SPANS, "max_records", 10)
        rc = main(["selfprofile", "daxpy", "--n", "256",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "dropped past the retention cap" in captured.out
        assert "retention cap" in captured.err  # nonzero-dropped warning
        assert "flame view is truncated" in captured.err

    def test_dropped_reported_in_json_and_zero_without_cap(
            self, tmp_path, capsys):
        rc = main(["selfprofile", "daxpy", "--n", "256", "--json",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["dropped"] == 0
        assert "retention cap" not in captured.err
        assert SPANS.records == []


class TestBenchgateCli:
    def test_pass_mode(self, tmp_path, capsys):
        base = _engine_baseline(tmp_path)
        rc = main(["benchgate", "--baseline", base, "--current", base])
        assert rc == 0
        assert "all gates passed" in capsys.readouterr().out

    def test_injected_slowdown_fails(self, tmp_path, capsys):
        base = _engine_baseline(tmp_path)
        rc = main(["benchgate", "--baseline", base, "--current", base,
                   "--inject-slowdown", "2.0"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_no_baselines_found_is_an_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["benchgate"]) == 2

    def test_current_requires_single_baseline(self, tmp_path):
        base = _engine_baseline(tmp_path)
        rc = main(["benchgate", "--baseline", base, "--baseline", base,
                   "--current", base])
        assert rc == 2

    def test_kind_mismatch_is_an_error(self, tmp_path):
        base = _engine_baseline(tmp_path)
        other = tmp_path / "BENCH_timeline.json"
        other.write_text(json.dumps({
            "bench": "s3_timeline",
            "overhead_vs_untraced": {"sampler": 1.5, "nullsink": 1.3},
        }))
        rc = main(["benchgate", "--baseline", base,
                   "--current", str(other)])
        assert rc == 2


class TestSweepPlanCacheSatellite:
    def test_sweep_json_carries_plan_cache(self, tmp_path, capsys):
        rc = main(["sweep", "daxpy", "--sizes", "256", "--machine", "tiny",
                   "--reps", "1", "--json", "--no-cache"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        pc = doc["plan_cache"]
        # structure interning is process-global: misses only happen the
        # first time a loop shape is ever seen in the process
        assert pc["hits"] + pc["misses"] > 0
        assert pc["built_lines"] > 0
        assert 0.0 <= pc["hit_rate"] <= 1.0

    def test_sweep_metrics_out_includes_plan_cache(self, tmp_path, capsys):
        metrics = tmp_path / "sweep.prom"
        rc = main(["sweep", "daxpy", "--sizes", "256", "--machine", "tiny",
                   "--reps", "1", "--no-cache",
                   "--metrics-out", str(metrics)])
        assert rc == 0
        text = metrics.read_text()
        assert "repro_plan_cache_lookups_total" in text
        assert "repro_sweep_points_total" in text
