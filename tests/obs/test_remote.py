"""Distributed telemetry plane: propagation, merge, flight recorder.

The contract under test (``repro.obs.remote`` + the sweep executor's
plumbing): sweep points carry a :class:`TraceContext` to workers,
workers ship back a compact ``telemetry`` payload section, the parent
merges spans onto per-worker flame tracks and metrics into the shared
registry — and none of it may perturb the measurement payloads, which
stay bit-identical across serial / parallel / cached / telemetry-on /
telemetry-off.  The always-on flight recorder dumps its ring when a
point raises (worker-side) or a worker dies (parent-side).
"""

import json
import os

import pytest

from repro.errors import SweepError, SweepPointError
from repro.machine.ref import MachineRef
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.remote import (
    FLIGHTREC_DIR_ENV,
    FlightRecorder,
    SpanSectionCapture,
    TraceContext,
    build_point_telemetry,
    maybe_fault,
    merge_run_telemetry,
    new_run_id,
)
from repro.obs.spans import SPANS, SpanProfiler
from repro.sweep import (
    SweepCache,
    SweepPlan,
    measurement_to_payload,
    run_plan,
)
from repro.trace.bus import RingSink, TraceBus
from repro.trace.events import TraceEvent

pytestmark = pytest.mark.sweep

SIZES = (96, 192)


def small_plan() -> SweepPlan:
    plan = SweepPlan()
    plan.add_sweep(MachineRef.of("tiny"), "daxpy", SIZES,
                   protocol="cold", reps=1)
    return plan


def payloads(run):
    return [measurement_to_payload(m) for m in run.measurements]


@pytest.fixture(autouse=True)
def clean_observability():
    """Each test starts from (and leaves behind) pristine globals."""
    SPANS.reset()
    SPANS.disable()
    REGISTRY.reset()
    yield
    SPANS.reset()
    SPANS.disable()
    REGISTRY.reset()


@pytest.fixture
def flightrec_dir(tmp_path, monkeypatch):
    directory = tmp_path / "flightrec"
    monkeypatch.setenv(FLIGHTREC_DIR_ENV, str(directory))
    return directory


# ----------------------------------------------------------------------
# payload invariance: telemetry must be unobservable in the results
# ----------------------------------------------------------------------
class TestPayloadInvariance:
    def test_serial_parallel_and_telemetry_switch_are_bitwise_equal(self):
        base = payloads(run_plan(small_plan(), jobs=1, cache=None))
        assert payloads(run_plan(small_plan(), jobs=1, cache=None,
                                 telemetry=True)) == base
        assert payloads(run_plan(small_plan(), jobs=2,
                                 cache=None)) == base
        assert payloads(run_plan(small_plan(), jobs=2, cache=None,
                                 telemetry=False)) == base

    def test_telemetry_never_reaches_the_cache(self, tmp_path):
        cache = SweepCache(str(tmp_path / "sweepcache"))
        run_plan(small_plan(), jobs=2, cache=cache)
        stored = [os.path.join(root, name)
                  for root, _dirs, names in os.walk(tmp_path / "sweepcache")
                  for name in names if name.endswith(".json")]
        assert stored, "parallel run should have populated the cache"
        for path in stored:
            with open(path, encoding="utf-8") as handle:
                assert '"telemetry"' not in handle.read()

    def test_measurement_payloads_carry_no_telemetry_key(self):
        run = run_plan(small_plan(), jobs=2, cache=None)
        for payload in payloads(run):
            assert "telemetry" not in payload


# ----------------------------------------------------------------------
# telemetry shape: serial(telemetry=True) ≡ parallel, structurally
# ----------------------------------------------------------------------
class TestTelemetryShape:
    def test_default_is_off_serial_on_parallel(self):
        assert run_plan(small_plan(), jobs=1,
                        cache=None).telemetry["collected"] is False
        assert run_plan(small_plan(), jobs=2,
                        cache=None).telemetry["collected"] is True

    def test_serial_and_parallel_telemetry_are_structurally_equivalent(self):
        serial = run_plan(small_plan(), jobs=1, cache=None,
                          telemetry=True).telemetry
        SPANS.reset()
        REGISTRY.reset()
        parallel = run_plan(small_plan(), jobs=2, cache=None).telemetry
        for doc in (serial, parallel):
            assert doc["version"] == 1
            assert doc["collected"] is True
            assert doc["cached_points"] == 0
            assert [p["status"] for p in doc["points"]] == (
                ["simulated"] * len(SIZES))
            assert doc["workers"], "collected run must report workers"
            assert sum(w["points"] for w in doc["workers"]) == len(SIZES)
            for worker in doc["workers"]:
                assert worker["pid"] > 0
                assert worker["busy_seconds"] > 0
                assert worker["spans"] > 0
                assert 0.0 <= worker["utilization"] <= 1.0
            assert doc["events"]["total"] > 0
            assert doc["events"]["sample"]
        assert set(serial) == set(parallel)
        assert set(serial["workers"][0]) == set(parallel["workers"][0])

    def test_cache_replay_is_marked_not_fabricated(self, tmp_path):
        cache = SweepCache(str(tmp_path / "sweepcache"))
        run_plan(small_plan(), jobs=2, cache=cache)
        SPANS.reset()
        REGISTRY.reset()
        warm = run_plan(small_plan(), jobs=2, cache=cache).telemetry
        assert warm["cached_points"] == len(SIZES)
        assert all(p["status"] == "replayed-from-cache"
                   for p in warm["points"])
        assert warm["workers"] == []
        assert SPANS._tracks == {}

    def test_worker_metric_series_reach_the_parent_registry(self):
        run_plan(small_plan(), jobs=2, cache=None)
        points = REGISTRY.get("repro_sweep_worker_points_total")
        busy = REGISTRY.get("repro_sweep_worker_busy_seconds_total")
        util = REGISTRY.get("repro_sweep_worker_utilization")
        assert points is not None and busy is not None and util is not None
        assert sum(v for _labels, v in points.samples()) == len(SIZES)
        assert all(v > 0 for _labels, v in busy.samples())
        for labels, value in util.samples():
            assert labels["worker"].isdigit()
            assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# merged flame: per-worker tracks with causal links
# ----------------------------------------------------------------------
class TestMergedFlame:
    def test_worker_spans_land_on_per_pid_tracks_with_links(self):
        run = run_plan(small_plan(), jobs=2, cache=None)
        pids = {w["pid"] for w in run.telemetry["workers"]}
        assert set(SPANS._tracks) == pids
        for pid in pids:
            assert SPANS._tracks[pid] == f"sweep worker {pid}"
        assert len(SPANS._links) == len(SIZES)
        run_id = run.telemetry["run"]
        assert {link["id"] for link in SPANS._links} == {
            f"{run_id}:{idx}" for idx in range(len(SIZES))}
        point_tids = {r.tid for r in SPANS.records if r.name == "sweep.point"}
        assert point_tids == pids

    def test_chrome_export_has_worker_tracks_and_flow_arrows(self):
        run_plan(small_plan(), jobs=2, cache=None)
        doc = SPANS.to_chrome_trace(process_name="test sweep")
        events = doc["traceEvents"]
        names = {e.get("name") for e in events
                 if e.get("ph") == "M" and e.get("name") == "thread_name"}
        thread_names = {e["args"]["name"] for e in events
                        if e.get("ph") == "M"
                        and e.get("name") == "thread_name"}
        assert names == {"thread_name"}
        assert any(n.startswith("sweep worker") for n in thread_names)
        assert any(e.get("ph") == "X" and e.get("name") == "sweep.point"
                   and e.get("tid", 0) != 0 for e in events)
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert len(starts) == len(SIZES) and len(finishes) == len(SIZES)
        assert all(e["name"] == "sweep.dispatch" for e in starts + finishes)


# ----------------------------------------------------------------------
# flight recorder + fault injection
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_everything(self):
        ring = FlightRecorder(capacity=4)
        for i in range(10):
            ring.note("test", "tick", i=i)
        assert len(ring) == 4
        assert ring.total == 10
        assert [r["i"] for r in ring.records()] == [6, 7, 8, 9]
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_writes_ring_and_reason(self, tmp_path):
        ring = FlightRecorder(capacity=8)
        ring.note("point", "begin", point="daxpy:96")
        path = ring.dump("unit-test", point="SweepPoint(daxpy:96)",
                         directory=str(tmp_path), extra_field=7)
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["reason"] == "unit-test"
        assert doc["point"] == "SweepPoint(daxpy:96)"
        assert doc["pid"] == os.getpid()
        assert doc["extra_field"] == 7
        assert doc["records"][0]["point"] == "daxpy:96"

    def test_maybe_fault_is_inert_without_matching_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISTTRACE_CRASH", raising=False)
        monkeypatch.delenv("REPRO_DISTTRACE_KILL", raising=False)
        maybe_fault("daxpy:96")
        monkeypatch.setenv("REPRO_DISTTRACE_CRASH", "daxpy:8192")
        maybe_fault("daxpy:96")  # label mismatch: still inert

    def test_point_crash_dumps_flight_and_names_the_point(
            self, monkeypatch, flightrec_dir):
        monkeypatch.setenv("REPRO_DISTTRACE_CRASH", "daxpy:192")
        with pytest.raises(SweepPointError) as excinfo:
            run_plan(small_plan(), jobs=1, cache=None)
        message = str(excinfo.value)
        assert "daxpy:192" in message
        assert "flight-recorder dump" in message
        dumps = sorted(flightrec_dir.glob("flight-*.json"))
        assert dumps, "worker-side crash must leave a flight dump"
        doc = json.loads(dumps[-1].read_text())
        assert doc["reason"] == "point-exception"
        assert "daxpy" in doc["point"]
        assert doc["records"]

    def test_worker_death_dumps_parent_flight_naming_inflight_points(
            self, monkeypatch, flightrec_dir):
        monkeypatch.setenv("REPRO_DISTTRACE_KILL", "daxpy:192")
        with pytest.raises(SweepError) as excinfo:
            run_plan(small_plan(), jobs=2, cache=None)
        message = str(excinfo.value)
        assert "sweep worker died" in message
        assert "daxpy:192" in message
        assert "flight-recorder dump" in message
        dumps = sorted(flightrec_dir.glob("flight-*.json"))
        assert dumps, "parent must dump its ring on worker death"
        docs = [json.loads(p.read_text()) for p in dumps]
        assert any(d["reason"] == "worker-death" for d in docs)
        parent = next(d for d in docs if d["reason"] == "worker-death")
        assert parent["pid"] == os.getpid()
        # the dump names the in-flight points by repr
        assert "daxpy" in str(parent["point"])
        assert any("192" in repr_ for repr_ in parent["in_flight"])

    def test_sweep_point_error_survives_pickling(self):
        import pickle
        err = SweepPointError("sweep point daxpy:96 failed: boom")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, SweepPointError)
        assert str(clone) == str(err)


# ----------------------------------------------------------------------
# span section capture: owned vs inline
# ----------------------------------------------------------------------
class TestSpanSectionCapture:
    def test_owned_mode_restores_profiler_exactly(self):
        profiler = SpanProfiler()
        assert not profiler.enabled
        with profiler("outer"):
            pass  # disabled: no record
        with SpanSectionCapture(profiler) as capture:
            with profiler("sweep.point", kernel="daxpy", n=96):
                with profiler("engine.compile"):
                    pass
        section = capture.section
        assert section["mode"] == "owned"
        assert [r["name"] for r in section["records"]] == [
            "sweep.point", "engine.compile"]
        assert section["records"][0]["parent"] == -1
        assert section["records"][1]["parent"] == 0
        assert section["records"][0]["depth"] == 0
        assert section["records"][1]["depth"] == 1
        assert section["records"][0]["attrs"] == {"kernel": "daxpy",
                                                  "n": 96}
        assert set(section["aggregates"]) == {"sweep.point",
                                              "engine.compile"}
        # exact restore: disabled again, nothing retained
        assert not profiler.enabled
        assert profiler.records == []
        assert profiler._agg == {}
        assert profiler.dropped == 0

    def test_inline_mode_slices_without_disturbing_live_profiler(self):
        profiler = SpanProfiler()
        profiler.enable()
        with profiler("selfprofile.outer"):
            pass
        with SpanSectionCapture(profiler) as capture:
            with profiler("sweep.point"):
                pass
        section = capture.section
        assert section["mode"] == "inline"
        assert [r["name"] for r in section["records"]] == ["sweep.point"]
        # the live profiler keeps everything: pre-existing + new spans
        assert [r.name for r in profiler.records] == [
            "selfprofile.outer", "sweep.point"]
        assert profiler.enabled

    def test_inline_sections_are_not_reabsorbed_by_merge(self):
        profiler = SpanProfiler()
        registry = MetricsRegistry()
        profiler.enable()
        with SpanSectionCapture(profiler) as capture:
            with profiler("sweep.point"):
                pass
        telemetry = build_point_telemetry(
            TraceContext(run_id="abc", point_index=0),
            capture.section, busy_ns=1000, events_total=0,
            event_sample=[])
        before = len(profiler.records)
        doc = merge_run_telemetry(
            "abc", [telemetry], ["miss"], ["daxpy:96"], [None],
            elapsed_seconds=1.0, profiler=profiler, registry=registry)
        assert len(profiler.records) == before  # no double absorption
        assert doc["workers"][0]["spans"] == 1

    def test_absorb_remote_drops_oversized_sections_whole(self):
        profiler = SpanProfiler(max_records=2)
        section = {
            "records": [
                {"name": f"s{i}", "start_ns": i, "dur_ns": 1,
                 "depth": 0, "parent": -1}
                for i in range(3)
            ],
            "aggregates": {"s0": [3, 3, 0]},
            "dropped": 1,
        }
        absorbed = profiler.absorb_remote(section, track=42,
                                          track_name="sweep worker 42")
        assert absorbed == 0
        assert profiler.records == []
        assert profiler.dropped == 4  # 3 undropped records + 1 carried
        assert profiler._agg["s0"] == [3, 3, 0]  # aggregates still merge
        assert profiler._tracks[42] == "sweep worker 42"


# ----------------------------------------------------------------------
# ring sink: bounded trace-event sampling on the machine bus
# ----------------------------------------------------------------------
class TestRingSink:
    def test_keeps_last_n_and_counts_all(self):
        bus = TraceBus()
        sink = RingSink(capacity=3)
        bus.attach(sink)
        for i in range(7):
            bus.emit(TraceEvent(kind="mark", name=f"e{i}", ts=float(i)))
        assert sink.total == 7
        assert len(sink) == 3
        assert [e.name for e in sink.events] == ["e4", "e5", "e6"]
        with pytest.raises(ValueError):
            RingSink(capacity=0)

    def test_run_id_is_short_and_unique(self):
        ids = {new_run_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 12 for i in ids)
