"""Cross-process metrics merging and worker-labelled expositions.

Pins the :meth:`MetricsRegistry.to_delta_doc` /
:meth:`MetricsRegistry.absorb_delta` transport the distributed
telemetry plane ships worker metrics over: counters sum, gauges are
last-write-wins, histograms bucket-merge (and refuse lossy merges
across mismatched bucket bounds).  Also round-trips awkward label
values through both expositions that can carry worker-labelled series
— the registry's and ``repro.trace.export.to_prometheus``'s workers
section — via the shared escaping helpers.
"""

import math

import pytest

from repro.obs.metrics import MetricsRegistry, escape_label_value
from repro.trace.export import to_prometheus

from tests.obs.test_prometheus_format import check_exposition


def registry_with(build):
    reg = MetricsRegistry()
    build(reg)
    return reg


class TestCounterMerge:
    def test_counters_sum_across_absorbs(self):
        parent = MetricsRegistry()
        for amount in (2.0, 3.0):
            worker = MetricsRegistry()
            worker.counter("repro_sweep_worker_points_total", "points",
                           labelnames=("worker",)).inc(amount, worker=7)
            parent.absorb_delta(worker.to_delta_doc())
        metric = parent.get("repro_sweep_worker_points_total")
        assert metric.value(worker=7) == 5.0

    def test_distinct_label_sets_stay_distinct(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        counter = worker.counter("repro_sweep_worker_points_total",
                                 "points", labelnames=("worker",))
        counter.inc(1.0, worker=11)
        counter.inc(4.0, worker=22)
        parent.absorb_delta(worker.to_delta_doc())
        metric = parent.get("repro_sweep_worker_points_total")
        assert metric.value(worker=11) == 1.0
        assert metric.value(worker=22) == 4.0


class TestGaugeMerge:
    def test_gauges_are_last_write_wins(self):
        parent = MetricsRegistry()
        for value in (0.25, 0.75):
            worker = MetricsRegistry()
            worker.gauge("repro_sweep_worker_utilization", "util",
                         labelnames=("worker",)).set(value, worker=7)
            parent.absorb_delta(worker.to_delta_doc())
        metric = parent.get("repro_sweep_worker_utilization")
        assert metric.value(worker=7) == 0.75


class TestHistogramMerge:
    BOUNDS = (0.1, 1.0, 10.0)

    def _observing(self, *values):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_point_seconds", "latency",
                             buckets=self.BOUNDS)
        for value in values:
            hist.observe(value)
        return reg

    def test_histograms_bucket_merge(self):
        parent = self._observing(0.05, 0.5)
        parent.absorb_delta(self._observing(5.0, 50.0).to_delta_doc())
        hist = parent.get("repro_point_seconds")
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(55.55)
        # one observation per band: <=0.1, <=1, <=10, +Inf
        assert hist.percentile(0.25) == 0.1
        assert hist.percentile(0.50) == 1.0
        assert hist.percentile(0.75) == 10.0
        # the +Inf bucket has no finite upper bound; the estimate
        # saturates at the largest finite bound
        assert hist.percentile(1.0) == 10.0

    def test_mismatched_bounds_refuse_lossy_merge(self):
        parent = self._observing(0.5)
        other = MetricsRegistry()
        other.histogram("repro_point_seconds", "latency",
                        buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="lossy"):
            parent.absorb_delta(other.to_delta_doc())

    def test_absorb_into_empty_registry_creates_the_family(self):
        parent = MetricsRegistry()
        parent.absorb_delta(self._observing(0.5, 5.0).to_delta_doc())
        hist = parent.get("repro_point_seconds")
        assert hist is not None
        assert hist.count() == 2
        assert hist.bounds == (0.1, 1.0, 10.0, math.inf)

    def test_percentile_validates_quantile_and_handles_empty(self):
        reg = self._observing()
        hist = reg.get("repro_point_seconds")
        assert hist.percentile(0.5) is None
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                hist.percentile(bad)


class TestDeltaDocValidation:
    def test_unknown_kind_is_rejected(self):
        parent = MetricsRegistry()
        with pytest.raises(ValueError, match="kind"):
            parent.absorb_delta({"m": {"kind": "summary", "help": "x",
                                       "labelnames": [],
                                       "samples": [{"key": [],
                                                    "value": 1.0}]}})

    def test_round_trip_is_lossless(self):
        worker = MetricsRegistry()
        worker.counter("c_total", "c", labelnames=("worker",)).inc(3,
                                                                   worker=9)
        worker.gauge("g", "g").set(1.5)
        worker.histogram("h_seconds", "h",
                         buckets=(1.0, 2.0)).observe(1.5)
        parent = MetricsRegistry()
        parent.absorb_delta(worker.to_delta_doc())
        assert parent.to_delta_doc() == worker.to_delta_doc()


class TestWorkerLabelEscaping:
    """Weird label values survive both worker-labelled expositions."""

    WEIRD = 'worker "7"\\host\nnode'

    def test_registry_exposition_escapes_worker_labels(self):
        reg = MetricsRegistry()
        reg.counter("repro_sweep_worker_points_total", "points",
                    labelnames=("worker",)).inc(2.0, worker=self.WEIRD)
        text = reg.to_prometheus()
        check_exposition(text)
        assert f'worker="{escape_label_value(self.WEIRD)}"' in text
        assert "\n".join(  # no raw newline mid-sample
            line for line in text.splitlines() if "node" in line
        ).count("node") == 1

    def test_escaped_worker_labels_survive_the_delta_transport(self):
        worker = MetricsRegistry()
        worker.counter("repro_sweep_worker_points_total", "points",
                       labelnames=("worker",)).inc(1.0, worker=self.WEIRD)
        parent = MetricsRegistry()
        parent.absorb_delta(worker.to_delta_doc())
        text = parent.to_prometheus()
        check_exposition(text)
        assert f'worker="{escape_label_value(self.WEIRD)}"' in text

    def test_trace_export_workers_section_is_conformant(self):
        summary = {
            "workers": [
                {"pid": 4242, "points": 3, "busy_seconds": 1.25,
                 "utilization": 0.625},
                {"pid": 4243, "points": 2, "busy_seconds": 0.5,
                 "utilization": None},
            ],
        }
        text = to_prometheus(summary)
        check_exposition(text)
        assert 'repro_sweep_worker_points_total{worker="4242"} 3' in text
        assert ('repro_sweep_worker_busy_seconds_total{worker="4242"} '
                "1.25" in text)
        assert 'repro_sweep_worker_utilization{worker="4242"} 0.625' in text
        # a worker without a utilization estimate is simply omitted
        # from that family, not rendered as nan
        assert 'repro_sweep_worker_utilization{worker="4243"}' not in text
        assert 'repro_sweep_worker_points_total{worker="4243"} 2' in text
