"""Bench-compare regression gate: specs, comparison, slowdown injection."""

import json

import pytest

from repro.obs.benchgate import (
    BenchGateError,
    compare_docs,
    gate_checks_for,
    inject_slowdown,
    run_gate,
)


def engine_doc():
    # shaped like the post-symbolic-plan BENCH_engine.json: the specs
    # carry absolute floors (dgemm speedup >= 10, hit rate >= 0.95)
    # that a realistic doc must clear
    return {
        "bench": "s5_engine",
        "sweeps": {
            "daxpy": {"fast_seconds": 0.1, "reference_seconds": 2.0,
                      "speedup": 20.0,
                      "plan_cache": {"hit_rate": 0.99}},
            "dgemm": {"fast_seconds": 0.75, "reference_seconds": 9.0,
                      "speedup": 12.0,
                      "plan_cache": {"hit_rate": 0.99}},
        },
        "amortization": {"amortization_factor": 1.75,
                         "marginal_rep_seconds": 0.1,
                         "first_measurement_seconds": 0.2},
    }


def selfprofile_doc():
    return {
        "bench": "s6_selfprofile",
        "disabled": {"span_call_ns": 250.0, "activations": 7000,
                     "overhead_fraction": 0.0003},
        "enabled": {"overhead_factor": 1.1},
        "run_seconds": {"disabled": 8.0, "enabled": 8.8},
    }


def timeline_doc():
    return {
        "bench": "s3_timeline",
        "overhead_vs_untraced": {"sampler": 1.5, "nullsink": 1.3},
        "run_seconds": {"untraced": 1.0, "nullsink": 1.3, "sampler": 1.5},
    }


def ert_doc():
    return {
        "bench": "s7_ert",
        "ceilings_bytes_per_s": {"L1": 32e9, "L2": 11.6e9, "L3": 8.3e9,
                                 "DRAM": 3.8e9},
        "compute_flops_per_s": 8e9,
        "ratios": {"l1_over_dram": 8.46, "l2_over_dram": 3.08,
                   "l3_over_dram": 2.18, "compute_over_dram_ridge": 2.12},
        "run_seconds": {"discovery": 0.2},
    }


ALL_DOCS = {
    "s5_engine": engine_doc,
    "s6_selfprofile": selfprofile_doc,
    "s3_timeline": timeline_doc,
    "s7_ert": ert_doc,
}


class TestGateSpecs:
    @pytest.mark.parametrize("kind", sorted(ALL_DOCS))
    def test_every_kind_has_checks(self, kind):
        assert gate_checks_for(kind)

    def test_unknown_kind_raises(self):
        with pytest.raises(BenchGateError):
            gate_checks_for("s99_nonsense")


class TestCompare:
    @pytest.mark.parametrize("kind", sorted(ALL_DOCS))
    def test_identical_docs_pass(self, kind):
        doc = ALL_DOCS[kind]()
        results = compare_docs(doc, doc)
        assert results
        assert all(r.ok for r in results), \
            [r.describe() for r in results if not r.ok]

    def test_wildcard_expands_over_sweeps(self):
        doc = engine_doc()
        metrics = {r.metric for r in compare_docs(doc, doc)}
        assert "sweeps.daxpy.speedup" in metrics
        assert "sweeps.dgemm.speedup" in metrics

    def test_kind_mismatch_raises(self):
        with pytest.raises(BenchGateError):
            compare_docs(engine_doc(), timeline_doc())

    def test_missing_bench_field_raises(self):
        with pytest.raises(BenchGateError):
            compare_docs({"sweeps": {}}, engine_doc())

    def test_missing_current_metric_raises(self):
        current = engine_doc()
        del current["sweeps"]["dgemm"]["speedup"]
        with pytest.raises(BenchGateError):
            compare_docs(engine_doc(), current)

    def test_tolerance_scale_widens_the_gate(self):
        current = engine_doc()
        current["sweeps"]["daxpy"]["speedup"] = 12.0  # -40%: fails at 35%
        assert not all(r.ok for r in compare_docs(engine_doc(), current))
        wide = compare_docs(engine_doc(), current, tolerance_scale=2.0)
        assert all(r.ok for r in wide)

    def test_absolute_floor_ignores_baseline_and_tolerance(self):
        # the >= 10x dgemm floor: a generous baseline and a wide
        # tolerance scale must not resurrect the old plateau
        current = engine_doc()
        current["sweeps"]["dgemm"]["speedup"] = 9.5
        results = {r.metric: r for r in
                   compare_docs(engine_doc(), current,
                                tolerance_scale=100.0)}
        assert not results["sweeps.dgemm.speedup"].ok

    def test_hit_rate_floor_fires_on_recompile_regression(self):
        current = engine_doc()
        current["sweeps"]["dgemm"]["plan_cache"]["hit_rate"] = 0.67
        results = compare_docs(engine_doc(), current)
        bad = [r for r in results if not r.ok]
        assert any(r.metric == "sweeps.dgemm.plan_cache.hit_rate"
                   and r.limit == 0.95 for r in bad)

    def test_absolute_cap_ignores_baseline(self):
        # the 5% disabled-overhead ceiling: even if the baseline were
        # high, the cap is absolute
        base = selfprofile_doc()
        base["disabled"]["overhead_fraction"] = 0.049
        current = selfprofile_doc()
        current["disabled"]["overhead_fraction"] = 0.051
        results = {r.metric: r for r in compare_docs(base, current)}
        assert not results["disabled.overhead_fraction"].ok
        assert results["disabled.overhead_fraction"].limit == 0.05

    def test_nan_current_always_fails(self):
        current = engine_doc()
        current["sweeps"]["daxpy"]["speedup"] = float("nan")
        results = {r.metric: r for r in compare_docs(engine_doc(), current)}
        assert not results["sweeps.daxpy.speedup"].ok


class TestInjectSlowdown:
    @pytest.mark.parametrize("kind", sorted(ALL_DOCS))
    def test_2x_slowdown_fails_the_gate(self, kind):
        doc = ALL_DOCS[kind]()
        slowed = inject_slowdown(doc, 2.0)
        results = compare_docs(doc, slowed)
        assert any(not r.ok for r in results), \
            f"{kind}: a 2x slowdown must trip the gate"

    def test_injection_does_not_mutate_the_original(self):
        doc = engine_doc()
        inject_slowdown(doc, 2.0)
        assert doc == engine_doc()

    def test_factor_one_changes_ratios_not_at_all(self):
        doc = engine_doc()
        assert inject_slowdown(doc, 1.0) == doc

    def test_bad_factor_rejected(self):
        with pytest.raises(BenchGateError):
            inject_slowdown(engine_doc(), 0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(BenchGateError):
            inject_slowdown({"bench": "mystery"}, 2.0)


class TestRunGate:
    def test_compare_mode_with_files(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(engine_doc()))
        cur.write_text(json.dumps(engine_doc()))
        results = run_gate(str(base), current_path=str(cur))
        assert all(r.ok for r in results)

    def test_injected_slowdown_through_run_gate(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(engine_doc()))
        results = run_gate(str(base), current=engine_doc(), slowdown=2.0)
        assert any(not r.ok for r in results)

    def test_unreadable_baseline_raises(self, tmp_path):
        with pytest.raises(BenchGateError):
            run_gate(str(tmp_path / "missing.json"),
                     current=engine_doc())

    def test_garbage_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(BenchGateError):
            run_gate(str(path), current=engine_doc())
