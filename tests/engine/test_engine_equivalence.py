"""Two-tier engine equivalence: fast vs reference, counter for counter.

The fast engine replays compiled access plans through the batched
datapath; the reference engine dispatches the identical emission stream
one port call at a time.  These tests pin the equivalence contract at
three granularities: fuzzed programs (every observable via
``run_cross_engine``), full kernel measurements (byte-identical W/Q/T
JSON), and the compile tier's own telemetry (plan caching actually
happens, and only on the fast engine).
"""

from __future__ import annotations

import json

import pytest

from repro.engine import ENGINES, AccessPlan, PlanCache, validate_engine
from repro.errors import ConfigurationError
from repro.isa import ProgramBuilder
from repro.kernels import CodegenCaps, kernel_names, make_kernel
from repro.machine.presets import (
    make_machine,
    oracle_test_machine,
    tiny_test_machine,
)
from repro.machine.ref import MachineRef
from repro.measure import measure_kernel
from repro.oracle import render_program, run_cross_engine
from repro.trace import measurement_to_dict


# ----------------------------------------------------------------------
# engine selection plumbing
# ----------------------------------------------------------------------
def test_validate_engine_accepts_known_and_rejects_unknown():
    for engine in ENGINES:
        assert validate_engine(engine) == engine
    with pytest.raises(ConfigurationError):
        validate_engine("turbo")


def test_machine_and_cores_carry_the_engine():
    machine = tiny_test_machine(engine="reference")
    assert machine.engine == "reference"
    assert machine.core(0).engine == "reference"
    assert tiny_test_machine().core(0).engine == "fast"


def test_machine_ref_engine_roundtrip_and_key_doc():
    ref = MachineRef.of("tiny", engine="reference")
    assert ref.build().engine == "reference"
    assert ref.key_doc()["engine"] == "reference"
    assert "engine=reference" in ref.describe()
    # the default engine stays out of the cache key so pre-existing
    # content-addressed sweep results keep their identities
    default = MachineRef.of("tiny")
    assert "engine" not in default.key_doc()
    assert default.build().engine == "fast"


def test_machine_ref_rejects_unknown_engine():
    with pytest.raises(ConfigurationError):
        MachineRef.of("tiny", engine="warp")


# ----------------------------------------------------------------------
# cross-engine differential fuzz (hypothesis-shrunk)
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.oracle import random_program  # noqa: E402


class HypoRng:
    """random.Random-shaped adapter over a hypothesis data draw."""

    def __init__(self, data) -> None:
        self.data = data

    def randint(self, a: int, b: int) -> int:
        return self.data.draw(st.integers(min_value=a, max_value=b))

    def choice(self, seq):
        return self.data.draw(st.sampled_from(list(seq)))


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_fast_engine_matches_reference_engine(data):
    rng = HypoRng(data)
    program = random_program(rng)
    mask = rng.randint(0, 15)
    outcome = run_cross_engine(program, prefetch_mask=mask)
    assert outcome.ok, "\n".join(
        [f"prefetch mask {mask}"]
        + [str(d) for d in outcome.divergences]
        + ["program:", render_program(program)]
    )


# ----------------------------------------------------------------------
# equivalence matrix: machine preset x prefetcher configuration
# ----------------------------------------------------------------------
#: scaled-down snb keeps the reference side fast while exercising the
#: real Sandy Bridge hierarchy shape; oracle is the single-core
#: big-uniform-cache preset the analytic model targets
_MATRIX_PRESETS = {
    "tiny": tiny_test_machine,
    "snb": lambda: make_machine("snb", scale=0.0625),
    "oracle": oracle_test_machine,
}
#: all prefetchers on, a mixed mask, and all off
_MATRIX_MASKS = (0, 5, 15)
_MATRIX_KERNELS = ("daxpy", "stencil3", "spmv")


@pytest.mark.parametrize("mask", _MATRIX_MASKS)
@pytest.mark.parametrize("preset", sorted(_MATRIX_PRESETS))
def test_cross_engine_matrix_preset_by_prefetchers(preset, mask):
    factory = _MATRIX_PRESETS[preset]
    caps = CodegenCaps.from_machine(factory())
    for name in _MATRIX_KERNELS:
        program = make_kernel(name).build(64, caps)
        outcome = run_cross_engine(
            program, prefetch_mask=mask, machine_factory=factory
        )
        assert outcome.ok, "\n".join(
            [f"preset {preset} mask {mask} kernel {name}"]
            + [str(d) for d in outcome.divergences]
        )


# ----------------------------------------------------------------------
# non-symbolic loops: the concrete capture fallback
# ----------------------------------------------------------------------
def _gather_program():
    b = ProgramBuilder()
    buf = b.buffer("data", 4096)
    table = b.index_table("tab0", [(i * 24) % 4000 for i in range(40)])
    with b.loop(32) as i:
        b.gather(buf, table[i], width=64)
    return b.build()


def _descending_program():
    b = ProgramBuilder()
    buf = b.buffer("data", 4096)
    with b.loop(32) as i:
        b.load(buf[i * -16 + 31 * 16], width=128)
    return b.build()


@pytest.mark.parametrize("build", [_gather_program, _descending_program],
                         ids=["gather", "negative-stride"])
def test_non_affine_loops_take_the_concrete_fallback_and_match(build):
    program = build()
    outcome = run_cross_engine(program)
    assert outcome.ok, "\n".join(str(d) for d in outcome.divergences)
    # white-box: these shapes are not symbolically plannable, so they
    # must land in the capture-keyed concrete tier, never the bound one
    machine = tiny_test_machine()
    machine.run(machine.load(program))
    cache = machine.core(0).plan_cache
    assert len(cache._entries) > 0
    assert len(cache._bound) == 0


# ----------------------------------------------------------------------
# full-methodology byte identity on every registry kernel
# ----------------------------------------------------------------------
def _measure_doc(engine: str, name: str, n: int) -> str:
    machine = tiny_test_machine(engine=engine)
    measurement = measure_kernel(machine, make_kernel(name), n, reps=2)
    return json.dumps(measurement_to_dict(measurement), sort_keys=True)


@pytest.mark.parametrize("name", kernel_names())
def test_measure_kernel_byte_identical_across_engines(name):
    n = 32 if name.startswith(("dgemm", "fft")) else 64
    assert _measure_doc("fast", name, n) == _measure_doc("reference", name, n)


def test_warm_protocol_byte_identical_across_engines():
    docs = []
    for engine in ENGINES:
        machine = tiny_test_machine(engine=engine)
        m = measure_kernel(machine, make_kernel("daxpy"), 256,
                           protocol="warm", reps=2)
        docs.append(json.dumps(measurement_to_dict(m), sort_keys=True))
    assert docs[0] == docs[1]


# ----------------------------------------------------------------------
# compile tier: plan caching behaviour
# ----------------------------------------------------------------------
def test_fast_engine_hits_the_plan_cache_across_reps():
    machine = tiny_test_machine()
    measure_kernel(machine, make_kernel("daxpy"), 256, reps=3)
    stats = machine.core(0).plan_stats
    # structure interning is process-global, so `misses` can be zero
    # here (an earlier test may have interned daxpy's loop shapes
    # already); what this machine guarantees is reuse: A/B windows and
    # reps replay the same structures over and over
    assert stats.hits > 0
    assert stats.hits > stats.misses
    assert stats.hit_rate >= 0.8
    assert stats.built_lines > 0
    assert stats.flushes == 0


def test_reference_engine_never_compiles_plans():
    machine = tiny_test_machine(engine="reference")
    measure_kernel(machine, make_kernel("daxpy"), 256, reps=2)
    core = machine.core(0)
    assert len(core.plan_cache) == 0
    assert core.plan_stats.lookups == 0


def test_plan_cache_flushes_at_the_line_cap():
    cache = PlanCache(max_lines=10)
    loop_a, loop_b = object(), object()
    plan_a = AccessPlan(segments=[], total_lines=6)
    plan_b = AccessPlan(segments=[], total_lines=6)
    cache.put(("a",), loop_a, (), plan_a)
    assert len(cache) == 1
    # 6 + 6 > 10: the second put flushes everything, then stores b
    cache.put(("b",), loop_b, (), plan_b)
    assert len(cache) == 1
    assert cache.stats.flushes == 1
    assert cache.get(("a",)) is None
    assert cache.get(("b",)) is plan_b


def test_plan_key_distinguishes_buffer_placement():
    # same kernel measured at two sizes -> one shared symbolic
    # structure, but different trip counts and buffer bases -> new
    # bound-tier entries (no false sharing between distinct contexts)
    machine = tiny_test_machine()
    measure_kernel(machine, make_kernel("daxpy"), 64, reps=1)
    first = len(machine.core(0).plan_cache)
    measure_kernel(machine, make_kernel("daxpy"), 128, reps=1)
    assert len(machine.core(0).plan_cache) > first
