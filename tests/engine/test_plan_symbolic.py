"""Size-polymorphic symbolic plans: the cross-engine property band.

The compile tier interns a loop's *structure* once per process
(:data:`repro.engine.plan.SYMBOLIC_REGISTRY`) and materialises one
bound :class:`AccessPlan` per concrete ``(trips, site ids, base,
stride, home)`` assignment.  The headline property locked down here:

    a plan compiled at problem size A and replayed at sizes B != A on
    the *same warm machine* must produce counters identical to the
    reference engine, for every observable the differential oracle
    diffs.

Everything below is either that property (hypothesis-driven over the
kernel registry plus a deterministic matrix) or a unit test of the
two-tier machinery it rides on.
"""

from __future__ import annotations

import itertools

import pytest

from repro.engine.plan import (
    SYMBOLIC_REGISTRY,
    AccessPlan,
    PlanCache,
    SymbolicRegistry,
)
from repro.kernels import CodegenCaps, make_kernel
from repro.machine.presets import make_machine, tiny_test_machine
from repro.measure import measure_kernel
from repro.oracle import (
    diff_engine_sides,
    render_program,
    run_cross_engine_sequence,
)

#: monotone source of never-before-seen structural keys, so unit tests
#: stay independent of interning done earlier in the process
_FRESH = itertools.count()


def _fresh_skey(sites=()):
    return (f"unit-loop-{next(_FRESH)}", tuple(sites))


def _programs(name: str, sizes):
    caps = CodegenCaps.from_machine(tiny_test_machine())
    kernel = make_kernel(name)
    return [kernel.build(n, caps) for n in sizes]


# ----------------------------------------------------------------------
# symbolic tier: structural interning
# ----------------------------------------------------------------------
def test_registry_interns_structurally():
    sites = (("load", 64, "buf0", ("i",)),)
    skey = _fresh_skey(sites)
    first, fresh1 = SYMBOLIC_REGISTRY.intern(skey)
    again, fresh2 = SYMBOLIC_REGISTRY.intern(skey)
    assert fresh1 and not fresh2
    assert again is first
    # an equal-by-value key built from different tuple objects resolves
    # to the same interned plan: identity is structural, not id()-based
    clone = (skey[0], (("load", 64, "buf0", ("i",)),))
    third, fresh3 = SYMBOLIC_REGISTRY.intern(clone)
    assert third is first and not fresh3


def test_registry_distinguishes_structures():
    reg = SymbolicRegistry()
    read, _ = reg.intern(("i", (("load", 64, "x", ("i",)),)))
    write, _ = reg.intern(("i", (("store", 64, "x", ("i",)),)))
    wide, _ = reg.intern(("i", (("load", 256, "x", ("i",)),)))
    other_buf, _ = reg.intern(("i", (("load", 64, "y", ("i",)),)))
    plans = {id(p) for p in (read, write, wide, other_buf)}
    assert len(plans) == 4
    assert len(reg) == 4


def test_resolve_symbolic_counts_hits_and_misses():
    cache = PlanCache()
    skey = _fresh_skey()
    cache.resolve_symbolic(skey)
    assert (cache.stats.misses, cache.stats.hits) == (1, 0)
    cache.resolve_symbolic(skey)
    assert (cache.stats.misses, cache.stats.hits) == (1, 1)
    cache.note_symbolic_hit()
    assert cache.stats.hits == 2
    # another core's cache sees the process-level interning as a hit:
    # the structure was compiled once, everywhere
    other = PlanCache()
    other.resolve_symbolic(skey)
    assert (other.stats.misses, other.stats.hits) == (0, 1)


# ----------------------------------------------------------------------
# bind: one structure, many concrete materialisations
# ----------------------------------------------------------------------
def test_bind_scales_with_trip_count():
    sym, _ = SYMBOLIC_REGISTRY.intern(
        _fresh_skey((("load", 64, "x", ("i",)),))
    )
    descs = [("load", 0, 0, 8, 8, 0)]
    small = sym.bind(descs, 8, 6, 12, 0)
    big = sym.bind(descs, 64, 6, 12, 0)
    assert small.total_lines >= 1
    assert big.total_lines == 8 * small.total_lines
    assert small is not big


def test_bind_respects_base_binding():
    sym, _ = SYMBOLIC_REGISTRY.intern(
        _fresh_skey((("load", 64, "x", ("i",)),))
    )
    at_zero = sym.bind([("load", 0, 0, 8, 8, 0)], 16, 6, 12, 0)
    offset = sym.bind([("load", 0, 1 << 20, 8, 8, 0)], 16, 6, 12, 0)
    assert at_zero.total_lines == offset.total_lines
    # same shape, different addresses: the bound plans must not alias
    zero_lines = {seg.lines[0] for seg in at_zero.segments if seg.lines}
    off_lines = {seg.lines[0] for seg in offset.segments if seg.lines}
    if zero_lines and off_lines:
        assert zero_lines.isdisjoint(off_lines)


def test_bound_tier_memoises_and_counts_built_lines():
    cache = PlanCache()
    plan = AccessPlan(segments=[], total_lines=4)
    bkey = (0, 8, (0,), ((0, 8, 0),))
    assert cache.get_bound(bkey) is None
    cache.put_bound(bkey, plan)
    assert cache.get_bound(bkey) is plan
    assert cache.stats.built_lines == 4
    assert len(cache) == 1


def test_bound_tier_flushes_at_the_line_cap():
    cache = PlanCache(max_lines=10)
    cache.put_bound(("a",), AccessPlan(segments=[], total_lines=6))
    cache.put_bound(("b",), AccessPlan(segments=[], total_lines=6))
    assert cache.stats.flushes == 1
    assert cache.get_bound(("a",)) is None
    assert cache.get_bound(("b",)) is not None


# ----------------------------------------------------------------------
# the headline property: compile at A, replay at B != A
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

#: affine kernels plus ``spmv`` (gather: the concrete-fallback tier)
_KERNELS = (
    "daxpy", "triad", "dot", "scale", "sum", "strided-sum",
    "read", "memset", "memcpy", "stencil3", "dgemv-row", "spmv",
)
_SIZES = (32, 48, 64, 96, 128)


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_plan_compiled_at_size_a_replays_at_size_b(data):
    name = data.draw(st.sampled_from(_KERNELS))
    caps = CodegenCaps.from_machine(tiny_test_machine())
    kernel = make_kernel(name)
    sizes = []
    for n in _SIZES:
        try:
            kernel.validate_n(n, caps)
        except Exception:
            continue
        sizes.append(n)
    size_a = data.draw(st.sampled_from(sizes))
    size_b = data.draw(st.sampled_from(
        [s for s in sizes if s != size_a]
    ))
    mask = data.draw(st.integers(min_value=0, max_value=15))
    # A then B then A again: the final leg replays a structure bound at
    # both sizes on a machine whose caches are warm with B's data
    programs = _programs(name, (size_a, size_b, size_a))
    outcome = run_cross_engine_sequence(programs, prefetch_mask=mask)
    assert outcome.ok, "\n".join(
        [f"kernel {name} sizes ({size_a}, {size_b}, {size_a}) "
         f"mask {mask}"]
        + [str(d) for d in outcome.divergences]
        + ["program:", render_program(programs[0])]
    )


@pytest.mark.parametrize("name,sizes", [
    ("daxpy", (64, 256, 64)),
    ("dgemm-tiled", (16, 24, 16)),
    ("fft", (32, 64, 32)),
    ("spmv", (48, 96, 48)),
    ("triad-nt", (64, 128, 64)),
])
def test_size_replay_matrix(name, sizes):
    outcome = run_cross_engine_sequence(_programs(name, sizes))
    assert outcome.ok, "\n".join(
        [f"kernel {name} sizes {sizes}"]
        + [str(d) for d in outcome.divergences]
    )


# ----------------------------------------------------------------------
# stale-plan hazards: mutated bindings must rebind, never replay
# ----------------------------------------------------------------------
def test_reloading_moves_buffer_bases_and_rebinds():
    # every machine.load() maps fresh allocations, so running the same
    # program twice mutates every buffer base under a cached structure
    machine = tiny_test_machine()
    program = _programs("daxpy", (64,))[0]
    first = machine.load(program)
    machine.run(first)
    cache = machine.core(0).plan_cache
    bound_after_first = len(cache)
    second = machine.load(program)
    moved = {
        name for name in first.buffer_map
        if first.buffer_map[name].base != second.buffer_map[name].base
    }
    assert moved  # the hazard is real: bases did change
    machine.run(second)
    # a silent replay would leave the cache untouched (and corrupt the
    # functional state); a rebind materialises new entries
    assert len(cache) > bound_after_first
    assert machine.core(0).plan_stats.flushes == 0


def test_same_program_reloaded_matches_reference_counters():
    program = _programs("stencil3", (96,))[0]
    outcome = run_cross_engine_sequence([program, program, program])
    assert outcome.ok, "\n".join(str(d) for d in outcome.divergences)


def test_home_node_mutation_rebinds_without_silent_reuse():
    # remap the same program onto the other NUMA node between runs:
    # the plan's per-line homes change while structure, trips, and
    # strides all stay identical
    factory = lambda: make_machine("snb-ep-x2", scale=0.0625)  # noqa: E731
    fast = factory()
    ref = factory()
    ref.engine = "reference"
    caps = CodegenCaps.from_machine(fast)
    program = make_kernel("daxpy").build(64, caps)
    bound_counts = []
    for node in (0, 1, 0):
        fast_run = fast.run(fast.load(program, node=node))
        ref_run = ref.run(ref.load(program, node=node))
        divs = diff_engine_sides(
            fast, fast_run.result, ref, ref_run.result, 0
        )
        assert not divs, "\n".join(
            [f"node {node}"] + [str(d) for d in divs]
        )
        bound_counts.append(len(fast.core(0).plan_cache))
    # each placement added entries instead of reusing stale homes
    assert bound_counts[0] < bound_counts[1] < bound_counts[2]


# ----------------------------------------------------------------------
# telemetry: the second size rebinds instead of recompiling
# ----------------------------------------------------------------------
def test_dgemm_sweep_plan_cache_telemetry_regression():
    # the compile-tier amortization story the fast engine is built on:
    # every size of a dgemm sweep resolves through the same interned
    # structures, so the aggregate hit rate must stay near-perfect.
    # This is the same floor `repro benchgate` enforces on the
    # committed BENCH_engine.json baseline.
    from repro.machine.ref import MachineRef
    from repro.sweep import SweepPlan, run_plan

    plan = SweepPlan()
    plan.add_sweep(MachineRef.of("tiny"), "dgemm-tiled",
                   (16, 24, 32, 40), reps=2)
    run = run_plan(plan, jobs=1, cache=None)
    pc = run.plan_cache
    assert pc["hits"] > 0
    assert pc["hit_rate"] >= 0.95
    assert pc["flushes"] == 0
    assert pc["built_lines"] > 0


def test_second_size_rebinds_without_symbolic_misses():
    machine = tiny_test_machine()
    measure_kernel(machine, make_kernel("daxpy"), 64, reps=1)
    core = machine.core(0)
    stats = core.plan_stats
    hits0, misses0 = stats.hits, stats.misses
    bound0 = len(core.plan_cache)
    built0 = stats.built_lines
    measure_kernel(machine, make_kernel("daxpy"), 128, reps=1)
    # the loop structures were interned by the first measurement (or
    # earlier in the process): a new problem size adds zero misses
    assert stats.misses == misses0
    assert stats.hits > hits0
    # ... but it does materialise fresh bindings at the new trip
    # counts and buffer bases
    assert len(core.plan_cache) > bound0
    assert stats.built_lines > built0
    assert stats.flushes == 0
