"""Sweep-cache garbage collection: age and size budgets."""

import json
import os
import time

import pytest

from repro.machine.ref import MachineRef
from repro.sweep import SweepCache, SweepPlan, run_plan

pytestmark = pytest.mark.sweep


def populate(cache: SweepCache, sizes) -> list:
    plan = SweepPlan()
    plan.add_sweep(MachineRef.of("tiny"), "daxpy", list(sizes), reps=1)
    run = run_plan(plan, cache=cache, backend="serial")
    return run.keys


class TestGc:
    def test_noop_when_within_budget(self, tmp_path):
        cache = SweepCache(str(tmp_path / "c"))
        keys = populate(cache, [64, 96])
        summary = cache.gc(max_bytes=10 ** 9, max_age_seconds=3600)
        assert summary["scanned"] == 2 and summary["removed"] == 0
        for key in keys:
            assert cache.lookup(key)[1] == "hit"

    def test_age_bound_drops_old_entries(self, tmp_path):
        cache = SweepCache(str(tmp_path / "c"))
        keys = populate(cache, [64, 96])
        old = cache.path(keys[0])
        past = time.time() - 7200
        os.utime(old, (past, past))
        summary = cache.gc(max_age_seconds=3600)
        assert summary["removed"] == 1
        assert cache.lookup(keys[0])[1] == "miss"
        assert cache.lookup(keys[1])[1] == "hit"

    def test_size_bound_evicts_oldest_first(self, tmp_path):
        cache = SweepCache(str(tmp_path / "c"))
        keys = populate(cache, [64, 96, 128])
        # order mtimes explicitly so eviction order is deterministic
        now = time.time()
        for age, key in zip((300, 200, 100), keys):
            os.utime(cache.path(key), (now - age, now - age))
        one_entry = os.path.getsize(cache.path(keys[2]))
        summary = cache.gc(max_bytes=one_entry + 16)
        assert summary["removed"] == 2
        # the newest survives
        assert cache.lookup(keys[2])[1] == "hit"
        assert cache.lookup(keys[0])[1] == "miss"
        assert cache.lookup(keys[1])[1] == "miss"

    def test_stray_tmp_files_always_removed(self, tmp_path):
        cache = SweepCache(str(tmp_path / "c"))
        populate(cache, [64])
        shard = os.path.dirname(cache.path("ab" + "0" * 62))
        os.makedirs(shard, exist_ok=True)
        stray = os.path.join(shard, "leftover.tmp")
        with open(stray, "w", encoding="utf-8") as handle:
            handle.write("torn write")
        summary = cache.gc(max_bytes=10 ** 9)
        assert not os.path.exists(stray)
        assert summary["removed"] >= 1

    def test_empty_shards_pruned(self, tmp_path):
        cache = SweepCache(str(tmp_path / "c"))
        keys = populate(cache, [64])
        cache.gc(max_age_seconds=0.0, now=time.time() + 10)
        assert cache.lookup(keys[0])[1] == "miss"
        assert os.listdir(cache.root) == []

    def test_gc_on_missing_root_is_a_noop(self, tmp_path):
        cache = SweepCache(str(tmp_path / "never-created"))
        summary = cache.gc(max_bytes=0)
        assert summary == {"scanned": 0, "removed": 0,
                           "reclaimed_bytes": 0, "kept_bytes": 0}


class TestGcCli:
    def test_cache_gc_command(self, tmp_path, capsys):
        from repro.cli import main
        cache = SweepCache(str(tmp_path / "c"))
        populate(cache, [64, 96])
        code = main(["cache", "gc", "--max-age", "1h", "--json",
                     "--cache-dir", cache.root])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["scanned"] == 2 and doc["removed"] == 0

    def test_cache_gc_requires_a_bound(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["cache", "gc", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "needs" in capsys.readouterr().err

    def test_size_and_age_spellings(self):
        from repro.cli import _parse_age, _parse_size
        assert _parse_size("2k") == 2048
        assert _parse_size("1M") == 1024 ** 2
        assert _parse_size("123") == 123
        assert _parse_age("7d") == 7 * 86400.0
        assert _parse_age("90") == 90.0
