"""Backend parity: serial ≡ local-pool ≡ socket, bit for bit.

The backend protocol's contract is that *where* a point executes is
unobservable in the result.  These tests checksum full serialised
payloads across all three backends, prove cache-key compatibility (a
cache populated by one backend replays on every other), exercise
backend reuse across many submits with a hypothesis sweep-shape
suite, and kill a socket worker mid-point to verify requeue recovery.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.errors import SweepError
from repro.machine.ref import MachineRef
from repro.sweep import (
    JOBS_ENV,
    JOBS_FALLBACK_ENV,
    LocalPoolBackend,
    SerialBackend,
    SocketWorkerBackend,
    SweepCache,
    SweepPlan,
    make_backend,
    measurement_to_payload,
    resolve_jobs,
    run_plan,
)

pytestmark = pytest.mark.sweep


def small_plan(kernel="daxpy", sizes=(96, 160, 224), protocol="cold",
               reps=2) -> SweepPlan:
    plan = SweepPlan()
    plan.add_sweep(MachineRef.of("tiny"), kernel, list(sizes),
                   protocol=protocol, reps=reps)
    return plan


def checksum(run) -> str:
    """SHA-256 over payloads + keys: the whole observable result."""
    doc = {
        "keys": run.keys,
        "payloads": [measurement_to_payload(m) for m in run.measurements],
    }
    encoded = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def pool_backend():
    with LocalPoolBackend(jobs=2) as backend:
        yield backend


@pytest.fixture(scope="module")
def socket_backend():
    with SocketWorkerBackend(workers=2) as backend:
        yield backend


@pytest.fixture(scope="module")
def serial_reference():
    return run_plan(small_plan(), cache=None, backend="serial")


class TestParity:
    def test_serial_pool_socket_checksum_identical(self, serial_reference,
                                                   pool_backend,
                                                   socket_backend):
        want = checksum(serial_reference)
        pool = run_plan(small_plan(), cache=None, backend=pool_backend)
        sock = run_plan(small_plan(), cache=None, backend=socket_backend)
        assert checksum(pool) == want
        assert checksum(sock) == want
        assert pool.backend == "pool" and sock.backend == "socket"

    def test_backend_names_recorded(self, serial_reference):
        assert serial_reference.backend == "serial"
        assert serial_reference.telemetry["backend"]["backend"] == "serial"

    def test_cache_populated_by_one_backend_replays_on_all(
            self, tmp_path, serial_reference, pool_backend,
            socket_backend):
        cache = SweepCache(str(tmp_path / "shared"))
        cold = run_plan(small_plan(), cache=cache, backend="serial")
        assert cold.stats.misses == 3 and cold.stats.hits == 0
        for backend in (pool_backend, socket_backend, "serial"):
            replay = run_plan(small_plan(), cache=cache, backend=backend)
            assert replay.stats.hits == 3 and replay.stats.misses == 0
            assert replay.keys == cold.keys
            assert checksum(replay) == checksum(serial_reference)
            assert replay.backend == "cached"

    def test_socket_results_fold_back_into_plan_order(self,
                                                      socket_backend):
        run = run_plan(small_plan(), cache=None, backend=socket_backend)
        plan = small_plan()
        for point, m in zip(plan, run.measurements):
            assert (point.kernel, point.n) == (m.kernel, m.n)


class TestHypothesisShapes:
    """Random small plans through long-lived (reused) backends."""

    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=8, deadline=None)
    @given(
        kernel=st.sampled_from(["daxpy", "dgemv-row"]),
        sizes=st.lists(st.sampled_from([32, 64, 96, 128, 192]),
                       min_size=1, max_size=3, unique=True),
        protocol=st.sampled_from(["cold", "warm"]),
    )
    def test_pool_and_socket_match_serial(self, kernel, sizes, protocol,
                                          pool_backend, socket_backend):
        plan = small_plan(kernel=kernel, sizes=sizes, protocol=protocol,
                          reps=1)
        serial = run_plan(plan, cache=None, backend="serial")
        want = checksum(serial)
        assert checksum(run_plan(plan, cache=None,
                                 backend=pool_backend)) == want
        assert checksum(run_plan(plan, cache=None,
                                 backend=socket_backend)) == want


class TestSocketFaults:
    def test_worker_kill_requeues_and_completes(self, monkeypatch):
        # the fault hook kills the worker simulating daxpy:160; the
        # backend must requeue the point and finish the plan on a
        # replacement worker spawned with the hook stripped
        monkeypatch.setenv("REPRO_DISTTRACE_KILL", "daxpy:160")
        with SocketWorkerBackend(workers=2) as backend:
            run = run_plan(small_plan(), cache=None, backend=backend)
            stats = backend.stats()
        monkeypatch.delenv("REPRO_DISTTRACE_KILL")
        assert len(run.measurements) == 3
        assert stats["worker_deaths"] >= 1
        assert stats["requeued"] >= 1
        reference = run_plan(small_plan(), cache=None, backend="serial")
        assert checksum(run) == checksum(reference)

    def test_requeue_budget_exhausted_raises(self, monkeypatch):
        # with a zero requeue budget the first worker death is fatal
        monkeypatch.setenv("REPRO_DISTTRACE_KILL", "daxpy:96")
        with SocketWorkerBackend(workers=1, max_requeues=0) as backend:
            with pytest.raises(SweepError, match="giving up"):
                run_plan(small_plan(), cache=None, backend=backend)

    def test_worker_error_frame_raises_sweep_point_error(self,
                                                         monkeypatch):
        from repro.errors import SweepPointError
        # the crash hook raises inside simulate_point; the worker ships
        # an error frame and stays alive (unlike the kill hook)
        monkeypatch.setenv("REPRO_DISTTRACE_CRASH", "daxpy:96")
        with SocketWorkerBackend(workers=1) as backend:
            with pytest.raises(SweepPointError):
                run_plan(small_plan(sizes=(96,)), cache=None,
                         backend=backend)
            # same worker, different label: still serving
            ok = run_plan(small_plan(sizes=(160,)), cache=None,
                          backend=backend)
            assert len(ok.measurements) == 1


class TestExternalWorkers:
    def test_manually_started_worker_serves_a_sweep(self):
        backend = SocketWorkerBackend(workers=0, spawn=False,
                                      accept_timeout=30.0)
        host, port = backend.address
        env = dict(os.environ)
        root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(root)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"{host}:{port}"], env=env)
        try:
            with backend:
                run = run_plan(small_plan(sizes=(96, 160)), cache=None,
                               backend=backend)
            assert len(run.measurements) == 2
            reference = run_plan(small_plan(sizes=(96, 160)), cache=None)
            assert checksum(run) == checksum(reference)
        finally:
            proc.terminate()
            proc.wait(timeout=10)


class TestResolveJobs:
    def test_explicit_flag_wins_over_both_env_vars(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        monkeypatch.setenv(JOBS_FALLBACK_ENV, "8")
        assert resolve_jobs(2) == 2

    def test_sweep_env_wins_over_generic_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        monkeypatch.setenv(JOBS_FALLBACK_ENV, "8")
        assert resolve_jobs(None) == 4

    def test_generic_env_honoured_when_sweep_env_unset(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.setenv(JOBS_FALLBACK_ENV, "8")
        assert resolve_jobs(None) == 8

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.delenv(JOBS_FALLBACK_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_bad_generic_env_raises(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.setenv(JOBS_FALLBACK_ENV, "many")
        with pytest.raises(SweepError, match=JOBS_FALLBACK_ENV):
            resolve_jobs(None)


class TestMakeBackend:
    def test_spellings(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        pool = make_backend("pool", jobs=3)
        assert isinstance(pool, LocalPoolBackend) and pool.jobs == 3
        pool.close()

    def test_unknown_name_raises(self):
        with pytest.raises(SweepError, match="unknown sweep backend"):
            make_backend("carrier-pigeon")

    def test_backend_context_manager_closes(self):
        with SerialBackend() as backend:
            assert not backend.closed
        assert backend.closed
