"""MachineRef: picklable machine recipes and their rebuild guarantee.

The sweep engine ships *recipes* across process boundaries, never live
machines, and the experiment config describes its platform the same
way (the old ``machine_factory`` callable could not be pickled at
all).  These tests pin the contract: refs round-trip through pickle,
equal refs build behaviourally identical machines, and overrides are
part of the identity.
"""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentConfig
from repro.machine.ref import MachineRef
from repro.sweep import SweepPlan, SweepPoint, SweepStats

pytestmark = pytest.mark.sweep


REFS = [
    MachineRef.of("tiny"),
    MachineRef.of("snb-ep", scale=0.125),
    MachineRef.of("snb-ep", scale=0.0625, sockets=2),
    MachineRef.of("snb-ep", scale=0.125).with_overrides(l3_policy="plru"),
    MachineRef.of("snb-ep", scale=0.125).with_overrides(
        timing={"reissue_interval_cycles": 64, "max_reissue_per_miss": 2},
        prefetch_enabled=False,
    ),
]


class TestPickle:
    @pytest.mark.parametrize("ref", REFS, ids=lambda r: r.describe())
    def test_ref_round_trips(self, ref):
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref
        assert clone.key_doc() == ref.key_doc()

    def test_sweep_point_and_plan_round_trip(self):
        plan = SweepPlan()
        plan.add_sweep(REFS[1], "dgemv-col", [32, 64], protocol="warm",
                       reps=2, kernel_args=None)
        plan.add(SweepPoint(machine=REFS[0], kernel="spmv", n=512,
                            kernel_args=(("bandwidth", 64),
                                         ("row_nnz", 4))))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.points == plan.points

    def test_experiment_config_round_trips(self):
        config = ExperimentConfig(quick=True, reps=1,
                                  machine_ref=MachineRef.of("tiny"),
                                  jobs=2, cache=False,
                                  stats=SweepStats())
        clone = pickle.loads(pickle.dumps(config))
        assert clone.machine_ref == config.machine_ref
        assert clone.jobs == 2 and clone.cache is False
        assert clone.ref() == config.ref()


class TestRebuild:
    def test_equal_refs_build_identical_specs(self):
        ref = MachineRef.of("snb-ep", scale=0.0625)
        a, b = ref.build(), pickle.loads(pickle.dumps(ref)).build()
        assert a.spec == b.spec

    def test_overrides_take_effect(self):
        base = MachineRef.of("snb-ep", scale=0.125)
        plru = base.with_overrides(l3_policy="plru").build()
        assert plru.spec.hierarchy.l3.policy == "plru"
        timed = base.with_overrides(
            timing={"reissue_hide_cycles": 10_000}).build()
        assert timed.spec.timing.reissue_hide_cycles == 10_000
        quiet = base.with_overrides(prefetch_enabled=False).build()
        assert not any(quiet.prefetch_control.state().values())

    def test_overrides_change_equality(self):
        base = MachineRef.of("snb-ep", scale=0.125)
        assert base.with_overrides(l3_policy="plru") != base
        assert base.with_overrides(prefetch_enabled=False) != base

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineRef.of("pentium-3")

    def test_bad_options_rejected_at_build(self):
        ref = MachineRef("tiny", options=(("sockets", 2),))
        with pytest.raises(ConfigurationError):
            ref.build()


class TestConfigPlatform:
    def test_custom_ref_wins(self):
        config = ExperimentConfig(machine_ref=MachineRef.of("tiny"))
        assert config.ref().preset == "tiny"
        assert config.machine().spec.name.startswith("tiny")

    def test_default_is_scaled_snb(self):
        config = ExperimentConfig(scale=0.0625)
        ref = config.ref()
        assert ref.preset == "snb-ep"
        assert dict(ref.options)["scale"] == 0.0625
        two = config.ref(sockets=2)
        assert dict(two.options)["sockets"] == 2
