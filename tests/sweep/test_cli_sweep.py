"""CLI surface of the sweep engine: ``repro sweep`` and the global
``--jobs`` / ``--no-cache`` / ``--cache-dir`` flags."""

import json

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.sweep


class TestParser:
    def test_sweep_subcommand_parses(self):
        args = build_parser().parse_args(
            ["sweep", "--grid", "f4", "--machine", "tiny", "--quick"])
        assert args.command == "sweep"
        assert args.grid == "f4"

    def test_global_flags_before_subcommand(self):
        args = build_parser().parse_args(
            ["--jobs", "4", "--no-cache", "sweep", "--grid", "f4"])
        assert args.jobs == 4 and args.no_cache is True

    def test_subcommand_flags_override_defaults(self):
        args = build_parser().parse_args(
            ["sweep", "--grid", "f4", "--jobs", "2",
             "--cache-dir", "/tmp/x"])
        assert args.jobs == 2 and args.cache_dir == "/tmp/x"

    def test_global_value_survives_subparser(self):
        # SUPPRESS defaults in the subparser must not clobber the
        # value parsed by the main parser
        args = build_parser().parse_args(
            ["--cache-dir", "/tmp/y", "experiment", "T1"])
        assert args.cache_dir == "/tmp/y"

    def test_unknown_grid_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--grid", "f99"])


class TestSweepCommand:
    def test_grid_then_replay_hits_100_percent(self, tmp_path, capsys):
        argv = ["sweep", "--grid", "f4", "--machine", "tiny", "--quick",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "miss" in cold and "(0% hit rate)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "(100% hit rate)" in warm

    def test_json_runs_are_bit_identical(self, tmp_path, capsys):
        argv = ["sweep", "--grid", "f4", "--machine", "tiny", "--quick",
                "--cache-dir", str(tmp_path / "cache"), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["stats"]["misses"] > 0
        assert second["stats"]["hit_rate"] == 1.0
        assert second["measurements"] == first["measurements"]
        assert second["keys"] == first["keys"]

    def test_explicit_kernel_form(self, tmp_path, capsys):
        assert main(["sweep", "daxpy", "--sizes", "64,128",
                     "--protocol", "cold,warm", "--reps", "1",
                     "--machine", "tiny",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert out.count("daxpy") >= 4  # 2 sizes x 2 protocols

    def test_no_cache_never_hits(self, tmp_path, capsys):
        argv = ["sweep", "--grid", "f4", "--machine", "tiny", "--quick",
                "--no-cache", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0 and main(argv) == 0
        out = capsys.readouterr().out
        assert "(100% hit rate)" not in out
        assert not (tmp_path / "cache").exists()

    def test_missing_grid_and_kernel_is_an_error(self, capsys):
        assert main(["sweep"]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_and_metrics_export(self, tmp_path, capsys):
        trace = tmp_path / "sweep.trace.json"
        metrics = tmp_path / "sweep.prom"
        assert main(["sweep", "--grid", "f4", "--machine", "tiny",
                     "--quick", "--cache-dir", str(tmp_path / "cache"),
                     "--trace-out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        doc = json.loads(trace.read_text())
        names = [e.get("name", "") for e in doc["traceEvents"]]
        assert any("daxpy" in n for n in names)
        text = metrics.read_text()
        assert 'repro_sweep_points_total{outcome="miss"}' in text
        assert "repro_sweep_cache_hit_rate" in text


class TestExperimentIntegration:
    def test_experiment_reports_cache_stats(self, tmp_path, capsys):
        argv = ["experiment", "F4", "--quick",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(tmp_path / "report.md")]
        assert main(argv) == 0
        assert "sweep cache:" in capsys.readouterr().out
        assert main(argv) == 0
        assert "(100% hit rate)" in capsys.readouterr().out
