"""Cache-key properties: stable across orderings and processes,
sensitive to every input field and to the version salt.

The content-addressed cache is only sound if (a) the same point always
hashes to the same key, no matter how its kwargs were ordered or which
process computed it, and (b) *any* change to the machine recipe, the
kernel identity, the measurement knobs, or the simulator version salt
moves the key.  Property (a) prevents spurious misses; property (b)
prevents the far worse failure of replaying a stale result.
"""

import subprocess
import sys
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import kernel_names
from repro.machine.ref import MachineRef
from repro.sweep import SweepPoint, point_key
from repro.sweep.cache import VERSION_SALT, canonical_json

pytestmark = pytest.mark.sweep


def refs():
    scaled = st.builds(
        lambda preset, scale: MachineRef.of(preset, scale=scale),
        st.sampled_from(["snb-ep", "snb-ep-x2"]),
        st.sampled_from([0.0625, 0.125, 0.25, 1.0]),
    )
    return st.one_of(st.just(MachineRef.of("tiny")), scaled)


def points():
    return st.builds(
        SweepPoint,
        machine=refs(),
        kernel=st.sampled_from(sorted(kernel_names())),
        n=st.integers(min_value=1, max_value=1 << 20),
        protocol=st.sampled_from(["cold", "warm"]),
        reps=st.integers(min_value=1, max_value=5),
        cores=st.lists(st.integers(0, 7), min_size=1, max_size=4,
                       unique=True).map(tuple),
        kernel_args=st.dictionaries(
            st.sampled_from(["row_nnz", "bandwidth", "tile"]),
            st.integers(1, 4096), max_size=2,
        ).map(lambda d: tuple(sorted(d.items()))),
        width_bits=st.sampled_from([None, 128, 256]),
    )


class TestKeyStability:
    @given(points())
    @settings(max_examples=60, deadline=None)
    def test_key_is_deterministic(self, point):
        assert point_key(point) == point_key(point)
        clone = replace(point)
        assert point_key(clone) == point_key(point)

    @given(st.dictionaries(st.sampled_from(["scale", "sockets"]),
                           st.integers(1, 4), min_size=2))
    @settings(max_examples=20, deadline=None)
    def test_option_order_is_irrelevant(self, options):
        items = list(options.items())
        forward = MachineRef.of("snb-ep", **dict(items))
        backward = MachineRef.of("snb-ep", **dict(reversed(items)))
        a = SweepPoint(machine=forward, kernel="daxpy", n=64)
        b = SweepPoint(machine=backward, kernel="daxpy", n=64)
        assert point_key(a) == point_key(b)

    @given(points())
    @settings(max_examples=30, deadline=None)
    def test_key_doc_is_canonically_encodable(self, point):
        text = canonical_json(point.key_doc())
        assert ", " not in text and ": " not in text
        assert canonical_json(point.key_doc()) == text

    def test_key_is_stable_across_processes(self):
        point = SweepPoint(
            machine=MachineRef.of("snb-ep", scale=0.125),
            kernel="dgemm-tiled", n=96, protocol="warm", reps=3,
            cores=(0, 1), width_bits=256,
        )
        script = (
            "from repro.machine.ref import MachineRef\n"
            "from repro.sweep import SweepPoint, point_key\n"
            "p = SweepPoint(machine=MachineRef.of('snb-ep', scale=0.125),\n"
            "               kernel='dgemm-tiled', n=96, protocol='warm',\n"
            "               reps=3, cores=(0, 1), width_bits=256)\n"
            "print(point_key(p))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == point_key(point)


class TestKeySensitivity:
    @given(points())
    @settings(max_examples=40, deadline=None)
    def test_every_point_field_moves_the_key(self, point):
        base = point_key(point)
        mutations = {
            "n": replace(point, n=point.n + 1),
            "protocol": replace(
                point,
                protocol="warm" if point.protocol == "cold" else "cold"),
            "reps": replace(point, reps=point.reps + 1),
            "cores": replace(point, cores=point.cores + (63,)),
            "kernel_args": replace(
                point,
                kernel_args=tuple(sorted(
                    dict(point.kernel_args, _probe=1).items()))),
            "width_bits": replace(
                point,
                width_bits=128 if point.width_bits != 128 else 256),
        }
        for field_name, mutated in mutations.items():
            assert point_key(mutated) != base, field_name

    @given(points())
    @settings(max_examples=40, deadline=None)
    def test_machine_recipe_moves_the_key(self, point):
        base = point_key(point)
        ref = point.machine
        variants = [
            replace(point, machine=ref.with_overrides(l3_policy="plru")
                    if ref.l3_policy != "plru"
                    else ref.with_overrides(l3_policy="lru")),
            replace(point, machine=ref.with_overrides(
                prefetch_enabled=not ref.prefetch_enabled)),
            replace(point, machine=ref.with_overrides(
                timing={"reissue_hide_cycles": 123})),
        ]
        for mutated in variants:
            assert point_key(mutated) != base

    @given(points(), st.text(min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_version_salt_moves_the_key(self, point, salt):
        if salt == VERSION_SALT:
            return
        assert point_key(point, salt=salt) != point_key(point)

    @given(points())
    @settings(max_examples=20, deadline=None)
    def test_kernel_identity_moves_the_key(self, point):
        other = next(name for name in sorted(kernel_names())
                     if name != point.kernel)
        assert point_key(replace(point, kernel=other)) != point_key(point)
