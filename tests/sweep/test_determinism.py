"""Golden determinism: serial ≡ parallel ≡ cached, bit for bit.

The whole point of the sweep engine is that *how* a point executes —
in-process, in a worker, or replayed from disk — is unobservable in the
result.  These tests lock that down over a golden grid (daxpy, dgemv,
dgemm; cold and warm) by comparing full serialised payloads, which
carry every W/Q/T field, the per-level traffic (LLC vs DRAM bytes),
and the rep summaries.
"""

import pytest

from repro.machine.ref import MachineRef
from repro.sweep import (
    SweepCache,
    SweepPlan,
    measurement_to_payload,
    run_plan,
)

pytestmark = pytest.mark.sweep

#: kernel, sizes, protocols — small enough for the tiny machine, wide
#: enough to cross BLAS levels and both cache-state protocols
GOLDEN_GRID = (
    ("daxpy", (96, 384), ("cold", "warm")),
    ("dgemv-row", (24, 48), ("cold", "warm")),
    ("dgemm-naive", (16, 24), ("cold", "warm")),
)


def golden_plan() -> SweepPlan:
    ref = MachineRef.of("tiny")
    plan = SweepPlan()
    for kernel, sizes, protocols in GOLDEN_GRID:
        for protocol in protocols:
            plan.add_sweep(ref, kernel, sizes, protocol=protocol, reps=2)
    return plan


def payloads(run):
    return [measurement_to_payload(m) for m in run.measurements]


@pytest.fixture(scope="module")
def serial_run():
    return run_plan(golden_plan(), jobs=1, cache=None)


class TestSerialParallelCached:
    def test_grid_is_nontrivial(self, serial_run):
        assert len(serial_run.measurements) == 12
        kernels = {m.kernel for m in serial_run.measurements}
        assert kernels == {"daxpy", "dgemv-row", "dgemm-naive"}
        protocols = {m.protocol for m in serial_run.measurements}
        assert protocols == {"cold", "warm"}

    def test_parallel_matches_serial_bitwise(self, serial_run):
        parallel = run_plan(golden_plan(), jobs=4, cache=None)
        assert payloads(parallel) == payloads(serial_run)

    def test_cache_replay_matches_cold_run_bitwise(self, serial_run,
                                                   tmp_path):
        cache = SweepCache(str(tmp_path / "sweepcache"))
        cold = run_plan(golden_plan(), jobs=1, cache=cache)
        assert cold.stats.misses == 12 and cold.stats.hits == 0
        replay = run_plan(golden_plan(), jobs=1, cache=cache)
        assert replay.stats.hits == 12 and replay.stats.misses == 0
        assert replay.stats.hit_rate == 1.0
        assert payloads(cold) == payloads(serial_run)
        assert payloads(replay) == payloads(serial_run)

    def test_parallel_populates_cache_identically(self, serial_run,
                                                  tmp_path):
        cache = SweepCache(str(tmp_path / "sweepcache"))
        cold = run_plan(golden_plan(), jobs=4, cache=cache)
        assert cold.stats.misses == 12
        replay = run_plan(golden_plan(), jobs=1, cache=cache)
        assert replay.stats.hit_rate == 1.0
        assert payloads(replay) == payloads(serial_run)

    def test_payload_carries_per_level_traffic(self, serial_run):
        for doc in payloads(serial_run):
            assert doc["traffic_bytes"] >= 0
            assert doc["llc_bytes"] >= 0
            assert doc["work_flops"] > 0
            assert doc["runtime_seconds"] > 0
            for summary in ("work_summary", "traffic_summary",
                            "runtime_summary"):
                assert doc[summary] is None or doc[summary]["count"] >= 1

    def test_result_order_matches_plan_order(self, serial_run):
        plan = golden_plan()
        for point, m in zip(plan, serial_run.measurements):
            assert (point.kernel, point.n, point.protocol) == \
                (m.kernel, m.n, m.protocol)


class TestRoundTrip:
    def test_payload_round_trip_is_lossless(self, serial_run):
        from repro.sweep import payload_to_measurement

        for m in serial_run.measurements:
            doc = measurement_to_payload(m)
            again = measurement_to_payload(payload_to_measurement(doc))
            assert doc == again

    def test_json_round_trip_is_lossless(self, serial_run):
        import json

        for m in serial_run.measurements:
            doc = measurement_to_payload(m)
            assert json.loads(json.dumps(doc)) == doc
