"""Sweep serialisation negative paths: malformed payloads, non-finite
metrics, empty plans.

The cache replays these payloads across simulator versions; a payload
that deserialises *wrongly* is worse than one that fails loudly, so
the structural validation is pinned here.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import MeasurementError, SweepError
from repro.measure.runner import Measurement
from repro.measure.stats import summarize
from repro.sweep import SweepPlan, run_plan
from repro.sweep.serialize import (
    PAYLOAD_SCHEMA,
    measurement_to_payload,
    payload_to_measurement,
)


def _measurement(**overrides) -> Measurement:
    base = dict(
        kernel="triad", n=64, threads=1, protocol="cold",
        machine="tiny", work_flops=128.0, traffic_bytes=4096.0,
        llc_bytes=4096.0, runtime_seconds=1e-6, true_flops=128,
        compulsory_bytes=3072, reps=2,
        work_summary=summarize([128.0, 128.0]),
        traffic_summary=summarize([4096.0, 4096.0]),
        runtime_summary=summarize([1e-6, 2e-6]),
    )
    base.update(overrides)
    return Measurement(**base)


def test_round_trip_preserves_every_field():
    m = _measurement()
    rebuilt = payload_to_measurement(measurement_to_payload(m))
    for name in ("kernel", "n", "threads", "protocol", "machine",
                 "work_flops", "traffic_bytes", "llc_bytes",
                 "runtime_seconds", "true_flops", "compulsory_bytes",
                 "reps"):
        assert getattr(rebuilt, name) == getattr(m, name)
    assert rebuilt.work_summary == m.work_summary


def test_non_finite_metrics_survive_json_round_trip_bitwise():
    # A broken subtraction can produce NaN/inf W — the cache must
    # reproduce it exactly (so the failure reproduces from cache too),
    # not quietly coerce it
    m = _measurement(work_flops=float("inf"),
                     traffic_bytes=float("nan"))
    doc = measurement_to_payload(m)
    rebuilt = payload_to_measurement(doc)
    assert math.isinf(rebuilt.work_flops)
    assert math.isnan(rebuilt.traffic_bytes)


@pytest.mark.parametrize("doc", [
    None,
    [],
    "payload",
    {},
    {"schema": PAYLOAD_SCHEMA + 1},
    {"schema": "1"},
])
def test_wrong_schema_or_shape_is_rejected(doc):
    with pytest.raises(MeasurementError):
        payload_to_measurement(doc)


def test_missing_field_is_rejected():
    doc = measurement_to_payload(_measurement())
    del doc["traffic_bytes"]
    with pytest.raises(MeasurementError):
        payload_to_measurement(doc)


def test_malformed_summary_is_rejected():
    doc = measurement_to_payload(_measurement())
    doc["work_summary"] = {"median": 1.0}  # missing the other fields
    with pytest.raises((MeasurementError, KeyError)):
        payload_to_measurement(doc)


def test_payload_is_strict_json():
    doc = measurement_to_payload(_measurement())
    rebuilt = payload_to_measurement(json.loads(json.dumps(doc)))
    assert rebuilt.kernel == "triad"


def test_empty_plan_runs_to_empty_result():
    run = run_plan(SweepPlan(), cache=False)
    assert run.measurements == []
    assert run.keys == []
    assert run.stats.points == 0
