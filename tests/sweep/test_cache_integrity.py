"""Cache corruption regression: bad entries are detected and healed.

A result cache that can return damaged bytes is worse than no cache.
Every lookup re-verifies the envelope (key echo + checksum over the
canonical payload encoding), so any corruption — truncation, bit flips,
a stale entry copied under the wrong key, garbage JSON — downgrades to
a miss: the point is re-simulated, the entry rewritten, and the defect
surfaces in the ``corrupt`` counter.  Silently replaying bad data is
the one behaviour these tests exist to forbid.
"""

import json
import os

import pytest

from repro.machine.ref import MachineRef
from repro.sweep import (
    SweepCache,
    SweepPlan,
    measurement_to_payload,
    point_key,
    run_plan,
)
from repro.sweep.cache import CORRUPT, HIT, MISS

pytestmark = pytest.mark.sweep


def one_point_plan() -> SweepPlan:
    plan = SweepPlan()
    plan.add_sweep(MachineRef.of("tiny"), "daxpy", [256],
                   protocol="cold", reps=1)
    return plan


@pytest.fixture()
def cache(tmp_path):
    return SweepCache(str(tmp_path / "sweepcache"))


@pytest.fixture()
def seeded(cache):
    """Cache with one good daxpy entry; returns (cache, key, payload)."""
    plan = one_point_plan()
    run = run_plan(plan, cache=cache)
    key = run.keys[0]
    return cache, key, measurement_to_payload(run.measurements[0])


def corrupt_truncate(path):
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) // 2)


def corrupt_flip_payload(path):
    entry = json.load(open(path))
    entry["payload"]["work_flops"] += 1.0  # checksum now stale
    json.dump(entry, open(path, "w"))


def corrupt_wrong_key(path):
    entry = json.load(open(path))
    entry["key"] = "0" * 64
    json.dump(entry, open(path, "w"))


def corrupt_not_json(path):
    with open(path, "w") as handle:
        handle.write("not json {")


def corrupt_not_a_dict(path):
    json.dump(["entry"], open(path, "w"))


CORRUPTIONS = {
    "truncated": corrupt_truncate,
    "flipped-payload": corrupt_flip_payload,
    "wrong-key": corrupt_wrong_key,
    "not-json": corrupt_not_json,
    "not-a-dict": corrupt_not_a_dict,
}


class TestLookupStatuses:
    def test_absent_entry_is_a_plain_miss(self, cache):
        payload, status = cache.lookup("ab" + "0" * 62)
        assert payload is None and status == MISS

    def test_good_entry_hits(self, seeded):
        cache, key, payload = seeded
        loaded, status = cache.lookup(key)
        assert status == HIT
        # the stored payload is the measurement fields plus the
        # compile-tier telemetry harvested at simulation time
        measurement_fields = {k: v for k, v in loaded.items()
                              if k != "plan_cache"}
        assert measurement_fields == payload
        assert loaded["plan_cache"]["hits"] >= 0

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_damaged_entry_reports_corrupt(self, seeded, name):
        cache, key, _ = seeded
        CORRUPTIONS[name](cache.path(key))
        loaded, status = cache.lookup(key)
        assert loaded is None, f"{name}: corrupted bytes were returned"
        assert status == CORRUPT


class TestTransparentResimulation:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_corrupt_entry_is_resimulated_and_healed(self, seeded, name):
        cache, key, good_payload = seeded
        CORRUPTIONS[name](cache.path(key))

        run = run_plan(one_point_plan(), cache=cache)
        assert run.stats.corrupt == 1
        assert run.stats.misses == 1 and run.stats.hits == 0
        # the re-simulated measurement is bit-identical to the original
        assert measurement_to_payload(run.measurements[0]) == good_payload

        # and the entry on disk is healed: next run is a clean hit
        again = run_plan(one_point_plan(), cache=cache)
        assert again.stats.hits == 1 and again.stats.corrupt == 0
        assert measurement_to_payload(again.measurements[0]) == good_payload

    def test_stale_schema_payload_is_rejected(self, seeded):
        cache, key, _ = seeded
        path = cache.path(key)
        entry = json.load(open(path))
        entry["payload"]["schema"] = 999
        # recompute a *valid* checksum so only schema validation can
        # catch the stale payload
        from repro.sweep.cache import _checksum
        entry["checksum"] = _checksum(entry["payload"])
        json.dump(entry, open(path, "w"))

        payload, status = cache.lookup(key)
        assert status == HIT  # envelope is intact...
        from repro.errors import MeasurementError
        from repro.sweep import payload_to_measurement
        with pytest.raises(MeasurementError):
            payload_to_measurement(payload)  # ...but deserialise refuses

    def test_store_never_leaves_partial_entries(self, cache, seeded):
        _, key, payload = seeded
        cache.store(key, payload)
        shard = os.path.dirname(cache.path(key))
        leftovers = [f for f in os.listdir(shard) if f.endswith(".tmp")]
        assert leftovers == []


class TestKeyAddressing:
    def test_entry_path_is_sharded_by_key_prefix(self, seeded):
        cache, key, _ = seeded
        path = cache.path(key)
        assert os.path.basename(os.path.dirname(path)) == key[:2]
        assert os.path.exists(path)

    def test_different_points_never_collide(self, cache):
        ref = MachineRef.of("tiny")
        plan = SweepPlan()
        plan.add_sweep(ref, "daxpy", [128, 256], protocol="cold", reps=1)
        plan.add_sweep(ref, "daxpy", [128], protocol="warm", reps=1)
        run = run_plan(plan, cache=cache)
        assert len(set(run.keys)) == 3
        docs = [measurement_to_payload(m) for m in run.measurements]
        assert docs[0] != docs[1] != docs[2]
