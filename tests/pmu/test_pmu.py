"""PMU: events, core counters, uncore noise, perf sessions."""

import pytest

from repro.errors import PmuError
from repro.machine.presets import tiny_test_machine
from repro.pmu import (
    CorePmu,
    PerfSession,
    UncorePmu,
    all_events,
    event,
    fp_event_for,
)
from repro.memory.dram import DramConfig, DramNode
from tests.conftest import build_triad


class TestEvents:
    def test_lookup_by_id_and_intel_name(self):
        by_id = event("fp_256_f64")
        by_intel = event("SIMD_FP_256.PACKED_DOUBLE")
        assert by_id is by_intel

    def test_unknown_event(self):
        with pytest.raises(PmuError):
            event("fp_1024_f64")

    def test_scope_filter(self):
        core = all_events("core")
        uncore = all_events("uncore")
        assert all(e.scope == "core" for e in core)
        assert {e.id for e in uncore} == {"imc_cas_reads", "imc_cas_writes"}

    def test_bad_scope(self):
        with pytest.raises(PmuError):
            all_events("offcore")

    def test_fp_event_for(self):
        assert fp_event_for(256, "f64") == "fp_256_f64"
        assert fp_event_for(64, "f32") == "fp_scalar_f32"
        with pytest.raises(PmuError):
            fp_event_for(96, "f64")


class TestCorePmu:
    def test_add_and_read(self):
        pmu = CorePmu(0)
        pmu.add("cycles", 100)
        pmu.add("cycles", 50)
        assert pmu.read("cycles") == 150

    def test_unknown_counter_reads_zero(self):
        assert CorePmu(0).read("instructions") == 0

    def test_fma_double_increment(self):
        pmu = CorePmu(0)
        pmu.add_fp(256, "f64", 10, is_fma=True)
        assert pmu.read("fp_256_f64") == 20

    def test_plain_op_single_increment(self):
        pmu = CorePmu(0)
        pmu.add_fp(128, "f64", 10, is_fma=False)
        assert pmu.read("fp_128_f64") == 10

    def test_uncore_event_rejected(self):
        with pytest.raises(PmuError):
            CorePmu(0).add("imc_cas_reads", 1)
        with pytest.raises(PmuError):
            CorePmu(0).read("imc_cas_reads")

    def test_negative_increment_rejected(self):
        with pytest.raises(PmuError):
            CorePmu(0).add("cycles", -1)

    def test_snapshot_and_reset(self):
        pmu = CorePmu(0)
        pmu.add("cycles", 7)
        snap = pmu.snapshot()
        pmu.add("cycles", 3)
        assert snap["cycles"] == 7
        pmu.reset()
        assert pmu.read("cycles") == 0


class TestUncorePmu:
    def _nodes(self, count=2):
        return [DramNode(i, DramConfig()) for i in range(count)]

    def test_raw_counters_no_noise(self):
        nodes = self._nodes()
        nodes[0].read_lines(10)
        nodes[1].write_lines(5)
        uncore = UncorePmu(nodes, noise_lines_per_megacycle=0.0)
        assert uncore.read("imc_cas_reads", tsc=1e9) == 10
        assert uncore.read("imc_cas_writes", tsc=1e9) == 5

    def test_per_node_read(self):
        nodes = self._nodes()
        nodes[1].read_lines(4)
        uncore = UncorePmu(nodes, noise_lines_per_megacycle=0.0)
        assert uncore.read("imc_cas_reads", tsc=0, node=1) == 4
        assert uncore.read("imc_cas_reads", tsc=0, node=0) == 0

    def test_background_noise_grows_with_tsc(self):
        uncore = UncorePmu(self._nodes(1), noise_lines_per_megacycle=100.0)
        early = uncore.read("imc_cas_reads", tsc=1e6)
        late = uncore.read("imc_cas_reads", tsc=2e6)
        assert late > early > 0

    def test_core_event_rejected(self):
        uncore = UncorePmu(self._nodes(1))
        with pytest.raises(PmuError):
            uncore.read("cycles", tsc=0)

    def test_unknown_node_rejected(self):
        uncore = UncorePmu(self._nodes(1))
        with pytest.raises(PmuError):
            uncore.read("imc_cas_reads", tsc=0, node=3)


class TestPerfSession:
    def test_deltas_cover_only_the_window(self):
        machine = tiny_test_machine()
        program = build_triad(512)
        loaded = machine.load(program)
        machine.run(loaded, core_id=0)  # outside the window
        with PerfSession(machine, core_events=("fp_256_f64",),
                         uncore_events=("imc_cas_reads",),
                         cores=(0,)) as session:
            machine.run(loaded, core_id=0)
        expected = program.static_counts().fp_width_map()[(256, "f64")]
        # warm second run: exact count, no overcount
        assert session.core_delta("fp_256_f64") >= expected
        assert session.tsc_delta > 0

    def test_read_before_close_rejected(self):
        machine = tiny_test_machine()
        session = PerfSession(machine, core_events=("cycles",))
        with pytest.raises(PmuError):
            session.core_delta("cycles")

    def test_single_use(self):
        machine = tiny_test_machine()
        session = PerfSession(machine, core_events=("cycles",))
        with session:
            pass
        with pytest.raises(PmuError):
            session.__enter__()

    def test_unprogrammed_event_rejected(self):
        machine = tiny_test_machine()
        with PerfSession(machine, core_events=("cycles",)) as session:
            pass
        with pytest.raises(PmuError):
            session.core_delta("instructions")

    def test_wrong_scope_rejected_at_construction(self):
        machine = tiny_test_machine()
        with pytest.raises(PmuError):
            PerfSession(machine, core_events=("imc_cas_reads",))
        with pytest.raises(PmuError):
            PerfSession(machine, uncore_events=("cycles",))

    def test_core_filter(self):
        machine = tiny_test_machine()
        program = build_triad(256)
        loaded = machine.load(program)
        with PerfSession(machine, core_events=("fp_256_f64",),
                         cores=(0, 1)) as session:
            machine.run(loaded, core_id=0)
        assert session.core_delta("fp_256_f64", core=1) == 0
        assert session.core_delta("fp_256_f64", core=0) > 0
        assert (session.core_delta("fp_256_f64")
                == session.core_delta("fp_256_f64", core=0))

    def test_unmonitored_core_rejected(self):
        machine = tiny_test_machine()
        with PerfSession(machine, core_events=("cycles",),
                         cores=(0,)) as session:
            pass
        with pytest.raises(PmuError):
            session.core_delta("cycles", core=1)
