"""Counter multiplexing: rotation schedule, estimates, error modes."""

import pytest

from repro.errors import PmuError
from repro.kernels import CodegenCaps, Daxpy
from repro.machine.presets import tiny_test_machine
from repro.pmu import MultiplexedPerfSession
from tests.conftest import build_triad


def run_kernel(machine, n=4096):
    loaded = machine.load(build_triad(n))
    machine.run(loaded, core_id=0)
    return loaded


class TestScheduling:
    def test_single_group_never_multiplexes(self):
        machine = tiny_test_machine()
        session = MultiplexedPerfSession(
            machine, ["fp_256_f64", "cycles"], slots=4)
        assert not session.multiplexing
        assert session._scheduled_fraction(0, 0.0, 12345.0) == 1.0

    def test_two_groups_split_time_evenly(self):
        machine = tiny_test_machine()
        session = MultiplexedPerfSession(
            machine, ["fp_256_f64", "cycles", "instructions"],
            slots=2, rotation_cycles=100.0)
        assert session.multiplexing
        # over whole periods each group gets exactly half
        assert session._scheduled_fraction(0, 0.0, 2000.0) == pytest.approx(0.5)
        assert session._scheduled_fraction(1, 0.0, 2000.0) == pytest.approx(0.5)

    def test_sub_quantum_window_is_all_or_nothing(self):
        machine = tiny_test_machine()
        session = MultiplexedPerfSession(
            machine, ["fp_256_f64", "cycles", "instructions"],
            slots=2, rotation_cycles=100.0)
        assert session._scheduled_fraction(0, 10.0, 60.0) == 1.0
        assert session._scheduled_fraction(1, 10.0, 60.0) == 0.0

    def test_validation(self):
        machine = tiny_test_machine()
        with pytest.raises(PmuError):
            MultiplexedPerfSession(machine, ["cycles"], slots=0)
        with pytest.raises(PmuError):
            MultiplexedPerfSession(machine, ["cycles"], rotation_cycles=0)
        with pytest.raises(PmuError):
            MultiplexedPerfSession(machine, ["imc_cas_reads"])


class TestEstimates:
    def test_dedicated_counters_are_exact(self):
        machine = tiny_test_machine()
        with MultiplexedPerfSession(machine, ["fp_256_f64"], slots=4) as s:
            run_kernel(machine, n=256)
        true = s.true_delta("fp_256_f64")
        assert true > 0
        assert s.estimate("fp_256_f64") == pytest.approx(true)
        assert s.estimate_error("fp_256_f64") == pytest.approx(0.0)

    def test_multiplexed_bursty_window_misestimates(self):
        """FP activity concentrated in one run inside a long idle
        window: the uniform-scaling assumption breaks."""
        machine = tiny_test_machine()
        events = ["fp_256_f64", "cycles", "instructions", "llc_misses",
                  "l1_replacement", "l2_lines_in"]  # 6 events, 4 slots
        with MultiplexedPerfSession(machine, events, slots=4,
                                    rotation_cycles=50_000.0) as s:
            machine.advance_tsc(37_000)   # idle skew
            run_kernel(machine, n=2048)
            machine.advance_tsc(200_000)  # trailing idle
        error = abs(s.estimate_error("fp_256_f64"))
        assert error > 0.05

    def test_smaller_quantum_reduces_error(self):
        """A burst aligned with the *other* group's slot is invisible to
        a coarse rotation but well-sampled by a fine one."""
        def run_with_quantum(quantum):
            machine = tiny_test_machine()
            events = ["fp_256_f64", "cycles", "instructions",
                      "llc_misses", "l1_replacement", "l2_lines_in"]
            with MultiplexedPerfSession(machine, events, slots=4,
                                        rotation_cycles=quantum) as s:
                # land the kernel burst inside group 1's first slot
                machine.advance_tsc(210_000)
                run_kernel(machine, n=1024)
                machine.advance_tsc(190_000)
            return abs(s.estimate_error("fp_256_f64"))

        coarse = run_with_quantum(200_000.0)
        fine = run_with_quantum(1_000.0)
        assert coarse > 0.5      # the burst was essentially unobserved
        assert fine < 0.15       # fine rotation samples it fairly
        assert fine < coarse

    def test_never_scheduled_group_raises(self):
        machine = tiny_test_machine()
        events = ["fp_256_f64", "cycles", "instructions"]
        with MultiplexedPerfSession(machine, events, slots=2,
                                    rotation_cycles=1e9) as s:
            run_kernel(machine, n=256)
        # group 1 (instructions) never got the counters: quantum too big
        with pytest.raises(PmuError):
            s.estimate("instructions")

    def test_unprogrammed_event_rejected(self):
        machine = tiny_test_machine()
        with MultiplexedPerfSession(machine, ["cycles"]) as s:
            pass
        with pytest.raises(PmuError):
            s.estimate("instructions")

    def test_single_use(self):
        machine = tiny_test_machine()
        s = MultiplexedPerfSession(machine, ["cycles"])
        with s:
            pass
        with pytest.raises(PmuError):
            s.__enter__()
