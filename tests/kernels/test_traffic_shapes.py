"""Cross-kernel traffic shapes: the locality contrasts the paper's
figures hinge on, asserted at the functional-simulation level."""

import pytest

from repro.kernels import CodegenCaps, Dgemm, Dgemv, Fft, Stencil3
from repro.machine.presets import tiny_test_machine

CAPS = CodegenCaps(width_bits=256, has_fma=False)


def cold_traffic(kernel, n, prefetch=False):
    """(dram reads, dram writes, cycles) for one cold run."""
    machine = tiny_test_machine()
    if not prefetch:
        machine.prefetch_control.disable_all()
    loaded = machine.load(kernel.build(n, CAPS))
    machine.bust_caches()
    run = machine.run(loaded, core_id=0)
    dram = machine.hierarchy.dram[0]
    return dram.counters.cas_reads, dram.counters.cas_writes, run.cycles


class TestDgemvLayouts:
    def test_row_major_traffic_is_compulsory(self):
        n = 64  # 32 KiB matrix >> 16 KiB L3
        reads, _w, _c = cold_traffic(Dgemv(layout="row"), n)
        matrix_lines = 8 * n * n // 64
        assert reads <= matrix_lines * 1.2 + 64

    def test_col_major_rereads_when_row_window_thrashes(self):
        # at n=512, a column walk's active window is 512 lines = 32 KiB,
        # double the tiny L3: every element touch re-fetches its line
        n = 512
        row_reads, _, row_cycles = cold_traffic(Dgemv(layout="row"), n)
        col_reads, _, col_cycles = cold_traffic(Dgemv(layout="col"), n)
        assert col_reads > 4 * row_reads
        assert col_cycles > 2 * row_cycles

    def test_power_of_two_leading_dimension_aliases_sets(self):
        """The classic pathology: an n=64 column walk strides by 512 B,
        so its 64-line window maps onto only 4 L3 sets and thrashes
        despite fitting the cache by capacity."""
        row_reads, _, _ = cold_traffic(Dgemv(layout="row"), 64)
        col_reads, _, _ = cold_traffic(Dgemv(layout="col"), 64)
        assert col_reads > 4 * row_reads

    def test_padded_leading_dimension_fixes_aliasing(self):
        """n=72 (a padded, non-power-of-two leading dimension) spreads
        the window across sets: column-major traffic collapses to
        exactly the row-major compulsory traffic."""
        row_reads, _, _ = cold_traffic(Dgemv(layout="row"), 72)
        col_reads, _, _ = cold_traffic(Dgemv(layout="col"), 72)
        assert col_reads == row_reads


class TestDgemmVariantTraffic:
    def test_tiled_moves_less_dram_than_ikj(self):
        n = 64  # 96 KiB total >> L3
        ikj_reads, _, _ = cold_traffic(Dgemm(variant="ikj"), n)
        tiled_reads, _, _ = cold_traffic(Dgemm(variant="tiled"), n)
        assert tiled_reads < ikj_reads

    def test_naive_column_walk_dominates_traffic(self):
        n = 64
        naive_reads, _, _ = cold_traffic(Dgemm(variant="naive"), n)
        tiled_reads, _, _ = cold_traffic(Dgemm(variant="tiled"), n)
        assert naive_reads > 2 * tiled_reads


class TestFftPassTraffic:
    def test_dram_resident_fft_restreams_per_pass(self):
        n = 4096  # 96 KiB footprint >> 16 KiB L3
        reads, writes, _ = cold_traffic(Fft(), n)
        once = Fft().compulsory_bytes(n) // 64
        # log2(4096)=12 passes each re-stream the array
        assert reads > 4 * once

    def test_cache_resident_fft_reads_once(self):
        n = 256  # 6 KiB fits L3
        reads, _, _ = cold_traffic(Fft(), n)
        once = Fft().footprint_bytes(n) // 64
        assert reads <= once * 1.3 + 8


class TestStencil:
    def test_overlapping_loads_share_lines(self):
        n = 8192
        reads, _, _ = cold_traffic(Stencil3(), n)
        # three shifted input streams still read each line ~once
        input_lines = (8 * n) // 64
        output_lines = (8 * n) // 64
        assert reads <= (input_lines + output_lines) * 1.15 + 16

    def test_prefetch_speeds_up_stencil(self):
        n = 8192
        _, _, off_cycles = cold_traffic(Stencil3(), n, prefetch=False)
        _, _, on_cycles = cold_traffic(Stencil3(), n, prefetch=True)
        assert on_cycles < off_cycles
