"""Per-kernel behaviour: validation rules, traffic ground truth,
variant-specific structure."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels import (
    CodegenCaps,
    Daxpy,
    Dgemm,
    Dgemv,
    Dot,
    Fft,
    Memset,
    Stencil3,
    StreamTriad,
    StridedSum,
    register_kernel,
)
from repro.kernels.base import partition_range
from repro.machine.presets import tiny_test_machine

CAPS = CodegenCaps(width_bits=256, has_fma=False)


class TestPartitionRange:
    def test_even_split(self):
        assert partition_range(100, 0, 4) == (0, 25)
        assert partition_range(100, 3, 4) == (75, 100)

    def test_remainder_spread_to_first_ranks(self):
        spans = [partition_range(10, r, 3) for r in range(3)]
        assert spans == [(0, 4), (4, 7), (7, 10)]
        assert sum(hi - lo for lo, hi in spans) == 10

    def test_bad_rank(self):
        with pytest.raises(ConfigurationError):
            partition_range(10, 3, 3)


class TestValidationRules:
    def test_daxpy_rejects_non_vector_multiple(self):
        with pytest.raises(ConfigurationError):
            Daxpy().build(1021, CAPS)

    def test_dot_rejects_indivisible_accumulators(self):
        Dot(accumulators=8).build(64, CAPS)  # 16 vectors over 8: fine
        with pytest.raises(ConfigurationError):
            Dot(accumulators=3).build(64, CAPS)  # 16 vectors over 3: not

    def test_fft_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            Fft().build(1000, CAPS)

    def test_fft_requires_128bit_simd(self):
        with pytest.raises(ConfigurationError):
            Fft().build(256, CodegenCaps(width_bits=64))

    def test_dgemm_tiled_tile_divisibility(self):
        with pytest.raises(ConfigurationError):
            Dgemm(variant="tiled", mu=4).build(36, CAPS)

    def test_dgemm_register_budget(self):
        with pytest.raises(ConfigurationError):
            Dgemm(variant="tiled", mu=8, nu=4)

    def test_bad_variant_and_layout(self):
        with pytest.raises(ConfigurationError):
            Dgemm(variant="strassen")
        with pytest.raises(ConfigurationError):
            Dgemv(layout="diag")

    def test_strided_sum_stride_positive(self):
        with pytest.raises(ConfigurationError):
            StridedSum(stride_elems=0)


class TestTrafficGroundTruth:
    """Cold-cache, prefetch-off runs must hit the analytic compulsory
    read traffic exactly for the streaming kernels."""

    def _cold_reads(self, kernel, n):
        machine = tiny_test_machine()
        machine.prefetch_control.disable_all()
        loaded = machine.load(kernel.build(n, CAPS))
        machine.bust_caches()
        machine.run(loaded, core_id=0)
        return machine.hierarchy.dram[0].counters.cas_reads * 64

    def test_daxpy_reads(self):
        n = 8192  # 128 KiB, far beyond the 16 KiB L3
        assert self._cold_reads(Daxpy(), n) == 16 * n

    def test_triad_reads_include_rfo(self):
        n = 8192
        assert self._cold_reads(StreamTriad(), n) == 24 * n

    def test_triad_nt_reads_skip_rfo(self):
        n = 8192
        assert self._cold_reads(StreamTriad(nt_stores=True), n) == 16 * n

    def test_memset_nt_causes_zero_reads(self):
        n = 8192
        assert self._cold_reads(Memset(nt_stores=True), n) == 0

    def test_strided_sum_one_line_per_element(self):
        n = 1024
        kernel = StridedSum(stride_elems=16)
        assert self._cold_reads(kernel, n) == 64 * n


class TestDgemmVariants:
    def test_all_variants_execute_2n3_flops(self):
        n = 32
        for variant in ("ikj", "blocked", "tiled"):
            kernel = Dgemm(variant=variant)
            program = kernel.build(n, CAPS)
            assert program.static_counts().flops == 2 * n ** 3

    def test_naive_includes_combine_tree(self):
        n = 32
        kernel = Dgemm(variant="naive", unroll=4)
        program = kernel.build(n, CAPS)
        assert program.static_counts().flops == 2 * n ** 3 + 4 * n * n

    def test_fma_and_muladd_paths_agree(self):
        n = 32
        kernel = Dgemm(variant="tiled")
        fma = kernel.build(n, CodegenCaps(256, True)).static_counts().flops
        mul = kernel.build(n, CodegenCaps(256, False)).static_counts().flops
        assert fma == mul


class TestFftStructure:
    def test_flops_formula(self):
        kernel = Fft()
        assert kernel.flops(1024) == 5 * 1024 * 10

    def test_every_stage_streams_whole_array(self):
        n = 256
        program = Fft().build(n, CAPS)
        counts = program.static_counts()
        stages = 8
        # per stage: n/2 butterflies x (3 loads, 2 stores)
        assert counts.loads == stages * (n // 2) * 3
        assert counts.stores == stages * (n // 2) * 2

    def test_parallel_ranks_are_independent_batches(self):
        kernel = Fft()
        caps = CAPS
        per_rank = kernel.build(1024, caps, rank=0, nranks=4)
        assert per_rank.static_counts().flops == kernel.flops(256)
        assert kernel.expected_flops(1024, caps, 4) == 4 * kernel.flops(256)


class TestStencil:
    def test_five_flops_per_element(self):
        program = Stencil3().build(1024, CAPS)
        assert program.static_counts().flops == 5 * 1024

    def test_halo_keeps_accesses_in_bounds(self):
        Stencil3().build(1024, CAPS).check_bounds()


class TestRegistryExtension:
    def test_register_custom_kernel(self):
        class Custom(Daxpy):
            name = "custom-daxpy-test"

        register_kernel("custom-daxpy-test", Custom)
        from repro.kernels import make_kernel
        assert isinstance(make_kernel("custom-daxpy-test"), Custom)
        with pytest.raises(ConfigurationError):
            register_kernel("custom-daxpy-test", Custom)
