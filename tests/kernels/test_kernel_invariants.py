"""Cross-kernel invariants: generated code matches analytic ground truth
for every kernel, SIMD width, FMA mode, and partitioning."""

import pytest

from repro.kernels import CodegenCaps, kernel_names, make_kernel

#: (kernel name, a valid n) — n chosen to satisfy every divisibility rule
CASES = [
    ("daxpy", 1024),
    ("triad", 1024),
    ("triad-nt", 1024),
    ("dot", 1024),
    ("scale", 1024),
    ("sum", 1024),
    ("strided-sum", 512),
    ("dgemv-row", 64),
    ("dgemv-col", 64),
    ("dgemm-naive", 32),
    ("dgemm-ikj", 32),
    ("dgemm-blocked", 32),
    ("dgemm-tiled", 32),
    ("ert", 1024),
    ("fft", 1024),
    ("spmv", 256),
    ("spmv-wide", 256),
    ("stencil3", 1024),
    ("read", 1024),
    ("memset", 1024),
    ("memset-nt", 1024),
    ("memcpy", 1024),
    ("memcpy-nt", 1024),
]

ALL_CAPS = [
    CodegenCaps(width_bits=128, has_fma=False),
    CodegenCaps(width_bits=256, has_fma=False),
    CodegenCaps(width_bits=256, has_fma=True),
    CodegenCaps(width_bits=512, has_fma=True),
]


def test_case_list_covers_registry():
    # the registry may gain user-registered kernels at runtime (another
    # test exercises that), but every built-in must be covered here
    assert {name for name, _ in CASES} <= set(kernel_names())
    builtin = {k for k in kernel_names() if not k.startswith("custom")}
    assert builtin <= {name for name, _ in CASES}


@pytest.mark.parametrize("name,n", CASES)
@pytest.mark.parametrize("caps", ALL_CAPS,
                         ids=lambda c: f"{c.width_bits}{'f' if c.has_fma else ''}")
class TestGeneratedFlopsExact:
    def test_static_flops_match_expected(self, name, n, caps):
        kernel = make_kernel(name)
        program = kernel.build(n, caps)
        assert program.static_counts().flops == kernel.expected_flops(n, caps)

    def test_bounds_hold(self, name, n, caps):
        # build() runs check_bounds; a second explicit call must not raise
        make_kernel(name).build(n, caps).check_bounds()


@pytest.mark.parametrize("name,n", CASES)
class TestPartitioning:
    def test_rank_flops_sum_to_total(self, name, n):
        caps = CodegenCaps(width_bits=256, has_fma=False)
        kernel = make_kernel(name)
        nranks = 2
        total = sum(
            kernel.build(n, caps, rank=rank, nranks=nranks)
            .static_counts().flops
            for rank in range(nranks)
        )
        assert total == kernel.expected_flops(n, caps, nranks)

    def test_footprint_and_compulsory_positive(self, name, n):
        kernel = make_kernel(name)
        assert kernel.footprint_bytes(n) > 0
        assert kernel.compulsory_bytes(n) > 0


@pytest.mark.parametrize("name,n", CASES)
def test_describe_is_nonempty(name, n):
    assert make_kernel(name).describe()


class TestIntensityOrdering:
    def test_canonical_intensity_spectrum(self):
        """The paper's kernel set spans memory-bound to compute-bound:
        daxpy < sum < stencil < fft(n) < dgemm(n).  (daxpy sits lowest:
        2 flops over 24 bytes; sum is 1 flop over 8.)"""
        oi = {
            name: make_kernel(name).operational_intensity(n)
            for name, n in (("sum", 1024), ("daxpy", 1024),
                            ("stencil3", 1024), ("fft", 4096),
                            ("dgemm-tiled", 256))
        }
        assert oi["daxpy"] < oi["sum"] < oi["stencil3"] < oi["fft"]
        assert oi["fft"] < oi["dgemm-tiled"]

    def test_flop_free_kernels_reject_intensity(self):
        from repro.errors import ConfigurationError
        for name in ("read", "memset", "memcpy"):
            with pytest.raises(ConfigurationError):
                make_kernel(name).operational_intensity(1024)
