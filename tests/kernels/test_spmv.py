"""SpMV kernel: pattern determinism, ground truth, locality behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels import CodegenCaps, Spmv
from repro.kernels.spmv import _lcg_columns
from repro.machine.presets import tiny_test_machine
from repro.measure import measure_kernel

CAPS = CodegenCaps(width_bits=256, has_fma=False)


class TestPattern:
    def test_deterministic(self):
        a = _lcg_columns(64, 4, 32, seed=7)
        b = _lcg_columns(64, 4, 32, seed=7)
        assert a == b

    def test_columns_in_range(self):
        columns = _lcg_columns(128, 8, 64, seed=3)
        assert len(columns) == 128 * 8
        assert all(0 <= c < 128 for c in columns)

    def test_band_is_respected(self):
        n, band = 1000, 10
        columns = _lcg_columns(n, 4, band, seed=1)
        for row in range(10, 100):
            for j in range(4):
                col = columns[row * 4 + j]
                assert abs(col - row) <= band

    def test_seed_changes_pattern(self):
        assert _lcg_columns(64, 4, 32, 1) != _lcg_columns(64, 4, 32, 2)


class TestGroundTruth:
    def test_flops_formula(self):
        kernel = Spmv(row_nnz=8)
        assert kernel.flops(100) == 2 * 100 * 8 + 100

    def test_generated_flops_exact(self):
        kernel = Spmv(row_nnz=4, bandwidth=64)
        program = kernel.build(128, CAPS)
        assert program.static_counts().flops == kernel.flops(128)

    def test_loads_include_gathers(self):
        kernel = Spmv(row_nnz=4)
        counts = kernel.build(64, CAPS).static_counts()
        # per nnz: val + colidx + gather; per row: y load
        assert counts.loads == 64 * 4 * 3 + 64
        assert counts.stores == 64

    def test_partitioning(self):
        kernel = Spmv(row_nnz=4)
        total = sum(
            kernel.build(128, CAPS, rank=r, nranks=2).static_counts().flops
            for r in range(2)
        )
        assert total == kernel.flops(128)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Spmv(row_nnz=0)
        with pytest.raises(ConfigurationError):
            Spmv().validate_n(100, CAPS, nranks=3)


class TestLocality:
    def test_narrow_band_beats_wide_band(self):
        machine = tiny_test_machine()
        n = 2048  # x = 16 KiB, exactly the L3
        narrow = measure_kernel(machine, Spmv(row_nnz=4, bandwidth=64), n,
                                protocol="cold", reps=1)
        wide = measure_kernel(machine, Spmv(row_nnz=4, bandwidth=1 << 20), n,
                              protocol="cold", reps=1)
        assert narrow.performance > 1.1 * wide.performance

    def test_intensity_near_analytic(self):
        machine = tiny_test_machine()
        kernel = Spmv(row_nnz=4, bandwidth=64)
        m = measure_kernel(machine, kernel, 4096, protocol="cold", reps=1)
        analytic = kernel.operational_intensity(4096)
        assert m.intensity == pytest.approx(analytic, rel=0.3)
