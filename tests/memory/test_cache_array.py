"""Array backend vs ways backend: behavioural equivalence, all policies.

The ``array`` backend flattens per-set replacement state into numpy
rows (stamps for LRU/FIFO, tree bits for PLRU, the shared xorshift
stream for random).  Hypothesis drives both backends through identical
lookup/fill/invalidate/mark_dirty sequences and requires every return
value, statistic, and piece of final state to match the ``ways``
backend's :class:`~repro.memory.replacement.ReplacementPolicy` path.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memory.cache import Cache, CacheConfig
from repro.memory.replacement import policy_names

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402


def _config(policy: str) -> CacheConfig:
    # 4 sets x 4 ways: small enough that fuzzed streams conflict often
    return CacheConfig("test", 1024, line_bytes=64, assoc=4, policy=policy)


def _pair(policy: str):
    return (Cache(_config(policy), backend="ways"),
            Cache(_config(policy), backend="array"))


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "lookup_w", "fill", "fill_d",
                         "invalidate", "mark_dirty", "contains"]),
        st.integers(min_value=0, max_value=23),
    ),
    max_size=120,
)


def _apply(cache: Cache, op: str, line: int):
    if op == "lookup":
        return cache.lookup_update(line)
    if op == "lookup_w":
        return cache.lookup_update(line, mark_dirty=True)
    if op == "fill":
        return cache.fill(line)
    if op == "fill_d":
        return cache.fill(line, dirty=True)
    if op == "invalidate":
        return cache.invalidate(line)
    if op == "mark_dirty":
        return cache.mark_dirty(line)
    return cache.contains(line)


def _state(cache: Cache):
    return (
        sorted(cache.resident_lines()),
        sorted(cache.dirty_lines()),
        cache.occupancy(),
        vars(cache.stats).copy(),
    )


@pytest.mark.parametrize("policy", policy_names())
@given(ops=_OPS)
@settings(max_examples=120, deadline=None)
def test_array_backend_matches_ways_backend(policy, ops):
    ways, array = _pair(policy)
    for step, (op, line) in enumerate(ops):
        expected = _apply(ways, op, line)
        got = _apply(array, op, line)
        assert got == expected, (
            f"step {step}: {op}({line}) -> {got!r}, ways gave {expected!r}"
        )
    assert _state(array) == _state(ways)


@pytest.mark.parametrize("policy", policy_names())
@given(ops=_OPS)
@settings(max_examples=60, deadline=None)
def test_occupancy_counter_matches_recount(policy, ops):
    cache = Cache(_config(policy), backend="array")
    for op, line in ops:
        _apply(cache, op, line)
        assert cache.occupancy() == sum(1 for _ in cache.resident_lines())


@given(ops=_OPS)
@settings(max_examples=60, deadline=None)
def test_dict_backend_occupancy_counter_matches_recount(ops):
    cache = Cache(_config("lru"))  # default: dict fast path
    assert cache._fast
    for op, line in ops:
        _apply(cache, op, line)
        assert cache.occupancy() == sum(1 for _ in cache.resident_lines())


@pytest.mark.parametrize("policy", policy_names())
def test_clear_resets_array_state(policy):
    cache = Cache(_config(policy), backend="array")
    for line in range(12):
        cache.fill(line, dirty=(line % 2 == 0))
    assert cache.occupancy() > 0
    cache.clear()
    assert cache.occupancy() == 0
    assert list(cache.resident_lines()) == []
    assert list(cache.dirty_lines()) == []
    # and it is immediately usable again
    cache.fill(5)
    assert cache.contains(5)
    assert cache.occupancy() == 1


def test_dict_backend_requires_lru():
    with pytest.raises(ConfigurationError):
        Cache(_config("fifo"), backend="dict")


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        Cache(_config("lru"), backend="hash")
