"""Memory hierarchy: demand paths, writeback chains, NT stores,
prefetch integration, and traffic-conservation properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.memory.dram import DramConfig
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.numa import NumaConfig, Topology
from repro.prefetch import PrefetchControl


def make_hierarchy(prefetch=False, sockets=1, cores=2):
    config = HierarchyConfig(
        l1=CacheConfig("L1", 512, assoc=2, latency_cycles=4),
        l2=CacheConfig("L2", 2048, assoc=4, latency_cycles=12),
        l3=CacheConfig("L3", 8192, assoc=8, latency_cycles=30),
        dram=DramConfig(channels=1, bytes_per_cycle_total=8.0,
                        per_core_bytes_per_cycle=4.0, latency_cycles=100),
        numa=NumaConfig(),
    )
    factory = None if prefetch else list
    return MemoryHierarchy(config, Topology(sockets, cores),
                           prefetch_factory=factory)


class TestConfigValidation:
    def test_mismatched_line_size_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(
                l1=CacheConfig("L1", 512, line_bytes=32, assoc=2),
                l2=CacheConfig("L2", 2048, assoc=4),
                l3=CacheConfig("L3", 8192, assoc=8),
                dram=DramConfig(),
            )

    def test_shrinking_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(
                l1=CacheConfig("L1", 4096, assoc=2),
                l2=CacheConfig("L2", 2048, assoc=4),
                l3=CacheConfig("L3", 8192, assoc=8),
                dram=DramConfig(),
            )


class TestDemandPath:
    def test_cold_miss_counts_dram_read_and_fills_all_levels(self):
        hier = make_hierarchy()
        port = hier.port(0)
        stats = port.access_lines([100], is_write=False)
        assert stats.dram_reads == 1
        assert hier.l1[0].contains(100)
        assert hier.l2[0].contains(100)
        assert hier.l3[0].contains(100)
        assert hier.dram[0].counters.cas_reads == 1

    def test_l1_hit_after_fill(self):
        hier = make_hierarchy()
        port = hier.port(0)
        port.access_lines([100], is_write=False)
        stats = port.access_lines([100], is_write=False)
        assert stats.l1_hits == 1
        assert stats.dram_reads == 0

    def test_l2_hit_path(self):
        hier = make_hierarchy()
        port = hier.port(0)
        port.access_lines([100], is_write=False)
        hier.l1[0].invalidate(100)
        stats = port.access_lines([100], is_write=False)
        assert stats.l2_hits == 1
        assert hier.l1[0].contains(100)

    def test_l3_hit_path(self):
        hier = make_hierarchy()
        port = hier.port(0)
        port.access_lines([100], is_write=False)
        hier.l1[0].invalidate(100)
        hier.l2[0].invalidate(100)
        stats = port.access_lines([100], is_write=False)
        assert stats.l3_hits == 1

    def test_write_marks_l1_dirty(self):
        hier = make_hierarchy()
        port = hier.port(0)
        port.access_lines([100], is_write=True)
        assert 100 in set(hier.l1[0].dirty_lines())

    def test_write_miss_causes_rfo_read(self):
        hier = make_hierarchy()
        port = hier.port(0)
        stats = port.access_lines([100], is_write=True)
        assert stats.dram_reads == 1  # write-allocate reads the line

    def test_private_caches_are_private(self):
        hier = make_hierarchy()
        hier.port(0).access_lines([100], is_write=False)
        assert not hier.l1[1].contains(100)
        # but the shared L3 serves core 1
        stats = hier.port(1).access_lines([100], is_write=False)
        assert stats.l3_hits == 1


class TestWritebacks:
    def test_dirty_eviction_chain_reaches_dram(self):
        hier = make_hierarchy()
        port = hier.port(0)
        # dirty a line, then stream enough lines through to evict it
        # from every level (footprint > L3's 128 lines)
        port.access_lines([0], is_write=True)
        stats = port.access_lines(list(range(1, 300)), is_write=False)
        total_wb = stats.writebacks
        assert total_wb >= 1
        assert hier.dram[0].counters.cas_writes == total_wb

    def test_clean_evictions_cost_no_dram_writes(self):
        hier = make_hierarchy()
        port = hier.port(0)
        port.access_lines(list(range(300)), is_write=False)
        assert hier.dram[0].counters.cas_writes == 0


class TestNtStores:
    def test_nt_store_bypasses_caches(self):
        hier = make_hierarchy()
        port = hier.port(0)
        stats = port.access_lines([50], is_write=True, nt=True)
        assert stats.nt_lines == 1
        assert stats.dram_reads == 0           # no RFO
        assert hier.dram[0].counters.cas_writes == 1
        assert not hier.l1[0].contains(50)

    def test_nt_store_invalidates_stale_copies(self):
        hier = make_hierarchy()
        port = hier.port(0)
        port.access_lines([50], is_write=False)
        port.access_lines([50], is_write=True, nt=True)
        assert not hier.l1[0].contains(50)
        assert not hier.l3[0].contains(50)


class TestFlushAndPrefetchOps:
    def test_flush_writes_dirty_line(self):
        hier = make_hierarchy()
        port = hier.port(0)
        port.access_lines([7], is_write=True)
        stats = port.flush_lines([7])
        assert stats.writebacks == 1
        assert not hier.l1[0].contains(7)

    def test_flush_clean_line_no_write(self):
        hier = make_hierarchy()
        port = hier.port(0)
        port.access_lines([7], is_write=False)
        stats = port.flush_lines([7])
        assert stats.writebacks == 0

    def test_software_prefetch_fills_and_next_access_hits(self):
        hier = make_hierarchy()
        port = hier.port(0)
        port.software_prefetch([9])
        stats = port.access_lines([9], is_write=False)
        assert stats.l1_hits == 1


class TestHardwarePrefetchIntegration:
    def test_stream_triggers_prefetch_traffic(self):
        hier = make_hierarchy(prefetch=True)
        port = hier.port(0)
        stats = port.access_lines(list(range(64)), is_write=False)
        assert stats.hw_prefetch_issued > 0
        assert stats.prefetch_useful > 0
        # covered lines hit L2 instead of missing to DRAM
        assert stats.l2_hits > 0

    def test_disabled_control_stops_engines(self):
        hier = make_hierarchy(prefetch=True)
        hier.prefetch_control.disable_all()
        stats = hier.port(0).access_lines(list(range(64)), is_write=False)
        assert stats.hw_prefetch_issued == 0
        assert stats.dram_reads == 64

    def test_total_dram_reads_conserved_for_streams(self):
        """Prefetch must not change total line fetches for a fully
        consumed contiguous stream (useful prefetches replace demand)."""
        on = make_hierarchy(prefetch=True)
        on.port(0).access_lines(list(range(64)), is_write=False)
        off = make_hierarchy(prefetch=False)
        off.port(0).access_lines(list(range(64)), is_write=False)
        reads_on = on.dram[0].counters.cas_reads
        reads_off = off.dram[0].counters.cas_reads
        assert reads_off == 64
        assert reads_on >= 64
        assert reads_on <= 64 + 16  # bounded run-ahead overfetch


class TestBust:
    def test_bust_clears_everything(self):
        hier = make_hierarchy(prefetch=True)
        port = hier.port(0)
        port.access_lines(list(range(32)), is_write=True)
        hier.bust()
        assert hier.l1[0].occupancy() == 0
        assert hier.l3[0].occupancy() == 0
        stats = port.access_lines([0], is_write=False)
        assert stats.dram_reads == 1

    def test_writeback_all_counts_dirty_lines(self):
        hier = make_hierarchy()
        port = hier.port(0)
        port.access_lines([1, 2, 3], is_write=True)
        written = hier.writeback_all()
        assert written == 3
        assert hier.dram[0].counters.cas_writes == 3


class TestNuma:
    def test_remote_access_counted_on_home_node(self):
        hier = make_hierarchy(sockets=2, cores=2)
        port = hier.port(0)  # socket 0
        stats = port.access_lines([10], is_write=False, node=1)
        assert stats.remote_dram_lines == 1
        assert hier.dram[1].counters.cas_reads == 1
        assert hier.dram[0].counters.cas_reads == 0

    def test_local_access_not_remote(self):
        hier = make_hierarchy(sockets=2, cores=2)
        port = hier.port(2)  # socket 1
        stats = port.access_lines([10], is_write=False, node=1)
        assert stats.remote_dram_lines == 0
        assert hier.dram[1].counters.cas_reads == 1

    def test_unknown_core_rejected(self):
        hier = make_hierarchy()
        with pytest.raises(ConfigurationError):
            hier.port(99)


class TestTrafficConservation:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=255),
                              st.booleans()),
                    min_size=1, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_reads_bounded_by_accesses_and_cover_unique_lines(self, stream):
        """Without prefetchers: every unique line is read exactly once
        unless evicted and re-touched; total reads never exceed total
        accesses; writes never exceed reads (write-allocate)."""
        hier = make_hierarchy(prefetch=False)
        port = hier.port(0)
        for line, is_write in stream:
            port.access_lines([line], is_write=is_write)
        reads = hier.dram[0].counters.cas_reads
        writes = hier.dram[0].counters.cas_writes
        unique = len({line for line, _ in stream})
        assert reads >= unique
        assert reads <= len(stream)
        assert writes <= reads

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_small_working_set_reads_exactly_unique(self, lines):
        """A working set that fits L1 is read once per unique line."""
        hier = make_hierarchy(prefetch=False)
        small = [line % 8 for line in lines]  # 8 lines << L1 capacity
        port = hier.port(0)
        for line in small:
            port.access_lines([line], is_write=False)
        assert hier.dram[0].counters.cas_reads == len(set(small))
