"""Allocator: alignment, lookup, NUMA placement, property checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.memory.allocator import BumpAllocator
from repro.units import PAGE_BYTES


class TestAllocate:
    def test_page_aligned(self):
        alloc = BumpAllocator()
        region = alloc.allocate("x", 100)
        assert region.base % PAGE_BYTES == 0
        assert region.size == 100

    def test_distinct_pages(self):
        alloc = BumpAllocator()
        a = alloc.allocate("a", 10)
        b = alloc.allocate("b", 10)
        assert b.base >= a.base + PAGE_BYTES

    def test_duplicate_name_rejected(self):
        alloc = BumpAllocator()
        alloc.allocate("x", 8)
        with pytest.raises(AllocationError):
            alloc.allocate("x", 8)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(AllocationError):
            BumpAllocator().allocate("x", 0)

    def test_bad_alignment_rejected(self):
        with pytest.raises(AllocationError):
            BumpAllocator().allocate("x", 8, align=48)

    def test_custom_alignment(self):
        alloc = BumpAllocator()
        region = alloc.allocate("x", 8, align=PAGE_BYTES * 4)
        assert region.base % (PAGE_BYTES * 4) == 0

    def test_capacity_exhaustion(self):
        alloc = BumpAllocator(capacity=PAGE_BYTES * 4)
        alloc.allocate("a", PAGE_BYTES)
        with pytest.raises(AllocationError):
            alloc.allocate("b", PAGE_BYTES * 8)

    def test_node_recorded(self):
        alloc = BumpAllocator()
        region = alloc.allocate("x", 64, node=1)
        assert region.node == 1
        assert alloc.node_of(region.base) == 1


class TestLookup:
    def test_region_of_hits(self):
        alloc = BumpAllocator()
        a = alloc.allocate("a", 100)
        b = alloc.allocate("b", 100)
        assert alloc.region_of(a.base + 50).name == "a"
        assert alloc.region_of(b.base).name == "b"

    def test_region_of_unmapped_raises(self):
        alloc = BumpAllocator()
        a = alloc.allocate("a", 100)
        with pytest.raises(AllocationError):
            alloc.region_of(a.base + 200)
        with pytest.raises(AllocationError):
            alloc.region_of(0)

    def test_get_by_name(self):
        alloc = BumpAllocator()
        alloc.allocate("x", 64)
        assert alloc.get("x").name == "x"
        with pytest.raises(AllocationError):
            alloc.get("missing")

    def test_line_range(self):
        alloc = BumpAllocator()
        region = alloc.allocate("x", 130)
        first, last = region.line_range()
        assert first == region.base // 64
        assert (last - first) * 64 >= 130


class TestReset:
    def test_reset_clears_everything(self):
        alloc = BumpAllocator()
        alloc.allocate("x", 64)
        alloc.reset()
        assert alloc.allocations == []
        assert alloc.bytes_allocated == 0
        alloc.allocate("x", 64)  # name usable again


class TestProperties:
    @given(st.lists(st.integers(min_value=1, max_value=1 << 20),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_regions_never_overlap(self, sizes):
        alloc = BumpAllocator()
        regions = [alloc.allocate(f"b{i}", size)
                   for i, size in enumerate(sizes)]
        regions.sort(key=lambda r: r.base)
        for before, after in zip(regions, regions[1:]):
            assert before.end <= after.base

    @given(st.lists(st.integers(min_value=1, max_value=1 << 16),
                    min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_every_inner_address_resolves(self, sizes):
        alloc = BumpAllocator()
        regions = [alloc.allocate(f"b{i}", size)
                   for i, size in enumerate(sizes)]
        for region in regions:
            assert alloc.region_of(region.base) is region
            assert alloc.region_of(region.end - 1) is region
