"""Topology and NUMA configuration tests."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.numa import NumaConfig, Topology


class TestTopology:
    def test_total_cores(self):
        assert Topology(2, 8).total_cores == 16

    def test_node_of_core_socket_major(self):
        topo = Topology(2, 4)
        assert [topo.node_of_core(c) for c in range(8)] == [0] * 4 + [1] * 4

    def test_node_of_core_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Topology(1, 4).node_of_core(4)

    def test_cores_of_node(self):
        topo = Topology(2, 3)
        assert topo.cores_of_node(0) == [0, 1, 2]
        assert topo.cores_of_node(1) == [3, 4, 5]
        with pytest.raises(ConfigurationError):
            topo.cores_of_node(2)

    def test_first_cores_fills_socket_zero_first(self):
        topo = Topology(2, 4)
        assert topo.first_cores(3) == [0, 1, 2]
        assert topo.first_cores(6) == [0, 1, 2, 3, 4, 5]
        with pytest.raises(ConfigurationError):
            topo.first_cores(9)

    def test_interleaved_cores_alternate_sockets(self):
        topo = Topology(2, 4)
        assert topo.interleaved_cores(4) == [0, 4, 1, 5]

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            Topology(0, 4)


class TestNumaConfig:
    def test_defaults_valid(self):
        config = NumaConfig()
        assert 0 < config.remote_bandwidth_factor <= 1.0

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            NumaConfig(remote_bandwidth_factor=0.0)
        with pytest.raises(ConfigurationError):
            NumaConfig(remote_bandwidth_factor=1.5)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            NumaConfig(remote_latency_extra_cycles=-1)
