"""TLB model: two-level LRU translation caching and walk accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.tlb import Tlb, TlbConfig


class TestConfig:
    def test_defaults_valid(self):
        config = TlbConfig()
        assert config.l2_entries >= config.l1_entries

    def test_rejects_inverted_levels(self):
        with pytest.raises(ConfigurationError):
            TlbConfig(l1_entries=128, l2_entries=64)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ConfigurationError):
            TlbConfig(page_bytes=3000)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            TlbConfig(walk_latency_cycles=-1)


class TestTranslate:
    def test_first_touch_walks(self):
        tlb = Tlb(TlbConfig(walk_latency_cycles=30))
        assert tlb.translate_page(5) == 30
        assert tlb.stats.walks == 1

    def test_second_touch_hits_l1(self):
        tlb = Tlb(TlbConfig())
        tlb.translate_page(5)
        assert tlb.translate_page(5) == 0
        assert tlb.stats.l1_hits == 1

    def test_l1_victims_land_in_l2(self):
        config = TlbConfig(l1_entries=2, l2_entries=8)
        tlb = Tlb(config)
        for page in (1, 2, 3):  # 1 evicted from L1 -> L2
            tlb.translate_page(page)
        assert tlb.translate_page(1) == 0
        assert tlb.stats.l2_hits == 1

    def test_capacity_miss_after_both_levels(self):
        config = TlbConfig(l1_entries=2, l2_entries=2, walk_latency_cycles=10)
        tlb = Tlb(config)
        for page in range(10):
            tlb.translate_page(page)
        assert tlb.translate_page(0) == 10  # long gone

    def test_lru_order_in_l1(self):
        config = TlbConfig(l1_entries=2, l2_entries=4)
        tlb = Tlb(config)
        tlb.translate_page(1)
        tlb.translate_page(2)
        tlb.translate_page(1)   # refresh 1
        tlb.translate_page(3)   # evicts 2 to L2, not 1
        assert 1 in tlb._l1
        assert 2 in tlb._l2

    def test_page_of_line(self):
        tlb = Tlb(TlbConfig(page_bytes=4096))
        assert tlb.page_of_line(0) == 0
        assert tlb.page_of_line(63) == 0
        assert tlb.page_of_line(64) == 1

    def test_flush_and_reset(self):
        tlb = Tlb(TlbConfig())
        tlb.translate_page(1)
        tlb.flush()
        assert tlb.resident_pages == 0
        assert tlb.stats.walks == 1  # flush keeps stats
        tlb.reset()
        assert tlb.stats.walks == 0

    @given(st.lists(st.integers(min_value=0, max_value=500),
                    min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_capacity_invariant(self, pages):
        config = TlbConfig(l1_entries=8, l2_entries=16)
        tlb = Tlb(config)
        for page in pages:
            tlb.translate_page(page)
            assert len(tlb._l1) <= 8
            assert len(tlb._l2) <= 16
            assert tlb.contains(page)

    @given(st.lists(st.integers(min_value=0, max_value=7),
                    min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_small_working_set_walks_once_per_page(self, pages):
        tlb = Tlb(TlbConfig(l1_entries=16, l2_entries=32))
        for page in pages:
            tlb.translate_page(page)
        assert tlb.stats.walks == len(set(pages))


class TestHierarchyIntegration:
    def test_streaming_kernel_few_walks(self):
        from repro.machine.presets import tiny_test_machine
        from tests.conftest import build_triad
        machine = tiny_test_machine()
        loaded = machine.load(build_triad(8192))
        machine.bust_caches()
        run = machine.run(loaded, core_id=0)
        batch = run.result.batch
        # ~1 walk per 4 KiB page of the 128 KiB footprint
        pages = 2 * 8192 * 8 // 4096
        assert batch.tlb_misses <= pages + 4
        assert machine.core_pmu(0).read("dtlb_walks") == batch.tlb_misses

    def test_page_thrashing_stride_walks_per_access(self):
        from repro.isa import ProgramBuilder
        from repro.machine.presets import tiny_test_machine
        machine = tiny_test_machine()
        b = ProgramBuilder()
        # stride of exactly one page across 2048 pages: defeats a
        # 64+512-entry TLB completely on the second pass
        x = b.buffer("x", 2048 * 4096)
        with b.loop(2, "rep") as rep:
            with b.loop(2048, "i") as i:
                b.load(x[i * 4096 + rep * 8], width=64)
        loaded = machine.load(b.build())
        machine.bust_caches()
        run = machine.run(loaded, core_id=0)
        assert run.result.batch.tlb_misses >= 4000  # both passes walk

    def test_walks_slow_the_kernel(self):
        """Same line count, page-dense vs page-sparse: sparse pays."""
        from repro.isa import ProgramBuilder
        from repro.machine.presets import tiny_test_machine

        def run_with_stride(stride_bytes, trips):
            machine = tiny_test_machine()
            machine.prefetch_control.disable_all()
            b = ProgramBuilder()
            x = b.buffer("x", trips * stride_bytes)
            with b.loop(trips) as i:
                b.load(x[i * stride_bytes], width=64)
            loaded = machine.load(b.build())
            machine.bust_caches()
            return machine.run(loaded, core_id=0).cycles

        dense = run_with_stride(128, 4096)    # 32 lines/page
        sparse = run_with_stride(4096, 4096)  # 1 line/page, 1 walk/page
        # both streams are DRAM-latency dominated; the page walks add a
        # visible (but not dominant) penalty on top
        assert sparse > 1.1 * dense
