"""Replacement policy behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_policy,
    policy_names,
)


class TestRegistry:
    def test_names(self):
        assert policy_names() == ["fifo", "lru", "plru", "random"]

    def test_make_policy(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("plru"), TreePlruPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("clock")


def run_sequence(policy, assoc, touches):
    """Simulate fills/hits on one set; returns eviction order."""
    state = policy.new_state(assoc)
    resident = []
    evictions = []
    for line in touches:
        if line in resident:
            policy.on_hit(state, resident.index(line))
        elif len(resident) < assoc:
            resident.append(line)
            policy.on_fill(state, resident.index(line))
        else:
            victim = policy.victim(state, assoc)
            evictions.append(resident[victim])
            resident[victim] = line
            policy.on_fill(state, victim)
    return evictions


class TestLru:
    def test_evicts_least_recent(self):
        evictions = run_sequence(LruPolicy(), 2, [1, 2, 1, 3])
        assert evictions == [2]

    def test_hit_refreshes(self):
        evictions = run_sequence(LruPolicy(), 2, [1, 2, 1, 3, 4])
        # after touching 1, victim order is 2 then 1... wait:
        # fills 1,2; hit 1; fill 3 evicts 2; fill 4 evicts 1
        assert evictions == [2, 1]


class TestFifo:
    def test_hits_do_not_refresh(self):
        evictions = run_sequence(FifoPolicy(), 2, [1, 2, 1, 3, 4])
        # insertion order 1,2 -> evict 1 (despite the hit), then 2
        assert evictions == [1, 2]


class TestPlru:
    def test_requires_power_of_two_assoc(self):
        with pytest.raises(ConfigurationError):
            TreePlruPolicy().new_state(6)

    def test_canonical_victim_after_touch_sequence(self):
        # touching 0,1,2 leaves the root pointing left (away from 2) and
        # the left subtree pointing at way 0 — the canonical tree-PLRU
        # divergence from true LRU (which would pick untouched way 3)
        policy = TreePlruPolicy()
        state = policy.new_state(4)
        for way in (0, 1, 2):
            policy.on_fill(state, way)
        assert policy.victim(state, 4) == 0

    def test_single_way_cache(self):
        policy = TreePlruPolicy()
        state = policy.new_state(1)
        policy.on_fill(state, 0)
        assert policy.victim(state, 1) == 0

    def test_victim_never_most_recent(self):
        policy = TreePlruPolicy()
        state = policy.new_state(8)
        for way in (3, 5, 0, 7, 2):
            policy.on_fill(state, way)
            assert policy.victim(state, 8) != way

    def test_sequential_fills_evict_valid_distinct_ways(self):
        evictions = run_sequence(TreePlruPolicy(), 4,
                                 [1, 2, 3, 4, 5, 6, 7, 8])
        assert len(evictions) == 4
        assert evictions[0] == 1  # the pseudo-LRU way after fills 1..4
        assert len(set(evictions)) == 4
        assert set(evictions) <= {1, 2, 3, 4, 5, 6, 7, 8}


class TestRandom:
    def test_deterministic(self):
        a = run_sequence(RandomPolicy(seed=42), 4, list(range(20)))
        b = run_sequence(RandomPolicy(seed=42), 4, list(range(20)))
        assert a == b

    def test_victims_in_range(self):
        policy = RandomPolicy()
        state = policy.new_state(8)
        for _ in range(100):
            assert 0 <= policy.victim(state, 8) < 8

    def test_seed_changes_stream(self):
        a = run_sequence(RandomPolicy(seed=1), 4, list(range(40)))
        b = run_sequence(RandomPolicy(seed=2), 4, list(range(40)))
        assert a != b
