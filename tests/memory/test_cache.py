"""Set-associative cache: geometry, behaviour, LRU fast-path equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.cache import Cache, CacheConfig
from repro.memory.replacement import LruPolicy


def small_cache(policy="lru", size=1024, assoc=2, **kw):
    return Cache(CacheConfig("t", size, assoc=assoc, policy=policy, **kw))


class TestConfig:
    def test_nsets(self):
        config = CacheConfig("L1", 32 * 1024, line_bytes=64, assoc=8)
        assert config.nsets == 64
        assert config.nlines == 512

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 3 * 64 * 8, line_bytes=64, assoc=8)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 1000, line_bytes=64, assoc=8)

    def test_scaled_preserves_line_and_assoc(self):
        config = CacheConfig("L3", 20 * (1 << 20), assoc=20)
        scaled = config.scaled(0.125)
        assert scaled.assoc == 20
        assert scaled.line_bytes == 64
        assert scaled.size_bytes == 20 * (1 << 20) // 8
        assert scaled.nsets & (scaled.nsets - 1) == 0


class TestBasicBehaviour:
    def test_miss_then_fill_then_hit(self):
        cache = small_cache()
        assert not cache.lookup_update(5)
        cache.fill(5)
        assert cache.lookup_update(5)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_dirty_tracking(self):
        cache = small_cache()
        cache.fill(5, dirty=False)
        cache.lookup_update(5, mark_dirty=True)
        assert list(cache.dirty_lines()) == [5]

    def test_eviction_returns_victim_and_dirty(self):
        cache = small_cache(assoc=2)  # 8 sets
        cache.fill(0, dirty=True)
        cache.fill(8)   # same set (line & 7 == 0)
        evicted = cache.fill(16)
        assert evicted == (0, True)
        assert cache.stats.dirty_evictions == 1

    def test_lru_order(self):
        cache = small_cache(assoc=2)
        cache.fill(0)
        cache.fill(8)
        cache.lookup_update(0)         # refresh 0
        evicted = cache.fill(16)
        assert evicted[0] == 8

    def test_refill_same_line_no_eviction(self):
        cache = small_cache()
        cache.fill(3, dirty=True)
        assert cache.fill(3) is None
        assert list(cache.dirty_lines()) == [3]  # dirty flags OR

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(7, dirty=True)
        assert cache.invalidate(7) is True
        assert cache.invalidate(7) is None
        assert not cache.contains(7)

    def test_mark_dirty(self):
        cache = small_cache()
        cache.fill(9)
        assert cache.mark_dirty(9)
        assert not cache.mark_dirty(10)
        assert 9 in set(cache.dirty_lines())

    def test_mark_dirty_does_not_count_stats(self):
        cache = small_cache()
        cache.fill(9)
        hits = cache.stats.hits
        cache.mark_dirty(9)
        assert cache.stats.hits == hits

    def test_clear(self):
        cache = small_cache()
        for line in range(10):
            cache.fill(line)
        cache.clear()
        assert cache.occupancy() == 0

    def test_capacity_never_exceeded(self):
        cache = small_cache(size=512, assoc=2)  # 8 lines
        for line in range(100):
            cache.fill(line)
        assert cache.occupancy() <= 8

    def test_hit_rate(self):
        cache = small_cache()
        cache.fill(1)
        cache.lookup_update(1)
        cache.lookup_update(2)
        assert cache.stats.hit_rate == 0.5


class TestGenericPoliciesBehave:
    @pytest.mark.parametrize("policy", ["fifo", "plru", "random"])
    def test_basic_contract(self, policy):
        cache = small_cache(policy=policy)
        assert not cache.lookup_update(1)
        cache.fill(1, dirty=True)
        assert cache.lookup_update(1)
        assert cache.invalidate(1) is True
        assert cache.occupancy() == 0

    @pytest.mark.parametrize("policy", ["fifo", "plru", "random"])
    def test_capacity_respected(self, policy):
        cache = small_cache(policy=policy, size=512, assoc=4)
        for line in range(64):
            cache.fill(line)
        assert cache.occupancy() <= 8


line_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
    min_size=1, max_size=300,
)


class TestLruEquivalence:
    """The dict fast path and the generic ways-array implementation must
    behave identically for LRU — a strong cross-check of both."""

    @given(line_streams)
    @settings(max_examples=80, deadline=None)
    def test_fast_and_generic_lru_identical(self, stream):
        config = CacheConfig("t", 1024, assoc=4)
        fast = Cache(config)
        generic = Cache(config, policy=LruPolicy())
        assert not fast._fast is False
        for line, is_write in stream:
            hit_f = fast.lookup_update(line, is_write)
            hit_g = generic.lookup_update(line, is_write)
            assert hit_f == hit_g
            if not hit_f:
                ev_f = fast.fill(line, dirty=is_write)
                ev_g = generic.fill(line, dirty=is_write)
                assert ev_f == ev_g
        assert sorted(fast.resident_lines()) == sorted(generic.resident_lines())
        assert sorted(fast.dirty_lines()) == sorted(generic.dirty_lines())

    @given(line_streams)
    @settings(max_examples=50, deadline=None)
    def test_resident_after_access(self, stream):
        cache = small_cache(size=2048, assoc=4)
        for line, is_write in stream:
            if not cache.lookup_update(line, is_write):
                cache.fill(line, dirty=is_write)
            assert cache.contains(line)

    @given(line_streams)
    @settings(max_examples=50, deadline=None)
    def test_dirty_lines_subset_of_resident(self, stream):
        cache = small_cache(size=512, assoc=2)
        for line, is_write in stream:
            if not cache.lookup_update(line, is_write):
                cache.fill(line, dirty=is_write)
            dirty = set(cache.dirty_lines())
            resident = set(cache.resident_lines())
            assert dirty <= resident
