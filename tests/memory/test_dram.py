"""DRAM node and IMC counter tests."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.dram import DramConfig, DramNode, ImcCounters


class TestConfig:
    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ConfigurationError):
            DramConfig(bytes_per_cycle_total=-1.0)

    def test_rejects_per_core_above_total(self):
        with pytest.raises(ConfigurationError):
            DramConfig(bytes_per_cycle_total=4.0,
                       per_core_bytes_per_cycle=8.0)

    def test_peak_bandwidth(self):
        config = DramConfig(bytes_per_cycle_total=16.0,
                            per_core_bytes_per_cycle=4.0)
        assert config.peak_bandwidth(2e9) == 32e9

    def test_scaled(self):
        config = DramConfig(bytes_per_cycle_total=16.0,
                            per_core_bytes_per_cycle=4.0)
        scaled = config.scaled(0.5)
        assert scaled.bytes_per_cycle_total == 8.0
        assert scaled.per_core_bytes_per_cycle == 2.0
        assert scaled.latency_cycles == config.latency_cycles


class TestNode:
    def test_counters_monotonic(self):
        node = DramNode(0, DramConfig())
        node.read_line()
        node.read_lines(9)
        node.write_line()
        node.write_lines(4)
        assert node.counters.cas_reads == 10
        assert node.counters.cas_writes == 5
        assert node.counters.total_lines == 15
        assert node.bytes_transferred == 15 * 64

    def test_repr(self):
        node = DramNode(3, DramConfig())
        assert "DramNode(3" in repr(node)


class TestImcCounters:
    def test_copy_is_independent(self):
        counters = ImcCounters(5, 7)
        snapshot = counters.copy()
        counters.cas_reads += 1
        assert snapshot.cas_reads == 5

    def test_delta(self):
        before = ImcCounters(5, 7)
        after = ImcCounters(15, 10)
        delta = after.delta(before)
        assert delta.cas_reads == 10
        assert delta.cas_writes == 3
