"""Machine assembly: loading, running, parallel contention, clocks."""

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.kernels import CodegenCaps, Daxpy
from repro.machine.presets import tiny_test_machine
from tests.conftest import build_read_sweep, build_triad


class TestLoad:
    def test_buffers_mapped_distinctly(self, tiny):
        program = build_triad(256)
        loaded = tiny.load(program)
        assert set(loaded.buffer_map) == {"x", "y"}
        regions = list(loaded.buffer_map.values())
        assert regions[0].base != regions[1].base

    def test_same_program_loaded_twice_gets_new_addresses(self, tiny):
        program = build_triad(64)
        a = tiny.load(program)
        b = tiny.load(program)
        assert a.buffer_map["x"].base != b.buffer_map["x"].base

    def test_node_binding(self):
        from repro.machine.presets import dual_socket_ep
        machine = dual_socket_ep(scale=0.125)
        loaded = machine.load(build_triad(64), node=1)
        assert all(a.node == 1 for a in loaded.buffer_map.values())

    def test_bad_node_rejected(self, tiny):
        with pytest.raises(ConfigurationError):
            tiny.load(build_triad(64), node=5)


class TestRun:
    def test_run_advances_tsc(self, tiny):
        loaded = tiny.load(build_triad(256))
        before = tiny.tsc
        run = tiny.run(loaded, core_id=0)
        assert tiny.tsc == before + run.cycles
        assert run.seconds == run.cycles / tiny.spec.base_hz

    def test_result_property_single_core(self, tiny):
        loaded = tiny.load(build_triad(64))
        run = tiny.run(loaded, core_id=0)
        assert run.result.true_flops == 128

    def test_unknown_core_rejected(self, tiny):
        loaded = tiny.load(build_triad(64))
        with pytest.raises(ConfigurationError):
            tiny.run(loaded, core_id=9)

    def test_advance_tsc_manual(self, tiny):
        tiny.advance_tsc(1000)
        assert tiny.tsc == 1000
        with pytest.raises(ExecutionError):
            tiny.advance_tsc(-1)


class TestRunParallel:
    def test_duplicate_core_rejected(self, tiny):
        loaded = tiny.load(build_triad(64))
        with pytest.raises(ExecutionError):
            tiny.run_parallel([(loaded, 0), (loaded, 0)])

    def test_empty_jobs_rejected(self, tiny):
        with pytest.raises(ExecutionError):
            tiny.run_parallel([])

    def test_wall_time_is_slowest_core(self, tiny):
        big = tiny.load(build_read_sweep(64 * 1024))
        small = tiny.load(build_read_sweep(1024))
        run = tiny.run_parallel([(big, 0), (small, 1)])
        assert run.cycles == max(r.cycles for r in run.per_core.values())
        assert run.active_cores == 2

    def test_result_property_rejects_parallel(self, tiny):
        a = tiny.load(build_triad(64))
        b = tiny.load(build_triad(64))
        run = tiny.run_parallel([(a, 0), (b, 1)])
        with pytest.raises(ExecutionError):
            run.result

    def test_dram_contention_slows_streams(self, tiny):
        """Two cores streaming together: each gets half the node
        bandwidth, so per-core time grows vs a solo run."""
        solo_machine = tiny_test_machine()
        solo = solo_machine.run(
            solo_machine.load(build_read_sweep(256 * 1024)), core_id=0
        )
        pair_machine = tiny_test_machine()
        a = pair_machine.load(build_read_sweep(256 * 1024))
        b = pair_machine.load(build_read_sweep(256 * 1024))
        pair = pair_machine.run_parallel([(a, 0), (b, 1)])
        assert pair.cycles > 1.3 * solo.cycles

    def test_total_true_flops_sums_cores(self, tiny):
        a = tiny.load(build_triad(256))
        b = tiny.load(build_triad(256))
        run = tiny.run_parallel([(a, 0), (b, 1)])
        assert run.total_true_flops == 2 * 512

    def test_run_on_cores_factory(self, tiny):
        caps = CodegenCaps.from_machine(tiny)
        kernel = Daxpy()
        run = tiny.run_on_cores(
            lambda rank, nranks: kernel.build(256, caps, rank, nranks),
            core_ids=[0, 1],
        )
        assert run.active_cores == 2
        assert run.total_true_flops == 2 * 256


class TestTurboInteraction:
    def test_turbo_raises_frequency_for_few_cores(self, tiny):
        tiny.governor.enable_turbo()
        loaded = tiny.load(build_triad(64))
        run = tiny.run(loaded, core_id=0)
        assert run.frequency_hz == 1.5e9  # tiny's 1-core turbo step

    def test_turbo_disabled_is_base(self, tiny):
        loaded = tiny.load(build_triad(64))
        run = tiny.run(loaded, core_id=0)
        assert run.frequency_hz == tiny.spec.base_hz


class TestTheoretical:
    def test_peak_flops(self, tiny):
        # SNB-like: 8 flops/cycle AVX at 1 GHz
        assert tiny.theoretical_peak_flops() == 8e9
        assert tiny.theoretical_peak_flops(128, cores=2) == 8e9

    def test_peak_bandwidth(self, tiny):
        assert tiny.theoretical_peak_bandwidth() == 8e9
        with pytest.raises(ConfigurationError):
            tiny.theoretical_peak_bandwidth(nodes=2)

    def test_repr(self, tiny):
        assert "tiny" in repr(tiny)
