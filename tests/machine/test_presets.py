"""Preset machine definitions."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.presets import (
    PRESETS,
    dual_socket_ep,
    haswell_node,
    ivy_bridge_desktop,
    make_machine,
    paper_machine,
    sandy_bridge_ep,
    tiny_test_machine,
)


class TestSandyBridge:
    def test_shape(self):
        machine = sandy_bridge_ep()
        assert machine.topology.total_cores == 8
        assert machine.ports.max_simd_width == 256
        assert not machine.ports.has_fma
        assert machine.spec.base_hz == 2.7e9

    def test_datasheet_numbers(self):
        machine = sandy_bridge_ep()
        # 8 flops/cycle * 2.7 GHz
        assert machine.theoretical_peak_flops() == pytest.approx(21.6e9)
        assert machine.theoretical_peak_bandwidth() == pytest.approx(51.2e9)

    def test_full_scale_cache_sizes(self):
        hierarchy = sandy_bridge_ep().spec.hierarchy
        assert hierarchy.l1.size_bytes == 32 * 1024
        assert hierarchy.l2.size_bytes == 256 * 1024
        assert hierarchy.l3.size_bytes == 20 * 1024 * 1024

    def test_scaling_shrinks_caches_only(self):
        full = sandy_bridge_ep()
        scaled = sandy_bridge_ep(scale=0.125)
        assert (scaled.spec.hierarchy.l3.size_bytes
                == full.spec.hierarchy.l3.size_bytes // 8)
        assert scaled.spec.base_hz == full.spec.base_hz
        assert (scaled.spec.hierarchy.dram.bytes_per_cycle_total
                == full.spec.hierarchy.dram.bytes_per_cycle_total)

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            sandy_bridge_ep(scale=0.0)
        with pytest.raises(ConfigurationError):
            sandy_bridge_ep(scale=2.0)


class TestOtherPresets:
    def test_dual_socket(self):
        machine = dual_socket_ep(scale=0.25)
        assert machine.topology.sockets == 2
        assert machine.topology.total_cores == 16
        assert machine.theoretical_peak_bandwidth(2) == pytest.approx(
            2 * machine.theoretical_peak_bandwidth(1))

    def test_haswell_has_fma_and_double_peak(self):
        hsw = haswell_node()
        snb = sandy_bridge_ep()
        assert hsw.ports.has_fma
        per_cycle_hsw = hsw.theoretical_peak_flops() / hsw.spec.base_hz
        per_cycle_snb = snb.theoretical_peak_flops() / snb.spec.base_hz
        assert per_cycle_hsw == 2 * per_cycle_snb

    def test_ivy_bridge(self):
        machine = ivy_bridge_desktop()
        assert machine.topology.total_cores == 4
        assert machine.spec.base_hz == 3.4e9

    def test_tiny_is_fast_to_saturate(self):
        machine = tiny_test_machine()
        assert machine.hierarchy.total_cache_bytes() < 64 * 1024

    def test_paper_machine_is_eighth_scale_snb(self):
        machine = paper_machine()
        assert "snb" in machine.spec.name
        assert machine.spec.hierarchy.l1.size_bytes == 4096


class TestRegistry:
    def test_all_presets_instantiate(self):
        for name in PRESETS:
            machine = make_machine(name, scale=0.25)
            assert machine.topology.total_cores >= 1

    def test_oracle_preset_matches_analytic_oracle(self):
        from repro.oracle.analytic import oracle_machine

        preset = make_machine("oracle")
        assert preset.spec == oracle_machine().spec
        assert preset.topology.total_cores == 1
        assert preset.spec.noise_lines_per_megacycle == 0.0

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            make_machine("pentium4")
