"""Microbenchmarks: peak flops and bandwidth on the tiny machine."""

import pytest

from repro.bench import (
    bandwidth_methods,
    best_bandwidth,
    default_stream_elements,
    measure_bandwidth,
    measure_peak_flops,
    peak_bandwidth_table,
    peak_flops_program,
    peak_flops_table,
)
from repro.errors import ConfigurationError
from repro.machine.presets import haswell_node, tiny_test_machine


class TestPeakFlopsProgram:
    def test_fma_program_flops(self):
        program = peak_flops_program(256, has_fma=True, chains=12, trips=100)
        assert program.static_counts().flops == 12 * 100 * 8

    def test_muladd_program_balanced(self):
        program = peak_flops_program(256, has_fma=False, chains=12, trips=10)
        ops = {}
        for node in program.walk():
            op = getattr(node, "op", None)
            if op:
                ops[op] = ops.get(op, 0) + 1
        assert ops == {"add": 6, "mul": 6}

    def test_no_memory_instructions(self):
        program = peak_flops_program(128, has_fma=False, trips=10)
        assert program.static_counts().mem_ops == 0

    def test_odd_chain_count_rejected(self):
        with pytest.raises(ConfigurationError):
            peak_flops_program(256, False, chains=5)


class TestMeasurePeakFlops:
    def test_single_core_hits_theory(self):
        machine = tiny_test_machine()
        result = measure_peak_flops(machine, 256, cores=(0,), trips=4096)
        assert result.efficiency == pytest.approx(1.0, rel=0.01)
        assert result.flops_per_cycle_per_core == pytest.approx(8.0, rel=0.01)

    def test_two_cores_double_throughput(self):
        machine = tiny_test_machine()
        one = measure_peak_flops(machine, 256, cores=(0,), trips=2048)
        two = measure_peak_flops(machine, 256, cores=(0, 1), trips=2048)
        assert two.flops_per_second == pytest.approx(
            2 * one.flops_per_second, rel=0.01)

    def test_fma_machine_doubles_per_width(self):
        hsw = haswell_node(scale=0.125)
        result = measure_peak_flops(hsw, 256, cores=(0,), trips=2048)
        assert result.flops_per_cycle_per_core == pytest.approx(16.0, rel=0.01)

    def test_unsupported_width_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_peak_flops(tiny_test_machine(), 512)

    def test_table_shape(self):
        machine = tiny_test_machine()
        rows = peak_flops_table(machine, widths=[64, 256],
                                thread_counts=[1, 2], trips=1024)
        assert len(rows) == 4
        assert {(r.width_bits, r.threads) for r in rows} == {
            (64, 1), (64, 2), (256, 1), (256, 2)}


class TestBandwidth:
    def test_methods_list(self):
        assert "triad" in bandwidth_methods()
        assert "memset-nt" in bandwidth_methods()

    def test_default_stream_elements_exceed_caches(self):
        machine = tiny_test_machine()
        n = default_stream_elements(machine)
        assert 8 * n >= 2 * machine.hierarchy.total_cache_bytes()

    def test_nt_memset_beats_regular(self):
        machine = tiny_test_machine()
        nt = measure_bandwidth(machine, "memset-nt", (0,), n=32768, reps=1)
        wa = measure_bandwidth(machine, "memset", (0,), n=32768, reps=1)
        assert nt.bytes_per_second > 1.5 * wa.bytes_per_second

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_bandwidth(tiny_test_machine(), "stream9")

    def test_best_bandwidth_is_max(self):
        machine = tiny_test_machine()
        best = best_bandwidth(machine, (0,), n=32768,
                              methods=("memset", "memset-nt", "read"))
        each = [
            measure_bandwidth(tiny_test_machine(), m, (0,), n=32768, reps=1)
            for m in ("memset", "memset-nt", "read")
        ]
        assert best.bytes_per_second == pytest.approx(
            max(r.bytes_per_second for r in each), rel=0.02)

    def test_two_cores_beat_one(self):
        machine = tiny_test_machine()
        one = measure_bandwidth(machine, "read", (0,), n=32768, reps=1)
        two = measure_bandwidth(machine, "read", (0, 1), n=32768, reps=1)
        assert two.bytes_per_second > 1.2 * one.bytes_per_second

    def test_table_shape(self):
        machine = tiny_test_machine()
        rows = peak_bandwidth_table(machine, methods=("read", "memset"),
                                    thread_counts=[1], n=16384, reps=1)
        assert len(rows) == 2
        assert all(r.threads == 1 for r in rows)
