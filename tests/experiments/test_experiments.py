"""Experiment framework and a fast subset of actual experiments."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    Check,
    ExperimentConfig,
    ExperimentResult,
    Table,
    experiment_ids,
    make_experiment,
    render_report,
)
from repro.experiments.report import write_artifacts
from repro.machine.ref import MachineRef


class TestTable:
    def test_add_and_render(self):
        table = Table("Title", ["a", "b"])
        table.add(1, 2.5)
        table.add("x", "y")
        text = table.render()
        assert "**Title**" in text
        assert "| a | b |" in text
        assert "| 1 | 2.5 |" in text

    def test_row_width_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ExperimentError):
            table.add(1)


class TestResult:
    def test_checks_and_passed(self):
        result = ExperimentResult("X1", "t", "p")
        result.check("ok", True, "fine")
        assert result.passed
        result.check("bad", False)
        assert not result.passed

    def test_render_contains_everything(self):
        result = ExperimentResult("X1", "Title", "paper fig 9")
        result.tables.append(Table("T", ["c"], [[1]]))
        result.check("criterion", True, "detail")
        result.note("a note")
        text = result.render()
        assert "X1 — Title" in text
        assert "paper fig 9" in text
        assert "[PASS] criterion" in text
        assert "> a note" in text

    def test_check_render_marks(self):
        assert "[PASS]" in Check("c", True).render()
        assert "[FAIL]" in Check("c", False, "why").render()


class TestRegistry:
    def test_ids_ordered_and_complete(self):
        ids = experiment_ids()
        assert ids[0] == "T1"
        assert "F2" in ids and "A3" in ids
        assert len(ids) == len(set(ids)) == 21

    def test_make_experiment(self):
        exp = make_experiment("F2")
        assert exp.id == "F2"
        with pytest.raises(ExperimentError):
            make_experiment("F99")


def tiny_config():
    return ExperimentConfig(quick=True, reps=1,
                            machine_ref=MachineRef.of("tiny"))


class TestFastExperiments:
    """Run the cheap experiments for real on the tiny machine."""

    def test_f1_example_roofline(self):
        result = make_experiment("F1").run(tiny_config())
        assert result.passed
        assert "f1_example.svg" in result.artifacts

    def test_t2_peak_flops(self):
        result = make_experiment("T2").run(tiny_config())
        assert result.passed

    def test_f2_work_validation(self):
        # needs an 8-way L1: the tiny machine's 2-way L1 cannot hold
        # triad's three streams conflict-free, so warm ratios inflate
        config = ExperimentConfig(quick=True, reps=1, scale=0.03125)
        result = make_experiment("F2").run(config)
        assert result.passed, [c.name for c in result.checks if not c.passed]

    def test_f2b_fma_counter(self):
        result = make_experiment("F2b").run(ExperimentConfig(
            quick=True, reps=1, scale=0.125))
        assert result.passed

    def test_f11_turbo(self):
        result = make_experiment("F11").run(tiny_config())
        assert result.passed


class TestReport:
    def test_render_report_summary(self):
        passing = ExperimentResult("X1", "a", "b")
        passing.check("c", True)
        failing = ExperimentResult("X2", "a", "b")
        failing.check("c", False)
        text = render_report([passing, failing])
        assert "1/2 experiments pass" in text

    def test_write_artifacts(self, tmp_path):
        result = ExperimentResult("X1", "a", "b")
        result.artifacts["plot.svg"] = "<svg></svg>"
        written = write_artifacts([result], str(tmp_path))
        assert len(written) == 1
        assert (tmp_path / "plot.svg").read_text() == "<svg></svg>"
