"""End-to-end integration: the full user workflow on small machines."""

import pytest

from repro.kernels import CodegenCaps, Daxpy, Dgemm
from repro.machine.presets import dual_socket_ep, sandy_bridge_ep, tiny_test_machine
from repro.measure import measure_kernel
from repro.roofline import (
    KernelPoint,
    Trajectory,
    analyze_point,
    ascii_plot,
    build_roofline,
    svg_plot,
)


@pytest.fixture(scope="module")
def small_snb():
    """A 1/32-scale SNB socket shared by this module's tests."""
    return sandy_bridge_ep(scale=0.03125)


class TestQuickstartFlow:
    def test_model_measure_plot_analyze(self, small_snb):
        machine = small_snb
        model = build_roofline(machine, cores=(0,), trips=2048,
                               stream_elements=65536,
                               bandwidth_methods=("memset-nt", "read"))
        assert model.peak_flops == pytest.approx(21.6e9, rel=0.02)
        n = 4 * machine.spec.hierarchy.l3.size_bytes // 16
        n -= n % 32
        m = measure_kernel(machine, Daxpy(), n, protocol="cold", reps=1)
        point = KernelPoint.from_measurement(m)
        text = ascii_plot(model, points=[point])
        assert "daxpy" in text
        analysis = analyze_point(model, point)
        assert analysis.bound == "memory-bound"
        svg = svg_plot(model, trajectories=[Trajectory("daxpy", [point])])
        assert "<svg" in svg


class TestParallelFlow:
    def test_parallel_speedup_shape(self, small_snb):
        machine = small_snb
        kernel = Dgemm(variant="tiled")
        seq = measure_kernel(machine, kernel, 64, protocol="warm", reps=1)
        par = measure_kernel(machine, kernel, 64, protocol="warm", reps=1,
                             cores=tuple(range(8)))
        assert par.performance > 3 * seq.performance


class TestNumaFlow:
    def test_two_socket_measurement(self):
        machine = dual_socket_ep(scale=0.0625)
        cores = machine.topology.first_cores(16)
        n = 8 * machine.spec.hierarchy.l3.size_bytes // 16
        n -= n % (32 * 16)
        m = measure_kernel(machine, Daxpy(), n, protocol="cold", reps=1,
                           cores=cores)
        assert m.threads == 16
        # both nodes' controllers saw traffic (memory was bound per node)
        reads = [machine.hierarchy.dram[i].counters.cas_reads
                 for i in range(2)]
        assert all(r > 0 for r in reads)


class TestCustomExtension:
    def test_custom_kernel_through_full_pipeline(self):
        from repro.kernels.base import Kernel, elements_bytes, new_builder

        class Axpby(Kernel):
            name = "axpby-test"

            def build(self, n, caps, rank=0, nranks=1):
                b = new_builder()
                x = b.buffer("x", elements_bytes(n))
                y = b.buffer("y", elements_bytes(n))
                ca, cb = b.regs(2)
                with b.loop(n // caps.lanes) as i:
                    vx = b.load(x[i * caps.vec_bytes], width=caps.width_bits)
                    vy = b.load(y[i * caps.vec_bytes], width=caps.width_bits)
                    t1 = b.mul(ca, vx, width=caps.width_bits)
                    t2 = b.mul(cb, vy, width=caps.width_bits)
                    out = b.add(t1, t2, width=caps.width_bits)
                    b.store(out, y[i * caps.vec_bytes], width=caps.width_bits)
                return b.build()

            def flops(self, n):
                return 3 * n

            def compulsory_bytes(self, n):
                return 24 * n

            def footprint_bytes(self, n):
                return 16 * n

        machine = tiny_test_machine()
        m = measure_kernel(machine, Axpby(), 4096, protocol="cold", reps=1)
        assert m.true_flops == 3 * 4096
        assert m.traffic_bytes > 0.5 * m.compulsory_bytes
