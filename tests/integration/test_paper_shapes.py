"""The paper's headline qualitative results, asserted directly.

Each test is one claim of Ofenbeck et al. reproduced mechanically on a
small-scale machine (absolute numbers differ; shapes must hold).
"""

import pytest

from repro.bench import measure_bandwidth, measure_peak_flops
from repro.kernels import Daxpy, Dgemm, StreamTriad
from repro.machine.presets import sandy_bridge_ep
from repro.measure import measure_kernel
from repro.roofline import build_roofline


@pytest.fixture()
def snb():
    return sandy_bridge_ep(scale=0.03125)


def dram_n(machine, bytes_per_elem, factor=4, granule=32):
    n = factor * machine.spec.hierarchy.l3.size_bytes // bytes_per_elem
    return n - n % granule


class TestClaimWarmWorkExactColdInflated:
    """Claim: FP counters are exact warm, overcount cold (reissue)."""

    def test_shape(self, snb):
        warm_n = snb.spec.hierarchy.l1.size_bytes // 32
        warm_n -= warm_n % 32
        warm = measure_kernel(snb, Daxpy(), warm_n, protocol="warm", reps=1)
        cold = measure_kernel(snb, Daxpy(), dram_n(snb, 16), protocol="cold",
                              reps=1)
        assert warm.work_overcount == pytest.approx(1.0, abs=0.05)
        assert cold.work_overcount > 1.5


class TestClaimImcBeatsCacheEvents:
    """Claim: LLC-miss-event traffic undercounts behind prefetchers;
    IMC CAS counting stays accurate."""

    def test_shape(self, snb):
        n = dram_n(snb, 24)
        kernel = StreamTriad()
        on = measure_kernel(snb, kernel, n, protocol="cold", reps=1)
        expected_reads = 24 * n
        assert on.llc_bytes < 0.5 * expected_reads        # events lie
        assert on.traffic_bytes > 0.8 * kernel.compulsory_bytes(n)  # IMC ok


class TestClaimMemoryBoundRidesTheRoof:
    """Claim: DRAM-resident daxpy lands on the bandwidth roof."""

    def test_shape(self, snb):
        model = build_roofline(snb, cores=(0,), trips=2048,
                               stream_elements=65536,
                               bandwidth_methods=("memset-nt", "read"))
        m = measure_kernel(snb, Daxpy(), dram_n(snb, 16), protocol="cold",
                           reps=1)
        roof = model.attainable(m.intensity)
        assert 0.6 <= m.performance / roof <= 1.35
        assert m.intensity < model.ridge_intensity


class TestClaimOptimizedGemmNearsPeak:
    """Claim: a well-blocked dgemm approaches the compute ceiling and is
    compute-bound; naive code is far below."""

    def test_shape(self, snb):
        peak = snb.theoretical_peak_flops()
        tiled = measure_kernel(snb, Dgemm(variant="tiled"), 96,
                               protocol="warm", reps=1)
        naive = measure_kernel(snb, Dgemm(variant="naive"), 96,
                               protocol="warm", reps=1)
        assert tiled.performance > 0.6 * peak
        assert tiled.performance > 1.5 * naive.performance


class TestClaimNtStoresWinBandwidth:
    """Claim: non-temporal stores give the highest measured bandwidth
    (no read-for-ownership)."""

    def test_shape(self, snb):
        cores = tuple(range(8))
        nt = measure_bandwidth(snb, "memset-nt", cores, n=131072, reps=1)
        wa = measure_bandwidth(snb, "memset", cores, n=131072, reps=1)
        rd = measure_bandwidth(snb, "read", cores, n=131072, reps=1)
        assert nt.bytes_per_second > wa.bytes_per_second
        assert nt.bytes_per_second >= 0.9 * rd.bytes_per_second


class TestClaimTurboDestabilisesRoofs:
    """Claim: Turbo Boost must be disabled or the compute roof depends
    on active-core count."""

    def test_shape(self, snb):
        snb.governor.enable_turbo()
        one = measure_peak_flops(snb, None, (0,), trips=1024)
        all_cores = measure_peak_flops(snb, None, tuple(range(8)),
                                       trips=1024)
        snb.governor.disable_turbo()
        per_core_one = one.flops_per_second
        per_core_all = all_cores.flops_per_second / 8
        assert per_core_one > 1.05 * per_core_all


class TestClaimParallelShiftsRidgeRight:
    """Claim: with all cores, per-thread bandwidth shrinks, so kernels
    that were compute-bound sequentially can become memory-bound — the
    ridge moves right."""

    def test_shape(self, snb):
        seq = build_roofline(snb, cores=(0,), trips=1024,
                             stream_elements=65536,
                             bandwidth_methods=("memset-nt",))
        par = build_roofline(snb, cores=tuple(range(8)), trips=1024,
                             widths=[256],
                             stream_elements=8 * 65536,
                             bandwidth_methods=("memset-nt",))
        assert par.ridge_intensity > 1.5 * seq.ridge_intensity
