"""Property-based whole-machine invariants on random programs.

Hypothesis generates random (but valid) affine programs; executing them
on a fresh machine must preserve global accounting invariants no matter
the access pattern — the strongest guard against interpreter/hierarchy
bookkeeping bugs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import ProgramBuilder
from repro.machine.presets import tiny_test_machine
from repro.pmu import PerfSession


@st.composite
def random_affine_programs(draw):
    """A random two-deep loop nest over up to three buffers."""
    b = ProgramBuilder()
    n_buffers = draw(st.integers(min_value=1, max_value=3))
    buffers = [b.buffer(f"buf{i}", 1 << 15) for i in range(n_buffers)]
    outer_trips = draw(st.integers(min_value=1, max_value=6))
    inner_trips = draw(st.integers(min_value=1, max_value=64))
    n_sites = draw(st.integers(min_value=1, max_value=4))
    regs = b.regs(4)
    with b.loop(outer_trips, "i") as i:
        with b.loop(inner_trips, "j") as j:
            for site in range(n_sites):
                buf = buffers[draw(st.integers(0, n_buffers - 1))]
                stride = draw(st.sampled_from([8, 16, 64, 128, 256]))
                width = draw(st.sampled_from([64, 128, 256]))
                offset = draw(st.integers(min_value=0, max_value=64)) * 8
                # keep the address affine and in bounds
                max_addr = (outer_trips - 1) * 2048 + \
                    (inner_trips - 1) * stride + offset + width // 8
                if max_addr > (1 << 15):
                    continue
                addr = buf[i * 2048 + j * stride + offset]
                kind = draw(st.integers(0, 3))
                if kind == 0:
                    b.load(addr, width=width)
                elif kind == 1:
                    b.store(regs[site], addr, width=width)
                elif kind == 2:
                    b.store(regs[site], addr, width=width, nt=True)
                else:
                    v = b.load(addr, width=width)
                    b.add(v, regs[site], width=width)
    return b.build()


class TestGlobalInvariants:
    @given(random_affine_programs())
    @settings(max_examples=30, deadline=None)
    def test_accounting_invariants(self, program):
        machine = tiny_test_machine()
        loaded = machine.load(program)
        machine.bust_caches()
        run = machine.run(loaded, core_id=0)
        batch = run.result.batch
        dram = machine.hierarchy.dram[0]

        # hits partition accesses (every access resolves somewhere)
        resolved = (batch.l1_hits + batch.l2_hits + batch.l3_hits
                    + batch.dram_reads + batch.nt_lines)
        assert resolved == batch.accesses

        # the DRAM controller saw exactly what the batch reports
        assert dram.counters.cas_reads == (
            batch.dram_reads + batch.hw_prefetch_dram_reads
        )
        assert dram.counters.cas_writes == batch.writebacks + batch.nt_lines

        # time moved forward and matches the wall clock
        assert run.cycles > 0
        assert machine.tsc == run.cycles

    @given(random_affine_programs())
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, program):
        """Two fresh machines executing the same program agree exactly."""
        outcomes = []
        for _ in range(2):
            machine = tiny_test_machine()
            loaded = machine.load(program)
            machine.bust_caches()
            run = machine.run(loaded, core_id=0)
            outcomes.append((
                run.cycles,
                run.result.batch.accesses,
                run.result.batch.dram_reads,
                machine.hierarchy.dram[0].counters.cas_reads,
                machine.core_pmu(0).read("fp_256_f64"),
            ))
        assert outcomes[0] == outcomes[1]

    @given(random_affine_programs())
    @settings(max_examples=20, deadline=None)
    def test_rerun_never_reads_more_dram(self, program):
        """With prefetchers off, a warm rerun never reads more DRAM lines.

        The prefetch-*on* version of this claim is false, which the
        conformance harness work surfaced while pinning down reference
        semantics: when a program's footprint exceeds the LLC, the warm
        rerun starts with engines already trained from the cold pass, so
        they can issue *more* (and more speculative) prefetch fills than
        the cold run did — prefetch pollution and mispredicted streams
        legitimately inflate IMC-visible warm traffic.  This is exactly
        the overfetch artifact the paper controls for by validating Q
        with prefetchers disabled (MSR 0x1A4), so the provable invariant
        is the prefetch-off one.  Exact prefetch-on accounting is
        covered by the differential oracle in ``tests/oracle``.
        """
        machine = tiny_test_machine()
        machine.prefetch_control.disable_all()
        loaded = machine.load(program)
        machine.bust_caches()
        cold = machine.run(loaded, core_id=0).result.batch
        warm = machine.run(loaded, core_id=0).result.batch
        assert cold.hw_prefetch_dram_reads == 0
        assert warm.hw_prefetch_dram_reads == 0
        assert warm.dram_reads <= cold.dram_reads

    @given(random_affine_programs())
    @settings(max_examples=15, deadline=None)
    def test_session_deltas_match_run(self, program):
        machine = tiny_test_machine()
        loaded = machine.load(program)
        with PerfSession(machine, core_events=("instructions",),
                         uncore_events=("imc_cas_reads",),
                         cores=(0,)) as session:
            run = machine.run(loaded, core_id=0)
        assert session.core_delta("instructions") == run.result.instructions
        # uncore includes deterministic noise >= the raw traffic
        raw = (run.result.batch.dram_reads
               + run.result.batch.hw_prefetch_dram_reads)
        assert session.uncore_delta("imc_cas_reads") >= raw
