"""Extended CLI coverage: explain subcommand, flags, error paths."""

import pytest

from repro.cli import main


class TestExplainCommand:
    def test_explain_runs_and_names_the_bound(self, capsys):
        code = main(["explain", "daxpy", "8192", "--machine", "tiny",
                     "--protocol", "cold"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bound by" in out
        assert "dram_bandwidth" in out

    def test_explain_warm(self, capsys):
        code = main(["explain", "daxpy", "64", "--machine", "tiny"])
        assert code == 0
        assert "mem_issue" in capsys.readouterr().out

    def test_explain_bad_size(self, capsys):
        code = main(["explain", "fft", "1000", "--machine", "tiny"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestMeasureVariants:
    def test_measure_warm_spmv(self, capsys):
        code = main(["measure", "spmv", "512", "--machine", "tiny",
                     "--protocol", "warm", "--reps", "1"])
        assert code == 0
        assert "flops/byte" in capsys.readouterr().out

    def test_measure_multithreaded(self, capsys):
        code = main(["measure", "daxpy", "4096", "--machine", "tiny",
                     "--threads", "2", "--reps", "1"])
        assert code == 0
        assert "2 thread(s)" in capsys.readouterr().out

    def test_roofline_multithreaded(self, capsys):
        code = main(["roofline", "--machine", "tiny", "--threads", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2t" in out  # thread-count labelled ceilings
