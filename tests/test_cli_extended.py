"""Extended CLI coverage: explain subcommand, flags, error paths."""

import pytest

from repro.cli import main


class TestExplainCommand:
    def test_explain_runs_and_names_the_bound(self, capsys):
        code = main(["explain", "daxpy", "8192", "--machine", "tiny",
                     "--protocol", "cold"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bound by" in out
        assert "dram_bandwidth" in out

    def test_explain_warm(self, capsys):
        code = main(["explain", "daxpy", "64", "--machine", "tiny"])
        assert code == 0
        assert "mem_issue" in capsys.readouterr().out

    def test_explain_bad_size(self, capsys):
        code = main(["explain", "fft", "1000", "--machine", "tiny"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestMeasureVariants:
    def test_measure_warm_spmv(self, capsys):
        code = main(["measure", "spmv", "512", "--machine", "tiny",
                     "--protocol", "warm", "--reps", "1"])
        assert code == 0
        assert "flops/byte" in capsys.readouterr().out

    def test_measure_multithreaded(self, capsys):
        code = main(["measure", "daxpy", "4096", "--machine", "tiny",
                     "--threads", "2", "--reps", "1"])
        assert code == 0
        assert "2 thread(s)" in capsys.readouterr().out

    def test_roofline_multithreaded(self, capsys):
        code = main(["roofline", "--machine", "tiny", "--threads", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2t" in out  # thread-count labelled ceilings


class TestErtCommand:
    def test_ert_prints_ceiling_table(self, capsys):
        code = main(["ert", "--machine", "tiny", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        for level in ("L1", "L2", "L3", "DRAM"):
            assert level in out
        assert "compute : ERT peak" in out

    def test_ert_json_has_all_levels(self, capsys):
        import json as _json

        code = main(["ert", "--machine", "tiny", "--json", "--no-cache"])
        assert code == 0
        doc = _json.loads(capsys.readouterr().out)
        assert set(doc["hierarchical"]["levels"]) == \
            {"L1", "L2", "L3", "DRAM"}

    def test_ert_plot_renders_bands(self, capsys):
        code = main(["ert", "--machine", "tiny", "--plot", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "L1 ERT" in out and "DRAM ERT" in out


class TestAnalyzeCommand:
    def test_analyze_alias_and_table(self, capsys):
        code = main(["analyze", "dgemm", "--sizes", "16,32",
                     "--machine", "tiny", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dgemm-tiled@L1" in out and "dgemm-tiled@DRAM" in out
        assert "I@DRAM [F/B]" in out

    def test_analyze_artifacts(self, tmp_path, capsys):
        code = main(["analyze", "daxpy", "--sizes", "256",
                     "--machine", "tiny", "--svg", "--json-out",
                     "--out-dir", str(tmp_path), "--no-cache"])
        assert code == 0
        import json as _json

        svg = (tmp_path / "daxpy_tiny.svg").read_text()
        assert svg.startswith("<svg")
        doc = _json.loads((tmp_path / "daxpy_tiny.json").read_text())
        assert doc["kernel"] == "daxpy"
        assert len(doc["points"]) == 4

    def test_analyze_empty_sizes_errors(self, capsys):
        code = main(["analyze", "daxpy", "--sizes", ",",
                     "--machine", "tiny", "--no-cache"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
