"""Shared fixtures: small machines and canonical programs."""

from __future__ import annotations

import os

import pytest

from repro.isa import ProgramBuilder
from repro.kernels.base import CodegenCaps
from repro.machine.presets import paper_machine, tiny_test_machine

try:
    from hypothesis import settings

    # `ci` runs many more examples with no deadline (simulation time per
    # example varies widely); select with HYPOTHESIS_PROFILE=ci.
    settings.register_profile("ci", max_examples=300, deadline=None)
    settings.register_profile("default", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass


@pytest.fixture(autouse=True, scope="session")
def _isolated_sweep_cache(tmp_path_factory):
    """Point the sweep result cache at a per-session temp directory.

    Keeps test runs from writing into the repo's ``artifacts/`` tree
    and — more importantly — from replaying measurements cached by a
    *previous* run of a since-modified simulator, which would let stale
    results mask regressions.  Tests that exercise the cache itself
    pass explicit directories and are unaffected.
    """
    path = str(tmp_path_factory.mktemp("sweepcache"))
    previous = os.environ.get("REPRO_SWEEP_CACHE")
    os.environ["REPRO_SWEEP_CACHE"] = path
    yield
    if previous is None:
        os.environ.pop("REPRO_SWEEP_CACHE", None)
    else:
        os.environ["REPRO_SWEEP_CACHE"] = previous


@pytest.fixture
def tiny():
    """A fresh 2-core test machine (1 KiB L1 / 4 KiB L2 / 16 KiB L3)."""
    return tiny_test_machine()


@pytest.fixture
def tiny_caps(tiny):
    return CodegenCaps.from_machine(tiny)


@pytest.fixture(scope="session")
def paper():
    """A shared 1/8-scale SNB-EP for read-only (model) assertions."""
    return paper_machine()


def build_triad(n: int, width: int = 256, nt: bool = False):
    """y[i] = alpha*x[i] + y[i] as a raw program (no kernel layer)."""
    b = ProgramBuilder()
    x = b.buffer("x", n * 8)
    y = b.buffer("y", n * 8)
    alpha = b.reg()
    lanes = width // 64
    step = width // 8
    with b.loop(n // lanes) as i:
        vx = b.load(x[i * step], width=width)
        vy = b.load(y[i * step], width=width)
        t = b.mul(alpha, vx, width=width)
        r = b.add(t, vy, width=width)
        b.store(r, y[i * step], width=width, nt=nt)
    return b.build()


def build_read_sweep(nbytes: int, stride: int = 64):
    """Load-only sweep touching every line of one buffer."""
    b = ProgramBuilder()
    buf = b.buffer("buf", nbytes)
    with b.loop(nbytes // stride) as i:
        b.load(buf[i * stride], width=64)
    return b.build()
