"""Roofline service: endpoints, coalescing, metrics, graceful drain.

Each test spins the server on an ephemeral loopback port inside a
private event loop, drives it with blocking ``urllib`` clients on
executor threads (real sockets, real HTTP), and drains it before
asserting.  The coalescing test is the service-level analogue of the
backend parity suite: 8 concurrent identical requests must cost
exactly one simulation, observable through the ``repro_serve_*`` and
sweep cache metrics.
"""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import REGISTRY
from repro.serve import RooflineServer
from repro.serve.jobs import JobTable, job_key

pytestmark = pytest.mark.sweep


def post(base: str, path: str, doc: dict):
    req = urllib.request.Request(
        base + path, data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=120) as resp:
        return resp.status, json.loads(resp.read())


def get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=120) as resp:
        return resp.status, resp.read()


def serve(test_body):
    """Run ``await test_body(server, base_url)`` on a fresh server."""
    async def runner():
        server = RooflineServer(port=0, threads=4)
        await server.start()
        host, port = server.address
        try:
            await test_body(server, f"http://{host}:{port}")
        finally:
            await server.drain()
    asyncio.run(runner())


def metric_value(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name) and "{" not in line[len(name):][:1]:
            parts = line.split()
            if parts[0] == name:
                return float(parts[1])
    raise AssertionError(f"metric {name} not found")


class TestEndpoints:
    def test_healthz_and_404(self):
        async def body(server, base):
            loop = asyncio.get_running_loop()
            status, raw = await loop.run_in_executor(
                None, get, base, "/healthz")
            assert status == 200
            assert json.loads(raw)["status"] == "ok"
            with pytest.raises(urllib.error.HTTPError) as err:
                await loop.run_in_executor(None, get, base, "/nope")
            assert err.value.code == 404
        serve(body)

    def test_measure_roundtrip_matches_direct_run(self):
        async def body(server, base):
            loop = asyncio.get_running_loop()
            status, doc = await loop.run_in_executor(
                None, post, base, "/measure",
                {"kernel": "daxpy", "n": 96, "machine": "tiny"})
            assert status == 200 and doc["status"] == "done"
            served = doc["result"]["measurement"]

            from repro.machine.ref import MachineRef
            from repro.sweep import (
                SweepPlan,
                measurement_to_payload,
                run_plan,
            )
            plan = SweepPlan()
            plan.add_sweep(MachineRef.of("tiny"), "daxpy", [96])
            direct = run_plan(plan, cache=None)
            assert served == measurement_to_payload(direct.measurements[0])
        serve(body)

    def test_validation_errors_are_400s(self):
        async def body(server, base):
            loop = asyncio.get_running_loop()
            with pytest.raises(urllib.error.HTTPError) as err:
                await loop.run_in_executor(
                    None, post, base, "/measure", {"kernel": "daxpy"})
            assert err.value.code == 400
            assert "requires" in json.loads(err.value.read())["error"]
        serve(body)

    def test_job_poll_and_event_stream(self):
        async def body(server, base):
            loop = asyncio.get_running_loop()
            status, doc = await loop.run_in_executor(
                None, post, base, "/measure",
                {"kernel": "daxpy", "n": 128, "machine": "tiny",
                 "async": True})
            assert status == 202
            job_id = doc["job"]
            # poll until done (the simulation is quick on tiny)
            for _ in range(200):
                status, raw = await loop.run_in_executor(
                    None, get, base, f"/jobs/{job_id}")
                state = json.loads(raw)
                if state["status"] in ("done", "error"):
                    break
                await asyncio.sleep(0.05)
            assert state["status"] == "done"
            status, raw = await loop.run_in_executor(
                None, get, base, f"/jobs/{job_id}/events")
            lines = [json.loads(line)
                     for line in raw.decode().strip().splitlines()]
            assert lines[0]["status"] == "running"
            assert lines[-1]["status"] == "done"
            assert any(e.get("type") == "point" for e in lines)
        serve(body)


class TestCoalescing:
    def test_eight_concurrent_identical_requests_one_simulation(self):
        params = {"kernel": "daxpy", "n": 192, "machine": "tiny"}

        async def body(server, base):
            loop = asyncio.get_running_loop()
            before_miss = _sweep_misses()
            results = await asyncio.gather(*[
                loop.run_in_executor(None, post, base, "/measure",
                                     dict(params))
                for _ in range(8)
            ])
            assert {status for status, _ in results} == {200}
            payloads = {
                json.dumps(doc["result"]["measurement"], sort_keys=True)
                for _, doc in results
            }
            assert len(payloads) == 1
            # exactly one *simulation* happened: in-flight duplicates
            # coalesced onto the first job, and any request arriving
            # after it finished replayed from the sweep cache
            assert _sweep_misses() - before_miss == 1

            status, raw = await loop.run_in_executor(
                None, get, base, "/metrics")
            text = raw.decode()
            executed = metric_value(text,
                                    "repro_serve_jobs_executed_total")
            coalesced = metric_value(text,
                                     "repro_serve_coalesced_total")
            assert executed + coalesced >= 8
            assert coalesced >= 1 or executed >= 2  # both paths legal
            assert metric_value(text, "repro_serve_queue_depth") == 0
        serve(body)

    def test_job_key_is_order_insensitive(self):
        a = job_key("measure", {"kernel": "daxpy", "n": 5})
        b = job_key("measure", {"n": 5, "kernel": "daxpy"})
        assert a == b
        assert a != job_key("sweep", {"kernel": "daxpy", "n": 5})

    def test_table_attaches_only_to_in_flight_jobs(self):
        async def body():
            table = JobTable()
            job, attached = table.submit("measure", {"n": 1})
            assert not attached
            again, attached = table.submit("measure", {"n": 1})
            assert attached and again is job and job.coalesced == 1
            job.status = "done"
            table.finish(job)
            fresh, attached = table.submit("measure", {"n": 1})
            assert not attached and fresh is not job
        asyncio.run(body())


class TestDrain:
    def test_drain_finishes_in_flight_work_then_refuses(self):
        async def body(server, base):
            loop = asyncio.get_running_loop()
            inflight = loop.run_in_executor(
                None, post, base, "/measure",
                {"kernel": "daxpy", "n": 256, "machine": "tiny"})
            await asyncio.sleep(0.05)
            await server.drain()
            status, doc = await inflight
            assert status == 200 and doc["status"] == "done"
            with pytest.raises((urllib.error.URLError, OSError)):
                await loop.run_in_executor(
                    None, get, base, "/healthz")
        serve(body)


def _sweep_misses() -> float:
    metric = REGISTRY.to_prometheus()
    for line in metric.splitlines():
        if line.startswith('repro_sweep_points_total{outcome="miss"}'):
            return float(line.split()[1])
    return 0.0
