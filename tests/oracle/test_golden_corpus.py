"""Golden conformance corpus: pinned digests over seeded fuzz programs.

Twenty seeded programs from the shared conformance generator run
through the *fast* path on a fresh tiny machine; a sha256 over every
observable (cycles, counters, cache stats, memory state summary) is
compared against digests committed in ``golden_digests.json``.

This is the cheap tier-1 tripwire: the differential and analytic
oracles prove semantics, the golden corpus catches *any* behaviour
change instantly — including intentional ones, which must regenerate
the file (``REPRO_REGEN_GOLDEN=1 pytest tests/oracle -m
conformance_golden``) and justify the diff in review.

The simulator is pure Python/IEEE-754 arithmetic, so digests are
platform-stable.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from pathlib import Path

import pytest

from repro.machine.presets import tiny_test_machine
from repro.oracle import random_program

GOLDEN_PATH = Path(__file__).parent / "golden_digests.json"
CORPUS_SEEDS = range(20)
_CACHE_FIELDS = ("hits", "misses", "fills", "evictions",
                 "dirty_evictions", "invalidations")


def _observables(seed: int) -> dict:
    rng = random.Random(seed)
    program = random_program(rng)
    mask = rng.randint(0, 15)
    machine = tiny_test_machine()
    machine.prefetch_control.write_msr(mask)
    loaded = machine.load(program)
    result = machine.run(loaded, core_id=0).result

    hier = machine.hierarchy
    payload = {
        "mask": mask,
        "cycles": repr(result.cycles),
        "instructions": result.instructions,
        "true_flops": result.true_flops,
        "phases": [repr(cost.total) for cost in result.phases],
        "batch": result.batch.as_dict(),
        "pmu": machine.core_pmu(0).snapshot(),
        "dram": [
            {"reads": node.counters.cas_reads,
             "writes": node.counters.cas_writes}
            for node in hier.dram
        ],
        "caches": {
            name: {f: getattr(cache.stats, f) for f in _CACHE_FIELDS}
            for name, cache in (
                ("l1", hier.l1[0]), ("l2", hier.l2[0]), ("l3", hier.l3[0]),
            )
        },
        "resident": {
            name: [sorted(cache.resident_lines()),
                   sorted(cache.dirty_lines())]
            for name, cache in (
                ("l1", hier.l1[0]), ("l2", hier.l2[0]), ("l3", hier.l3[0]),
            )
        },
    }
    return payload


def _digest(seed: int) -> str:
    blob = json.dumps(_observables(seed), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.conformance_golden
def test_golden_corpus_digests():
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        digests = {str(seed): _digest(seed) for seed in CORPUS_SEEDS}
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        "golden_digests.json missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    expected = json.loads(GOLDEN_PATH.read_text())
    mismatches = []
    for seed in CORPUS_SEEDS:
        actual = _digest(seed)
        want = expected.get(str(seed))
        if actual != want:
            mismatches.append(f"seed {seed}: {actual} != {want}")
    assert not mismatches, (
        "golden conformance digests changed — if intentional, regenerate "
        "with REPRO_REGEN_GOLDEN=1 and explain in the PR:\n"
        + "\n".join(mismatches)
    )
