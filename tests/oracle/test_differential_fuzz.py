"""Property-based differential conformance: fast path vs reference.

Hypothesis drives the shared program generator through a draw adapter,
so a failing example shrinks through hypothesis's machinery on top of
the program-level semantics the generator guarantees (in-bounds
addresses, legal ops).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.isa import ProgramBuilder  # noqa: E402
from repro.oracle import (  # noqa: E402
    minimize_program,
    random_program,
    render_program,
    run_differential,
)


class HypoRng:
    """random.Random-shaped adapter over a hypothesis data draw."""

    def __init__(self, data) -> None:
        self.data = data

    def randint(self, a: int, b: int) -> int:
        return self.data.draw(st.integers(min_value=a, max_value=b))

    def choice(self, seq):
        return self.data.draw(st.sampled_from(list(seq)))


@given(st.data())
@settings(max_examples=60)
def test_fast_path_matches_reference(data):
    rng = HypoRng(data)
    program = random_program(rng)
    mask = rng.randint(0, 15)
    outcome = run_differential(program, prefetch_mask=mask)
    assert outcome.ok, "\n".join(
        [f"prefetch mask {mask}"]
        + [str(d) for d in outcome.divergences]
        + ["program:", render_program(program)]
    )


def _triad_like(trips: int):
    b = ProgramBuilder()
    x = b.buffer("x", 8192)
    y = b.buffer("y", 8192)
    with b.loop(trips) as i:
        vx = b.load(x[i * 32], width=256)
        vy = b.load(y[i * 32], width=256)
        b.store(b.add(vx, vy), x[i * 32], width=256)
    return b.build()


def test_minimizer_shrinks_to_smallest_diverging_program():
    # Use a synthetic divergence criterion (loop deeper than 3 trips)
    # so the greedy minimizer's contract is testable without an actual
    # fast-path bug: it must keep the predicate true while shrinking.
    program = _triad_like(64)

    def predicate(p):
        loops = [n for n in p.body if hasattr(n, "trips")]
        return bool(loops) and loops[0].trips > 3

    small = minimize_program(program, predicate)
    assert predicate(small)
    loops = [n for n in small.body if hasattr(n, "trips")]
    assert loops[0].trips == 4  # smallest value satisfying > 3


def test_differential_reports_injected_cycle_divergence(monkeypatch):
    # Corrupt the reference timing slightly and require the engine to
    # notice: guards against a diff loop that silently compares
    # nothing (e.g. after an observable is renamed).
    from repro.oracle import reference as refmod

    original = refmod.ReferenceInterpreter._phase_total

    def skewed(self, *args, **kwargs):
        return original(self, *args, **kwargs) + 1.0

    monkeypatch.setattr(refmod.ReferenceInterpreter, "_phase_total", skewed)
    outcome = run_differential(_triad_like(16))
    assert not outcome.ok
    observables = {d.observable for d in outcome.divergences}
    assert any(o.startswith(("cycles", "phase")) for o in observables)


def test_render_program_handles_gather_programs():
    b = ProgramBuilder()
    buf = b.buffer("data", 4096)
    tab = b.index_table("idx", [0, 64, 128])
    with b.loop(3) as i:
        b.gather(buf, tab[i * 1 + 0], width=64)
    text = render_program(b.build())
    assert text  # structural fallback, never raises
