"""Analytic W/Q oracle: cheap representative kernels in tier-1.

The full registry runs through ``repro conformance`` in CI; here a
spread of kernel shapes (stream, reduction, NT store, RFO write) keeps
the oracle honest on every plain ``pytest`` run without the cost of
the dgemm/fft/spmv family.
"""

from __future__ import annotations

import pytest

from repro.oracle.analytic import (
    CLOSED_FORM_Q_COLD,
    check_kernel,
    expected_w_q,
    oracle_n,
)

TIER1_KERNELS = ("triad", "daxpy", "dot", "sum", "memset-nt", "read")


@pytest.mark.parametrize("kernel", TIER1_KERNELS)
def test_kernel_conforms_to_analytic_oracle(kernel):
    problems = check_kernel(kernel)
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("kernel", sorted(CLOSED_FORM_Q_COLD))
def test_model_q_matches_closed_form(kernel):
    # model-only (no measurement): fast enough to cover every closed
    # form on each run
    n = oracle_n(kernel)
    _, q = expected_w_q(kernel, n, "cold")
    assert q == float(CLOSED_FORM_Q_COLD[kernel](n))


def test_warm_traffic_is_zero_for_cached_kernels():
    _, q = expected_w_q("triad", oracle_n("triad"), "warm")
    assert q == 0.0


def test_warm_nt_traffic_is_store_stream_only():
    n = oracle_n("memset-nt")
    _, q = expected_w_q("memset-nt", n, "warm")
    assert q == 8.0 * n


def test_cold_work_includes_reissue_overcount():
    # dot's dependent FMA-less multiply-add chain reissues on cold
    # misses: counted W must exceed true W (the paper's F2 artifact)
    from repro.kernels.registry import make_kernel
    from repro.kernels.base import CodegenCaps
    from repro.oracle.analytic import oracle_machine

    n = oracle_n("dot")
    machine = oracle_machine()
    caps = CodegenCaps.from_machine(machine)
    true_flops = make_kernel("dot").expected_flops(n, caps)
    cold_w, _ = expected_w_q("dot", n, "cold")
    warm_w, _ = expected_w_q("dot", n, "warm")
    assert warm_w == float(true_flops)
    assert cold_w > warm_w
