"""Golden corpus for ``repro.analyze``: pinned digests of the JSON doc.

A small set of analyze configurations runs end to end — ERT ceiling
discovery plus the kernel sweep, both through the sweep executor — and
a sha256 over the canonicalised ``to_json_doc()`` output is compared
against digests committed in ``analyze_golden.json``.

Same contract as the conformance golden corpus: the oracle tests prove
the numbers are *right*, this catches *any* change to the published
document instantly — ceilings, intensities, labels, doc shape.  An
intentional change regenerates the file (``REPRO_REGEN_GOLDEN=1 pytest
tests/roofline -m analyze_golden``) and justifies the diff in review.

The simulator and the doc are pure Python/IEEE-754, so the digests are
platform-stable.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.machine.ref import MachineRef
from repro.roofline.hierarchical import analyze

GOLDEN_PATH = Path(__file__).parent / "analyze_golden.json"

#: (case id, kernel, sizes, machine factory) — tiny for turnaround,
#: oracle for the noise-free reconciliation path
CASES = {
    "daxpy-tiny": ("daxpy", [64, 256], lambda: MachineRef.of("tiny")),
    "dgemm-tiny": ("dgemm-tiled", [16, 32], lambda: MachineRef.of("tiny")),
    "daxpy-oracle-nopf": (
        "daxpy", [256],
        lambda: MachineRef.of("oracle").with_overrides(
            prefetch_enabled=False),
    ),
}


def _digest(case: str) -> str:
    kernel, sizes, ref = CASES[case]
    result = analyze(kernel, sizes, machine=ref(), protocol="cold", reps=2)
    blob = json.dumps(result.to_json_doc(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.analyze_golden
def test_analyze_golden_digests():
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        digests = {case: _digest(case) for case in sorted(CASES)}
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        "analyze_golden.json missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    expected = json.loads(GOLDEN_PATH.read_text())
    mismatches = []
    for case in sorted(CASES):
        actual = _digest(case)
        want = expected.get(case)
        if actual != want:
            mismatches.append(f"{case}: {actual} != {want}")
    assert not mismatches, (
        "analyze golden digests changed — if intentional, regenerate "
        "with REPRO_REGEN_GOLDEN=1 and explain in the PR:\n"
        + "\n".join(mismatches)
    )
