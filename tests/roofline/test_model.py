"""Roofline model mathematics and construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.roofline import ComputeCeiling, MemoryCeiling, RooflineModel


def simple_model(pi=20e9, beta=10e9):
    return RooflineModel(
        "test",
        [ComputeCeiling("scalar", pi / 4), ComputeCeiling("avx", pi)],
        [MemoryCeiling("dram", beta)],
    )


class TestCeilings:
    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeCeiling("bad", 0.0)
        with pytest.raises(ConfigurationError):
            MemoryCeiling("bad", -1.0)

    def test_model_requires_both_kinds(self):
        with pytest.raises(ConfigurationError):
            RooflineModel("m", [], [MemoryCeiling("d", 1.0)])
        with pytest.raises(ConfigurationError):
            RooflineModel("m", [ComputeCeiling("c", 1.0)], [])

    def test_ceilings_sorted(self):
        model = RooflineModel(
            "m",
            [ComputeCeiling("hi", 20.0), ComputeCeiling("lo", 5.0)],
            [MemoryCeiling("d", 1.0)],
        )
        assert model.compute[0].label == "lo"
        assert model.peak_flops == 20.0

    def test_lookup_by_label(self):
        model = simple_model()
        assert model.compute_ceiling("scalar").flops_per_second == 5e9
        assert model.memory_ceiling("dram").bytes_per_second == 10e9
        with pytest.raises(ConfigurationError):
            model.compute_ceiling("sse")


class TestAttainable:
    def test_ridge(self):
        model = simple_model(pi=20e9, beta=10e9)
        assert model.ridge_intensity == 2.0

    def test_memory_side(self):
        model = simple_model()
        assert model.attainable(1.0) == 10e9
        assert model.attainable(0.5) == 5e9

    def test_compute_side(self):
        model = simple_model()
        assert model.attainable(4.0) == 20e9
        assert model.attainable(1000.0) == 20e9

    def test_exactly_at_ridge(self):
        model = simple_model()
        assert model.attainable(model.ridge_intensity) == model.peak_flops

    def test_lower_ceiling_selection(self):
        model = simple_model()
        scalar = model.compute_ceiling("scalar")
        assert model.attainable(100.0, compute=scalar) == 5e9

    def test_nonpositive_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_model().attainable(0.0)

    def test_ridge_of_lower_ceiling(self):
        model = simple_model()
        scalar = model.compute_ceiling("scalar")
        assert model.ridge_of(scalar) == 0.5

    @given(st.floats(min_value=1e-4, max_value=1e4))
    @settings(max_examples=100, deadline=None)
    def test_attainable_properties(self, intensity):
        model = simple_model()
        value = model.attainable(intensity)
        assert value <= model.peak_flops
        assert value <= intensity * model.peak_bandwidth + 1e-6
        # and it equals one of the two bounds
        assert (value == model.peak_flops
                or value == pytest.approx(intensity * model.peak_bandwidth))

    @given(st.floats(min_value=1e-3, max_value=1e3),
           st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=50, deadline=None)
    def test_attainable_monotone(self, intensity, factor):
        model = simple_model()
        assert model.attainable(intensity * factor) >= model.attainable(intensity)

    def test_repr(self):
        assert "ridge" in repr(simple_model())
