"""Oracle cross-check: hierarchical placement reconciles with closed forms.

The analytic oracle (:mod:`repro.oracle.analytic`) predicts per-level
line traffic exactly on the noise-free oracle machine with prefetchers
off — the same counter derivations the measurement runner uses, driven
by the reference interpreter.  These tests pin :func:`repro.analyze`'s
per-level intensities against those closed forms, *exactly* (no
tolerance): the measured level bytes must equal the predicted bytes to
the line, and every published intensity must be the kernel's true flop
count divided by that predicted traffic.

This is the test band the tentpole is gated by: if counter attribution,
the A-B measurement windows, the sweep executor, or the ERT-fed
``analyze`` plumbing ever shifts a single cache line, these fail.
"""

from __future__ import annotations

import pytest

from repro.kernels import make_kernel
from repro.kernels.base import CodegenCaps
from repro.machine.ref import MachineRef
from repro.oracle.analytic import ORACLE_SIZES, expected_level_bytes
from repro.roofline.ert import LEVELS
from repro.roofline.hierarchical import analyze

#: the paper's three headline kernels, at the oracle corpus sizes
KERNELS = ("daxpy", "dgemv-row", "dgemm-tiled")


def _oracle_ref() -> MachineRef:
    # prefetch off: the closed forms count demand lines only
    return MachineRef.of("oracle").with_overrides(prefetch_enabled=False)


@pytest.fixture(scope="module")
def results():
    ref = _oracle_ref()
    out = {}
    for kernel in KERNELS:
        n = ORACLE_SIZES[kernel]
        out[kernel] = analyze(kernel, [n], machine=ref, protocol="cold",
                              reps=2)
    return out


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("level", LEVELS)
def test_level_bytes_match_closed_form_exactly(results, kernel, level):
    result = results[kernel]
    m = result.measurements[0]
    expected = expected_level_bytes(kernel, m.n, "cold")
    assert m.level_bytes[level] == expected[level], (
        f"{kernel} n={m.n}: measured {level} traffic "
        f"{m.level_bytes[level]} B != analytic {expected[level]} B"
    )


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("level", LEVELS)
def test_intensities_match_closed_form_exactly(results, kernel, level):
    result = results[kernel]
    m = result.measurements[0]
    expected = expected_level_bytes(kernel, m.n, "cold")
    want = m.true_flops / max(expected[level], 64.0)
    assert result.intensities()[level] == [want]


@pytest.mark.parametrize("kernel", KERNELS)
def test_true_flops_match_closed_form(results, kernel):
    """Measured executed flops equal the kernel's own closed form
    (which accounts for reduction-tree adds beyond the algorithmic
    ``flops(n)``)."""
    m = results[kernel].measurements[0]
    caps = CodegenCaps.from_machine(_oracle_ref().build())
    k = make_kernel(kernel)
    assert m.true_flops == k.expected_flops(m.n, caps)
    assert m.true_flops >= k.flops(m.n)


@pytest.mark.parametrize("kernel", KERNELS)
def test_level_intensities_monotone_with_hierarchy(results, kernel):
    """Bytes shrink (or hold) moving away from the core, so per-level
    intensity never decreases from L1 out to DRAM."""
    intensities = results[kernel].intensities()
    series = [intensities[level][0] for level in LEVELS]
    assert series == sorted(series)


def test_analyze_publishes_all_levels(results):
    for kernel in KERNELS:
        result = results[kernel]
        assert result.levels == LEVELS
        trajectories = result.trajectories()
        assert [t.series for t in trajectories] == \
               [f"{kernel}@{level}" for level in LEVELS]
        doc = result.to_json_doc()
        assert set(doc["hierarchical"]["levels"]) == set(LEVELS)
        assert len(doc["points"]) == len(LEVELS)
