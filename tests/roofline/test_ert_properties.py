"""Properties of ERT ceiling discovery: hierarchy order and determinism.

Two invariants the discovery pipeline must hold on the simulated
machines (tiny and snb presets):

* **Monotone hierarchy** — measured ceilings never invert: the L1 rate
  is at least the L2 rate, which is at least L3, which is at least
  DRAM.  Discovery runs prefetch-disabled, so per-level attribution is
  line-exact and the order is a property of the cache model, not of
  scheduling.
* **Execution-strategy independence** — the discovered grid is
  bit-identical whether the sweep executor runs serially, fans out
  over worker processes, or replays from the content-addressed cache.

The hypothesis block varies the *compute* part of the grid (extra flop
counts, sweep passes, reps) on the tiny machine; the bandwidth probes
always include the canonical flops-per-element=1 points, which is what
the monotonicity claim is about.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine.ref import MachineRef
from repro.roofline.ert import LEVELS, discover_ceilings, ert_plan
from repro.sweep import SweepCache, measurement_to_payload, run_plan


def _ref(preset: str) -> MachineRef:
    """tiny at its only size; snb scaled down so DRAM probes stay fast."""
    if preset == "tiny":
        return MachineRef.of("tiny")
    return MachineRef.of(preset, scale=0.125)


def _bandwidths(ceilings) -> list:
    return [ceilings.levels[level].bytes_per_second for level in LEVELS]


@pytest.mark.parametrize("preset", ["tiny", "snb"])
class TestHierarchyOrder:
    def test_default_grid_monotone(self, preset):
        ceilings = discover_ceilings(_ref(preset))
        bw = _bandwidths(ceilings)
        assert bw == sorted(bw, reverse=True), (
            f"{preset}: ceilings invert the hierarchy: "
            + ", ".join(f"{lvl}={b:.3e}" for lvl, b in zip(LEVELS, bw))
        )

    def test_all_levels_present_and_positive(self, preset):
        ceilings = discover_ceilings(_ref(preset))
        assert set(ceilings.levels) == set(LEVELS)
        assert all(b > 0 for b in _bandwidths(ceilings))
        assert ceilings.compute_flops_per_second > 0

    def test_compute_roof_above_every_bandwidth_point(self, preset):
        """The compute winner beats the flops rate of every probe."""
        ceilings = discover_ceilings(_ref(preset))
        best = ceilings.compute_flops_per_second
        assert best == max(m.performance for m in ceilings.measurements)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    extra=st.lists(st.sampled_from([2, 4, 8, 16, 64]),
                   min_size=0, max_size=2, unique=True),
    sweeps=st.integers(min_value=1, max_value=3),
    reps=st.integers(min_value=1, max_value=2),
)
def test_tiny_monotone_across_grids(extra, sweeps, reps):
    ceilings = discover_ceilings(
        MachineRef.of("tiny"), flop_counts=[1] + extra,
        sweeps=sweeps, reps=reps,
    )
    bw = _bandwidths(ceilings)
    assert bw == sorted(bw, reverse=True)


@pytest.mark.parametrize("preset", ["tiny", "snb"])
def test_serial_parallel_bit_identical(preset):
    plan_a = ert_plan(_ref(preset))
    plan_b = ert_plan(_ref(preset))
    serial = run_plan(plan_a, jobs=None)
    fanned = run_plan(plan_b, jobs=2)
    assert [measurement_to_payload(m) for m in serial.measurements] == \
           [measurement_to_payload(m) for m in fanned.measurements]


@pytest.mark.parametrize("preset", ["tiny", "snb"])
def test_cached_replay_bit_identical(preset, tmp_path):
    cache = SweepCache(str(tmp_path / "sweepcache"))
    first = discover_ceilings(_ref(preset), cache=cache)
    replay = discover_ceilings(_ref(preset), cache=cache)
    assert [measurement_to_payload(m) for m in first.measurements] == \
           [measurement_to_payload(m) for m in replay.measurements]
    assert _bandwidths(first) == _bandwidths(replay)
    assert replay.sweep_stats.hits == len(replay.measurements)
