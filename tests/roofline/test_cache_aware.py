"""Cache-aware roofline: per-level bandwidths and level attribution."""

import pytest

from repro.bench import measure_level_bandwidth, measure_level_bandwidths
from repro.errors import ConfigurationError
from repro.machine.presets import tiny_test_machine
from repro.roofline import (
    ComputeCeiling,
    KernelPoint,
    MemoryCeiling,
    RooflineModel,
    build_cache_aware_roofline,
    level_bandwidth_map,
    served_from,
)


@pytest.fixture(scope="module")
def ca_model():
    machine = tiny_test_machine()
    return build_cache_aware_roofline(machine, trips=1024, sweeps=4)


class TestLevelBandwidths:
    def test_all_levels_measured(self):
        machine = tiny_test_machine()
        results = measure_level_bandwidths(machine, sweeps=4)
        assert set(results) == {"L1", "L2", "L3", "DRAM"}
        for level, r in results.items():
            assert r.bytes_per_second > 0
            assert r.level == level

    def test_levels_ordered(self):
        machine = tiny_test_machine()
        results = measure_level_bandwidths(machine, sweeps=4)
        assert results["L1"].bytes_per_second > results["L3"].bytes_per_second
        assert results["L3"].bytes_per_second > results["DRAM"].bytes_per_second

    def test_working_sets_fit_their_level(self):
        machine = tiny_test_machine()
        hierarchy = machine.spec.hierarchy
        l1 = measure_level_bandwidth(machine, "L1", sweeps=2)
        assert l1.working_set_bytes <= hierarchy.l1.size_bytes
        dram = measure_level_bandwidth(machine, "DRAM", sweeps=2)
        assert dram.working_set_bytes > hierarchy.l3.size_bytes

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_level_bandwidth(tiny_test_machine(), "L4")

    def test_l1_bandwidth_matches_load_ports(self):
        # tiny machine: 2 x 128-bit load ports at 1 GHz = 32 GB/s
        machine = tiny_test_machine()
        l1 = measure_level_bandwidth(machine, "L1", sweeps=8)
        assert l1.bytes_per_second == pytest.approx(32e9, rel=0.05)


class TestModel:
    def test_four_memory_ceilings(self, ca_model):
        assert len(ca_model.memory) == 4
        levels = level_bandwidth_map(ca_model)
        assert set(levels) == {"L1", "L2", "L3", "DRAM"}

    def test_top_roof_is_l1(self, ca_model):
        levels = level_bandwidth_map(ca_model)
        assert ca_model.peak_bandwidth == levels["L1"]

    def test_level_map_requires_cache_aware_labels(self):
        plain = RooflineModel(
            "m", [ComputeCeiling("c", 1e9)], [MemoryCeiling("dram", 1e9)]
        )
        with pytest.raises(ConfigurationError):
            level_bandwidth_map(plain)


class TestServedFrom:
    def test_slow_point_attributed_to_dram(self, ca_model):
        levels = level_bandwidth_map(ca_model)
        intensity = 0.1
        point = KernelPoint("slow", intensity,
                            0.8 * intensity * levels["DRAM"])
        assert served_from(ca_model, point) == "DRAM"

    def test_fast_point_needs_inner_level(self, ca_model):
        levels = level_bandwidth_map(ca_model)
        intensity = 0.1
        point = KernelPoint("fast", intensity,
                            2.0 * intensity * levels["DRAM"])
        assert served_from(ca_model, point) != "DRAM"

    def test_impossible_point_rejected(self, ca_model):
        point = KernelPoint("impossible", 0.001,
                            ca_model.peak_flops)
        with pytest.raises(ConfigurationError):
            served_from(ca_model, point, tolerance=0.0)
