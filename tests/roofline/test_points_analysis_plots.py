"""Kernel points, analysis judgements, plot backends, exports."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.kernels import Daxpy
from repro.machine.presets import tiny_test_machine
from repro.measure import measure_kernel
from repro.roofline import (
    BOUND_COMPUTE,
    BOUND_MEMORY,
    ComputeCeiling,
    KernelPoint,
    MemoryCeiling,
    RooflineModel,
    Trajectory,
    analyze_point,
    ascii_plot,
    build_roofline,
    check_point_sanity,
    model_to_dict,
    points_to_csv,
    speedup_if_compute_bound,
    svg_plot,
    theoretical_roofline,
    to_json,
    trajectories_to_csv,
)


def model():
    return RooflineModel(
        "m",
        [ComputeCeiling("avx", 20e9)],
        [MemoryCeiling("dram", 10e9)],
    )


class TestKernelPoint:
    def test_positive_coordinates_required(self):
        with pytest.raises(ConfigurationError):
            KernelPoint("p", 0.0, 1e9)
        with pytest.raises(ConfigurationError):
            KernelPoint("p", 1.0, -1e9)

    def test_from_measurement(self, tiny):
        m = measure_kernel(tiny, Daxpy(), 4096, protocol="cold", reps=1)
        point = KernelPoint.from_measurement(m)
        assert point.intensity == pytest.approx(m.intensity)
        assert point.performance == pytest.approx(m.performance)
        assert point.series == "daxpy"
        assert point.n == 4096

    def test_trajectory_from_measurements(self, tiny):
        ms = [measure_kernel(tiny, Daxpy(), n, protocol="cold", reps=1)
              for n in (2048, 4096)]
        traj = Trajectory.from_measurements("daxpy cold", ms)
        assert len(traj) == 2
        assert all(p.series == "daxpy cold" for p in traj)


class TestAnalysis:
    def test_memory_bound_classification(self):
        point = KernelPoint("p", 0.5, 4e9)
        analysis = analyze_point(model(), point)
        assert analysis.bound == BOUND_MEMORY
        assert analysis.attainable_flops == 5e9
        assert analysis.utilization_of_roof == pytest.approx(0.8)
        assert analysis.headroom_factor == pytest.approx(1.25)

    def test_compute_bound_classification(self):
        point = KernelPoint("p", 10.0, 15e9)
        analysis = analyze_point(model(), point)
        assert analysis.bound == BOUND_COMPUTE
        assert analysis.utilization_of_peak == pytest.approx(0.75)
        assert "compute-bound" in analysis.summary()

    def test_sanity_check_flags_above_roof(self):
        good = KernelPoint("p", 0.5, 5e9)
        check_point_sanity(model(), good)
        bad = KernelPoint("p", 0.5, 9e9)
        with pytest.raises(ConfigurationError):
            check_point_sanity(model(), bad)

    def test_speedup_if_compute_bound(self):
        point = KernelPoint("p", 0.5, 4e9)
        assert speedup_if_compute_bound(model(), point) == pytest.approx(5.0)


class TestPlotBackends:
    def _points(self):
        return [KernelPoint("a", 0.1, 0.9e9, series="daxpy"),
                KernelPoint("b", 8.0, 15e9, series="dgemm")]

    def test_ascii_plot_contains_elements(self):
        text = ascii_plot(model(), points=self._points())
        assert "Roofline: m" in text
        assert "ridge" in text
        assert "o daxpy" in text
        assert "x dgemm" in text
        assert "/" in text and "-" in text

    def test_ascii_plot_model_only(self):
        assert "roof" in ascii_plot(model())

    def test_svg_is_wellformed_and_complete(self):
        traj = Trajectory("sweep", self._points())
        svg = svg_plot(model(), trajectories=[traj], title="T")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<circle") == 2
        assert "sweep" in svg
        assert "operational intensity" in svg

    def test_svg_parses_as_xml(self):
        import xml.etree.ElementTree as ET
        svg = svg_plot(model(), points=self._points())
        ET.fromstring(svg)


class TestExport:
    def test_points_csv(self):
        csv = points_to_csv(self._pts())
        lines = csv.strip().splitlines()
        assert lines[0].startswith("series,label")
        assert len(lines) == 3

    def _pts(self):
        return [KernelPoint("a", 0.1, 1e9, series="s1", n=64),
                KernelPoint("b", 2.0, 2e9, series="s2")]

    def test_trajectories_csv(self):
        traj = Trajectory("t", self._pts())
        assert len(trajectories_to_csv([traj]).strip().splitlines()) == 3

    def test_json_document(self):
        doc = json.loads(to_json(model(), points=self._pts()))
        assert doc["model"]["ridge_intensity"] == pytest.approx(2.0)
        assert len(doc["points"]) == 2

    def test_model_to_dict(self):
        d = model_to_dict(model())
        assert d["peak_flops_per_s"] == 20e9
        assert len(d["compute_ceilings"]) == 1


class TestBuilders:
    def test_measured_roofline_on_tiny(self):
        machine = tiny_test_machine()
        m = build_roofline(machine, cores=(0,), trips=1024,
                           stream_elements=32768,
                           bandwidth_methods=("memset-nt", "read"))
        # tiny: 8 flops/cycle at 1 GHz; per-core DRAM 6 B/c
        assert m.peak_flops == pytest.approx(8e9, rel=0.02)
        assert m.peak_bandwidth == pytest.approx(6e9, rel=0.1)
        assert len(m.compute) == 3  # scalar, sse, avx

    def test_thread_scaling_ceiling_added(self):
        machine = tiny_test_machine()
        m = build_roofline(machine, cores=(0, 1), trips=512,
                           widths=[256], stream_elements=32768,
                           bandwidth_methods=("memset-nt",),
                           include_thread_scaling=True)
        assert len(m.compute) == 2  # 2t AVX + 1t AVX

    def test_theoretical_roofline(self):
        machine = tiny_test_machine()
        m = theoretical_roofline(machine, threads=2)
        assert m.peak_flops == 16e9
        assert m.peak_bandwidth == 8e9
