"""Plot backends under unusual models (many ceilings, extreme ranges)."""

import xml.etree.ElementTree as ET

import pytest

from repro.roofline import (
    ComputeCeiling,
    KernelPoint,
    MemoryCeiling,
    RooflineModel,
    Trajectory,
    ascii_plot,
    svg_plot,
)


def layered_model():
    """A cache-aware-style model with four memory ceilings."""
    return RooflineModel(
        "layered",
        [ComputeCeiling("scalar", 2.7e9), ComputeCeiling("sse", 5.4e9),
         ComputeCeiling("avx", 21.6e9)],
        [MemoryCeiling("DRAM (11 GB/s)", 11e9),
         MemoryCeiling("L3 (49 GB/s)", 49e9),
         MemoryCeiling("L2 (49.4 GB/s)", 49.4e9),
         MemoryCeiling("L1 (86 GB/s)", 86e9)],
    )


class TestAsciiEdgeCases:
    def test_layered_model_renders(self):
        text = ascii_plot(layered_model())
        assert "L1 (86" in text
        assert "DRAM (11" in text

    def test_extreme_point_range(self):
        model = layered_model()
        points = [KernelPoint("lo", 1e-4, 1e6, series="lo"),
                  KernelPoint("hi", 1e4, 2e10, series="hi")]
        text = ascii_plot(model, points=points)
        assert "o lo" in text and "x hi" in text

    def test_custom_ranges_respected(self):
        text = ascii_plot(layered_model(), x_range=(0.01, 100),
                          y_range=(1e8, 1e11))
        assert "0.01 F/B" in text

    def test_marker_cycling_beyond_eight_series(self):
        points = [
            KernelPoint(f"p{i}", 0.1 * (i + 1), 1e9, series=f"s{i}")
            for i in range(10)
        ]
        text = ascii_plot(layered_model(), points=points)
        for i in range(10):
            assert f"s{i}" in text


class TestSvgEdgeCases:
    def test_layered_model_is_valid_xml(self):
        svg = svg_plot(layered_model())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_long_labels_truncated_in_legend(self):
        model = RooflineModel(
            "m",
            [ComputeCeiling("x" * 80, 1e9)],
            [MemoryCeiling("dram", 1e9), MemoryCeiling("y" * 80, 2e9)],
        )
        svg = svg_plot(model)
        assert "..." in svg
        assert "x" * 40 not in svg

    def test_trajectory_line_connects_points(self):
        traj = Trajectory("sweep", [
            KernelPoint("a", 0.1, 1e9, series="sweep"),
            KernelPoint("b", 0.2, 2e9, series="sweep"),
            KernelPoint("c", 0.4, 3e9, series="sweep"),
        ])
        svg = svg_plot(layered_model(), trajectories=[traj])
        assert svg.count("<circle") == 3
        # one connected path for the series beyond the roof path
        assert svg.count('stroke-width="1.3"') == 1

    def test_single_point_trajectory_draws_no_line(self):
        traj = Trajectory("one", [KernelPoint("a", 0.1, 1e9, series="one")])
        svg = svg_plot(layered_model(), trajectories=[traj])
        assert svg.count('stroke-width="1.3"') == 0

    def test_title_override(self):
        svg = svg_plot(layered_model(), title="Custom Title")
        assert "Custom Title" in svg
