"""Plot backends under unusual models (many ceilings, extreme ranges)."""

import xml.etree.ElementTree as ET

import pytest

from repro.roofline import (
    ComputeCeiling,
    KernelPoint,
    MemoryCeiling,
    RooflineModel,
    Trajectory,
    ascii_plot,
    svg_plot,
)


def layered_model():
    """A cache-aware-style model with four memory ceilings."""
    return RooflineModel(
        "layered",
        [ComputeCeiling("scalar", 2.7e9), ComputeCeiling("sse", 5.4e9),
         ComputeCeiling("avx", 21.6e9)],
        [MemoryCeiling("DRAM (11 GB/s)", 11e9),
         MemoryCeiling("L3 (49 GB/s)", 49e9),
         MemoryCeiling("L2 (49.4 GB/s)", 49.4e9),
         MemoryCeiling("L1 (86 GB/s)", 86e9)],
    )


class TestAsciiEdgeCases:
    def test_layered_model_renders(self):
        text = ascii_plot(layered_model())
        assert "L1 (86" in text
        assert "DRAM (11" in text

    def test_extreme_point_range(self):
        model = layered_model()
        points = [KernelPoint("lo", 1e-4, 1e6, series="lo"),
                  KernelPoint("hi", 1e4, 2e10, series="hi")]
        text = ascii_plot(model, points=points)
        assert "o lo" in text and "x hi" in text

    def test_custom_ranges_respected(self):
        text = ascii_plot(layered_model(), x_range=(0.01, 100),
                          y_range=(1e8, 1e11))
        assert "0.01 F/B" in text

    def test_marker_cycling_beyond_eight_series(self):
        points = [
            KernelPoint(f"p{i}", 0.1 * (i + 1), 1e9, series=f"s{i}")
            for i in range(10)
        ]
        text = ascii_plot(layered_model(), points=points)
        for i in range(10):
            assert f"s{i}" in text


class TestSvgEdgeCases:
    def test_layered_model_is_valid_xml(self):
        svg = svg_plot(layered_model())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_long_labels_truncated_in_legend(self):
        model = RooflineModel(
            "m",
            [ComputeCeiling("x" * 80, 1e9)],
            [MemoryCeiling("dram", 1e9), MemoryCeiling("y" * 80, 2e9)],
        )
        svg = svg_plot(model)
        assert "..." in svg
        assert "x" * 40 not in svg

    def test_trajectory_line_connects_points(self):
        traj = Trajectory("sweep", [
            KernelPoint("a", 0.1, 1e9, series="sweep"),
            KernelPoint("b", 0.2, 2e9, series="sweep"),
            KernelPoint("c", 0.4, 3e9, series="sweep"),
        ])
        svg = svg_plot(layered_model(), trajectories=[traj])
        assert svg.count("<circle") == 3
        # one connected path for the series beyond the roof path
        assert svg.count('stroke-width="1.3"') == 1

    def test_single_point_trajectory_draws_no_line(self):
        traj = Trajectory("one", [KernelPoint("a", 0.1, 1e9, series="one")])
        svg = svg_plot(layered_model(), trajectories=[traj])
        assert svg.count('stroke-width="1.3"') == 0

    def test_title_override(self):
        svg = svg_plot(layered_model(), title="Custom Title")
        assert "Custom Title" in svg


def inverted_ridge_model():
    """Discovered ceilings can invert (the oracle preset's DRAM counts
    writebacks that L3 fills do not): a lower-tier band faster than the
    top one puts its ridge left of the visible range."""
    return RooflineModel(
        "inverted",
        [ComputeCeiling("peak", 1e9)],
        [MemoryCeiling("L3 ERT (200 GB/s)", 200e9),
         MemoryCeiling("DRAM ERT (300 GB/s)", 300e9)],
    )


def _line_widths(svg):
    root = ET.fromstring(svg)
    return [
        (float(el.get("x1")), float(el.get("x2")))
        for el in root.iter("{http://www.w3.org/2000/svg}line")
    ]


class TestRidgeEdgeCases:
    """Coinciding/inverted ridge points must not draw negative-width
    segments or stack duplicate labels."""

    def test_inverted_ridge_draws_no_negative_width_segment(self):
        svg = svg_plot(inverted_ridge_model(), x_range=(1.0, 100.0))
        assert all(x1 <= x2 for x1, x2 in _line_widths(svg))
        ET.fromstring(svg)  # still a valid document

    def test_inverted_ridge_keeps_legend_entry(self):
        svg = svg_plot(inverted_ridge_model(), x_range=(1.0, 100.0))
        assert "L3 ERT" in svg  # skipped segment, not a vanished level

    def test_compute_ceiling_past_xmax_is_skipped(self):
        model = RooflineModel(
            "m",
            [ComputeCeiling("lo", 9.9e9), ComputeCeiling("hi", 1e10)],
            [MemoryCeiling("dram", 1e8)],
        )
        svg = svg_plot(model, x_range=(0.1, 10.0))
        assert all(x1 <= x2 for x1, x2 in _line_widths(svg))
        assert "lo" in svg

    def test_coinciding_ridges_valid_svg_and_ascii(self):
        model = RooflineModel(
            "twin",
            [ComputeCeiling("peak", 8e9)],
            [MemoryCeiling("L2 ERT (12 GB/s)", 12e9),
             MemoryCeiling("L3 ERT (12 GB/s)", 12e9),
             MemoryCeiling("L1 ERT (32 GB/s)", 32e9)],
        )
        svg = svg_plot(model)
        assert all(x1 <= x2 for x1, x2 in _line_widths(svg))
        text = ascii_plot(model)
        assert "L2 ERT" in text and "L3 ERT" in text

    def test_inverted_ridge_ascii_renders(self):
        text = ascii_plot(inverted_ridge_model(), x_range=(1.0, 100.0))
        assert "DRAM ERT" in text


class TestHierarchicalMerge:
    """Near-equal discovered levels merge into one labelled ceiling
    instead of two overlapping bands."""

    def _roofline(self, l2, l3):
        from repro.roofline.hierarchical import HierarchicalRoofline

        return HierarchicalRoofline(
            "m", ComputeCeiling("peak", 8e9),
            {"L1": MemoryCeiling("L1 ERT", 32e9),
             "L2": MemoryCeiling("L2 ERT", l2),
             "L3": MemoryCeiling("L3 ERT", l3),
             "DRAM": MemoryCeiling("DRAM ERT", 4e9)},
        )

    def test_coinciding_levels_merge(self):
        model = self._roofline(12e9, 12e9).to_model()
        labels = [c.label for c in model.memory]
        assert any(lbl.startswith("L2+L3 ERT") for lbl in labels)
        assert len(model.memory) == 3

    def test_near_coinciding_levels_merge_within_tolerance(self):
        model = self._roofline(12e9, 11.9e9).to_model()
        assert any(c.label.startswith("L2+L3") for c in model.memory)

    def test_distinct_levels_stay_separate(self):
        model = self._roofline(12e9, 8e9).to_model()
        assert len(model.memory) == 4
        svg = svg_plot(model)
        assert all(x1 <= x2 for x1, x2 in _line_widths(svg))

    def test_merged_model_plots_one_band_per_group(self):
        svg = svg_plot(self._roofline(12e9, 12e9).to_model())
        assert svg.count("L2+L3 ERT") == 1
        assert all(x1 <= x2 for x1, x2 in _line_widths(svg))
