"""Prefetch control MSR tests."""

import pytest

from repro.errors import ConfigurationError
from repro.prefetch import ALL_DISABLED_MASK, PrefetchControl


class TestControl:
    def test_default_all_enabled(self):
        control = PrefetchControl()
        assert all(control.state().values())

    def test_disable_one(self):
        control = PrefetchControl()
        control.disable("stream")
        assert not control.is_enabled("stream")
        assert control.is_enabled("nextline")

    def test_enable_restores(self):
        control = PrefetchControl()
        control.disable("stride")
        control.enable("stride")
        assert control.is_enabled("stride")

    def test_disable_all_matches_mask(self):
        control = PrefetchControl()
        control.disable_all()
        assert control.read_msr() == ALL_DISABLED_MASK
        assert not any(control.state().values())

    def test_enable_all(self):
        control = PrefetchControl()
        control.disable_all()
        control.enable_all()
        assert control.read_msr() == 0

    def test_raw_msr_write(self):
        control = PrefetchControl()
        control.write_msr(0b0101)
        assert not control.is_enabled("stream")     # bit 0
        assert control.is_enabled("adjacent")       # bit 1
        assert not control.is_enabled("nextline")   # bit 2

    def test_reserved_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            PrefetchControl().write_msr(0b10000)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            PrefetchControl().is_enabled("magic")

    def test_idempotent_disable(self):
        control = PrefetchControl()
        control.disable("stream")
        control.disable("stream")
        assert control.read_msr() == 1
