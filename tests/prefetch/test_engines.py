"""Prefetch engines: next-line, streamer, stride."""

import pytest

from repro.errors import ConfigurationError
from repro.prefetch import (
    NextLinePrefetcher,
    StreamPrefetcher,
    StridePrefetcher,
)


class TestNextLine:
    def test_prefetches_next_on_miss(self):
        engine = NextLinePrefetcher()
        assert engine.observe(10, was_miss=True) == [11]
        assert engine.stats.issued == 1

    def test_no_prefetch_on_hit(self):
        engine = NextLinePrefetcher()
        assert engine.observe(10, was_miss=False) == []

    def test_stops_at_page_boundary(self):
        engine = NextLinePrefetcher(lines_per_page=64)
        assert engine.observe(63, was_miss=True) == []
        assert engine.observe(64, was_miss=True) == [65]

    def test_reset_clears_stats(self):
        engine = NextLinePrefetcher()
        engine.observe(10, True)
        engine.reset()
        assert engine.stats.issued == 0


class TestStreamer:
    def test_trains_then_runs_ahead(self):
        engine = StreamPrefetcher(degree=2, distance=8,
                                  confidence_threshold=2)
        issued = []
        for line in range(10):
            issued.extend(engine.observe(line, was_miss=True))
        assert issued  # prefetches happened
        assert all(candidate > 0 for candidate in issued)
        # never prefetch behind the ascending stream start
        assert min(issued) >= 2

    def test_frontier_never_repeats(self):
        engine = StreamPrefetcher(degree=2, distance=8)
        issued = []
        for line in range(32):
            issued.extend(engine.observe(line, was_miss=True))
        assert len(issued) == len(set(issued))

    def test_descending_stream(self):
        engine = StreamPrefetcher(degree=2, distance=4)
        issued = []
        for line in range(40, 20, -1):
            issued.extend(engine.observe(line, was_miss=True))
        assert issued
        assert all(candidate < 40 for candidate in issued)

    def test_never_crosses_page(self):
        engine = StreamPrefetcher(degree=4, distance=16, lines_per_page=64)
        issued = []
        for line in range(50, 64):
            issued.extend(engine.observe(line, was_miss=True))
        assert all(candidate <= 63 for candidate in issued)

    def test_random_pattern_stays_quiet(self):
        engine = StreamPrefetcher(confidence_threshold=3)
        issued = []
        for line in (5, 500, 17, 9000, 3, 720):
            issued.extend(engine.observe(line, was_miss=True))
        assert issued == []

    def test_tracker_eviction_is_lru(self):
        engine = StreamPrefetcher(trackers=2)
        engine.observe(0, True)      # page 0
        engine.observe(64, True)     # page 1
        engine.observe(128, True)    # page 2 evicts page 0 tracker
        assert len(engine._table) == 2
        assert 0 not in engine._table

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            StreamPrefetcher(degree=0)
        with pytest.raises(ConfigurationError):
            StreamPrefetcher(confidence_threshold=0)

    def test_reset(self):
        engine = StreamPrefetcher()
        for line in range(8):
            engine.observe(line, True)
        engine.reset()
        assert engine._table == {}
        assert engine.stats.issued == 0


class TestStride:
    def test_detects_constant_stride(self):
        engine = StridePrefetcher(degree=2, confidence_threshold=2)
        issued = []
        for k in range(6):
            issued.extend(engine.observe(100 + 7 * k, True, stream_id=1))
        assert issued
        assert all((candidate - 100) % 7 == 0 for candidate in issued)

    def test_streams_tracked_per_site(self):
        engine = StridePrefetcher(confidence_threshold=2)
        # two interleaved sites with different strides both train
        issued_a, issued_b = [], []
        for k in range(6):
            issued_a.extend(engine.observe(7 * k, True, stream_id=1))
            issued_b.extend(engine.observe(1000 + 3 * k, True, stream_id=2))
        assert issued_a and issued_b

    def test_zero_stride_ignored(self):
        engine = StridePrefetcher()
        for _ in range(10):
            assert engine.observe(42, True, stream_id=1) == []

    def test_huge_stride_ignored(self):
        engine = StridePrefetcher(max_stride=64)
        issued = []
        for k in range(6):
            issued.extend(engine.observe(10_000 * k, True, stream_id=1))
        assert issued == []

    def test_stride_change_resets_confidence(self):
        engine = StridePrefetcher(confidence_threshold=3)
        lines = [0, 7, 14, 20, 23, 25]  # stride breaks at 20
        issued = []
        for line in lines:
            issued.extend(engine.observe(line, True, stream_id=1))
        assert issued == []

    def test_negative_candidates_dropped(self):
        engine = StridePrefetcher(degree=4, confidence_threshold=1)
        issued = []
        for line in (20, 10, 0):
            issued.extend(engine.observe(line, True, stream_id=1))
        assert all(candidate >= 0 for candidate in issued)

    def test_site_table_bounded(self):
        engine = StridePrefetcher(sites=4)
        for site in range(20):
            engine.observe(site * 100, True, stream_id=site)
        assert len(engine._table) <= 4
