"""Execution-port model tests."""

import pytest

from repro.errors import ConfigurationError
from repro.cpu.port_model import (
    PortModel,
    haswell_ports,
    sandy_bridge_ports,
    skylake_avx512_ports,
)


class TestPeaks:
    def test_snb_avx_peak_is_8(self):
        # one add + one mul port at 4 lanes each
        assert sandy_bridge_ports().peak_flops_per_cycle(256) == 8.0

    def test_snb_scalar_peak_is_2(self):
        assert sandy_bridge_ports().peak_flops_per_cycle(64) == 2.0

    def test_hsw_fma_peak_is_16(self):
        assert haswell_ports().peak_flops_per_cycle(256) == 16.0

    def test_skx_avx512_peak_is_32(self):
        assert skylake_avx512_ports().peak_flops_per_cycle(512) == 32.0

    def test_unsupported_width_rejected(self):
        with pytest.raises(ConfigurationError):
            sandy_bridge_ports().peak_flops_per_cycle(512)

    def test_f32_doubles_lanes(self):
        assert sandy_bridge_ports().peak_flops_per_cycle(256, "f32") == 16.0


class TestCapabilities:
    def test_snb_has_no_fma(self):
        assert not sandy_bridge_ports().has_fma

    def test_hsw_has_fma(self):
        assert haswell_ports().has_fma

    def test_latency_lookup(self):
        ports = sandy_bridge_ports()
        assert ports.latency("add") == 3
        assert ports.latency("mul") == 5

    def test_validation_rejects_portless_core(self):
        with pytest.raises(ConfigurationError):
            PortModel(fp_add_ports=0, fp_mul_ports=1, fma_ports=0)


class TestFpIssue:
    def test_balanced_add_mul_overlap(self):
        ports = sandy_bridge_ports()
        cycles = ports.fp_issue_cycles({("add", 256): 100, ("mul", 256): 100})
        assert cycles == 100.0  # the two ports run in parallel

    def test_unbalanced_mix_bound_by_busier_port(self):
        ports = sandy_bridge_ports()
        cycles = ports.fp_issue_cycles({("add", 256): 300, ("mul", 256): 100})
        assert cycles == 300.0

    def test_fma_on_snb_rejected(self):
        with pytest.raises(ConfigurationError):
            sandy_bridge_ports().fp_issue_cycles({("fma", 256): 1})

    def test_fma_ports_shared_with_adds(self):
        ports = haswell_ports()
        cycles = ports.fp_issue_cycles({("fma", 256): 100, ("add", 256): 100})
        assert cycles == 100.0  # 200 ops over 2 FMA-capable ports

    def test_div_serialises(self):
        ports = sandy_bridge_ports()
        only_div = ports.fp_issue_cycles({("div", 128): 10})
        expected = 10 * ports.div_recip_throughput + 10 / ports.issue_width
        assert only_div == expected

    def test_issue_width_limits_dense_mixes(self):
        ports = PortModel(fp_add_ports=4, fp_mul_ports=4, issue_width=4)
        cycles = ports.fp_issue_cycles({("add", 128): 100, ("mul", 128): 100})
        assert cycles == 200 / 4

    def test_max_min_occupy_add_port(self):
        ports = sandy_bridge_ports()
        cycles = ports.fp_issue_cycles({("max", 256): 50, ("add", 256): 50})
        assert cycles == 100.0


class TestMemIssue:
    def test_snb_splits_256bit_loads(self):
        ports = sandy_bridge_ports()
        # one 256-bit load = two 128-bit port-cycles over two ports
        assert ports.mem_issue_cycles({256: 1}, {}) == 1.0
        assert ports.mem_issue_cycles({128: 2}, {}) == 1.0

    def test_hsw_full_width_loads(self):
        ports = haswell_ports()
        assert ports.mem_issue_cycles({256: 2}, {}) == 1.0

    def test_stores_have_one_port(self):
        ports = sandy_bridge_ports()
        assert ports.mem_issue_cycles({}, {128: 3}) == 3.0

    def test_loads_and_stores_overlap(self):
        ports = sandy_bridge_ports()
        cycles = ports.mem_issue_cycles({128: 4}, {128: 2})
        assert cycles == 2.0
