"""SIMD levels, frequency governor, and the timing model."""

import pytest

from repro.cpu.frequency import FrequencyGovernor
from repro.cpu.port_model import sandy_bridge_ports
from repro.cpu.simd import AVX, SCALAR, SSE, level_by_name, level_by_width, levels_up_to
from repro.cpu.timing import TimingParams, phase_cycles, reissue_slots
from repro.errors import ConfigurationError
from repro.memory.cache import CacheConfig
from repro.memory.dram import DramConfig
from repro.memory.hierarchy import BatchStats, HierarchyConfig


class TestSimd:
    def test_lanes(self):
        assert AVX.lanes_f64 == 4
        assert AVX.lanes_f32 == 8
        assert SCALAR.lanes_f64 == 1

    def test_lookup(self):
        assert level_by_name("sse") is SSE
        assert level_by_width(256) is AVX

    def test_levels_up_to(self):
        assert [l.name for l in levels_up_to(256)] == ["scalar", "sse", "avx"]

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            level_by_name("mmx")
        with pytest.raises(ConfigurationError):
            level_by_width(192)
        with pytest.raises(ConfigurationError):
            levels_up_to(32)


class TestGovernor:
    def test_fixed_clock_default(self):
        gov = FrequencyGovernor(2.7e9, (3.5e9, 3.2e9))
        assert gov.frequency(1) == 2.7e9
        assert gov.frequency(2) == 2.7e9

    def test_turbo_steps_by_active_cores(self):
        gov = FrequencyGovernor(2.7e9, (3.5e9, 3.2e9), turbo_enabled=True)
        assert gov.frequency(1) == 3.5e9
        assert gov.frequency(2) == 3.2e9
        assert gov.frequency(8) == 3.2e9  # beyond table: last entry

    def test_turbo_without_table_is_base(self):
        gov = FrequencyGovernor(2.0e9, turbo_enabled=True)
        assert gov.frequency(1) == 2.0e9

    def test_steps_below_base_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyGovernor(3.0e9, (2.5e9,))

    def test_cycles_to_seconds(self):
        gov = FrequencyGovernor(2.0e9)
        assert gov.cycles_to_seconds(4e9) == 2.0

    def test_bad_active_cores(self):
        with pytest.raises(ConfigurationError):
            FrequencyGovernor(1e9).frequency(0)


def hier_config():
    return HierarchyConfig(
        l1=CacheConfig("L1", 1024, assoc=2, latency_cycles=4),
        l2=CacheConfig("L2", 4096, assoc=4, latency_cycles=12),
        l3=CacheConfig("L3", 16384, assoc=8, latency_cycles=30,
                       bytes_per_cycle=16.0),
        dram=DramConfig(channels=1, bytes_per_cycle_total=8.0,
                        per_core_bytes_per_cycle=6.0, latency_cycles=100),
    )


class TestPhaseCycles:
    def test_pure_compute_bound(self):
        cost = phase_cycles(
            sandy_bridge_ports(), hier_config(),
            {("add", 256): 100, ("mul", 256): 100}, {}, {},
            chain_cycles=0.0, batch=BatchStats(), params=TimingParams(),
            dram_bytes_per_cycle=6.0,
        )
        assert cost.total == 100.0
        assert cost.dominant == "fp_issue"

    def test_dram_bandwidth_bound(self):
        batch = BatchStats(accesses=1000, dram_reads=1000)
        cost = phase_cycles(
            sandy_bridge_ports(), hier_config(),
            {("add", 256): 10}, {}, {},
            chain_cycles=0.0, batch=batch, params=TimingParams(),
            dram_bytes_per_cycle=6.0,
        )
        assert cost.dram_bandwidth == 1000 * 64 / 6.0
        assert cost.dominant == "dram_bandwidth"
        # exposed latency adds on top of the throughput bound
        assert cost.total > cost.dram_bandwidth

    def test_chain_bound(self):
        cost = phase_cycles(
            sandy_bridge_ports(), hier_config(),
            {("mul", 256): 10}, {}, {},
            chain_cycles=500.0, batch=BatchStats(), params=TimingParams(),
            dram_bytes_per_cycle=6.0,
        )
        assert cost.total == 500.0
        assert cost.dominant == "dependency_chain"

    def test_writebacks_and_prefetch_count_toward_dram(self):
        batch = BatchStats(dram_reads=10, writebacks=5,
                           hw_prefetch_dram_reads=5, nt_lines=5)
        cost = phase_cycles(
            sandy_bridge_ports(), hier_config(), {}, {}, {},
            0.0, batch, TimingParams(), dram_bytes_per_cycle=8.0,
        )
        assert cost.dram_bandwidth == 25 * 64 / 8.0

    def test_remote_lines_cost_more_bandwidth(self):
        local = BatchStats(dram_reads=100)
        remote = BatchStats(dram_reads=100, remote_dram_lines=100)
        args = (sandy_bridge_ports(), hier_config(), {}, {}, {})
        cost_local = phase_cycles(*args, 0.0, local, TimingParams(), 6.0)
        cost_remote = phase_cycles(*args, 0.0, remote, TimingParams(), 6.0)
        assert cost_remote.dram_bandwidth > cost_local.dram_bandwidth
        assert cost_remote.exposed_latency > cost_local.exposed_latency

    def test_l2_l3_bandwidth_terms(self):
        batch = BatchStats(l2_hits=320, l3_hits=160)
        cost = phase_cycles(
            sandy_bridge_ports(), hier_config(), {}, {}, {},
            0.0, batch, TimingParams(), 6.0,
        )
        assert cost.l2_bandwidth == 320 * 64 / 32.0
        assert cost.l3_bandwidth == 160 * 64 / 16.0


class TestReissueSlots:
    def test_l1_hits_cause_no_slots(self):
        batch = BatchStats(accesses=100, l1_hits=100)
        assert reissue_slots(hier_config(), batch, TimingParams()) == 0

    def test_l2_hits_cause_one_slot_each(self):
        batch = BatchStats(l2_hits=10)
        assert reissue_slots(hier_config(), batch, TimingParams()) == 10

    def test_dram_misses_capped(self):
        params = TimingParams(max_reissue_per_miss=4)
        batch = BatchStats(dram_reads=10)
        # (100 - 6)/16 -> 6, capped at 4
        assert reissue_slots(hier_config(), batch, params) == 40

    def test_fully_hidden_latency_no_slots(self):
        params = TimingParams(reissue_hide_cycles=1000)
        batch = BatchStats(l2_hits=5, l3_hits=5, dram_reads=5)
        assert reissue_slots(hier_config(), batch, params) == 0
