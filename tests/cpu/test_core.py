"""Interpreter tests: counting fidelity, address streams, interleaving."""

import pytest

from repro.errors import ExecutionError
from repro.isa import ProgramBuilder
from repro.kernels import CodegenCaps, Daxpy, Dot
from repro.machine.presets import tiny_test_machine
from tests.conftest import build_triad


def run_fresh(program, machine=None, prefetch=True):
    machine = machine or tiny_test_machine()
    if not prefetch:
        machine.prefetch_control.disable_all()
    loaded = machine.load(program)
    result = machine.run(loaded, core_id=0)
    return machine, result


class TestCountingFidelity:
    def test_fp_counters_match_static_counts_without_misses(self):
        # L1-resident working set, warmed: no misses, so PMU counts must
        # equal the static instruction counts exactly
        machine = tiny_test_machine()
        program = build_triad(64)  # 1 KiB footprint
        loaded = machine.load(program)
        machine.run(loaded, core_id=0)  # warm
        pmu = machine.core_pmu(0)
        before = pmu.read("fp_256_f64")
        machine.run(loaded, core_id=0)
        delta = pmu.read("fp_256_f64") - before
        counts = program.static_counts()
        assert delta == counts.fp_width_map()[(256, "f64")]

    def test_true_flops_recorded(self):
        program = build_triad(256)
        _machine, run = run_fresh(program)
        assert run.result.true_flops == 2 * 256

    def test_instruction_counter(self):
        machine = tiny_test_machine()
        program = build_triad(64)
        loaded = machine.load(program)
        before = machine.core_pmu(0).read("instructions")
        machine.run(loaded, core_id=0)
        delta = machine.core_pmu(0).read("instructions") - before
        assert delta == 5 * (64 // 4)

    def test_cold_run_overcounts_fp(self):
        machine = tiny_test_machine()
        program = build_triad(8192)  # far beyond the 16 KiB L3
        loaded = machine.load(program)
        machine.bust_caches()
        pmu = machine.core_pmu(0)
        before = pmu.read("fp_256_f64")
        machine.run(loaded, core_id=0)
        delta = pmu.read("fp_256_f64") - before
        true = program.static_counts().fp_width_map()[(256, "f64")]
        assert delta > 1.3 * true

    def test_cache_event_counters_populated(self):
        machine = tiny_test_machine()
        program = build_triad(4096)
        loaded = machine.load(program)
        machine.bust_caches()
        machine.run(loaded, core_id=0)
        pmu = machine.core_pmu(0)
        assert pmu.read("l1_replacement") > 0
        assert pmu.read("llc_misses") > 0
        assert pmu.read("cycles") > 0


class TestAddressStreams:
    def test_unit_stride_touches_each_line_once(self):
        machine = tiny_test_machine()
        b = ProgramBuilder()
        x = b.buffer("x", 64 * 64)
        with b.loop(512) as i:       # 8-byte loads, 8 per line
            b.load(x[i * 8], width=64)
        _machine, run = run_fresh(b.build(), machine, prefetch=False)
        assert run.result.batch.accesses == 64
        assert machine.hierarchy.dram[0].counters.cas_reads == 64

    def test_large_stride_touches_distinct_lines(self):
        machine = tiny_test_machine()
        b = ProgramBuilder()
        x = b.buffer("x", 128 * 64)
        with b.loop(64) as i:        # stride 2 lines
            b.load(x[i * 128], width=64)
        _machine, run = run_fresh(b.build(), machine, prefetch=False)
        assert run.result.batch.accesses == 64
        assert machine.hierarchy.dram[0].counters.cas_reads == 64

    def test_unaligned_wide_load_spans_two_lines(self):
        machine = tiny_test_machine()
        b = ProgramBuilder()
        x = b.buffer("x", 4096)
        with b.loop(8) as i:
            b.load(x[i * 256 + 48], width=256)  # 32 B at offset 48: spans
        _machine, run = run_fresh(b.build(), machine)
        assert run.result.batch.accesses == 16  # two lines per load

    def test_stride_zero_site_touches_once(self):
        machine = tiny_test_machine()
        b = ProgramBuilder()
        x = b.buffer("x", 64)
        with b.loop(100):
            b.load(x[0], width=64)
        _machine, run = run_fresh(b.build(), machine, prefetch=False)
        assert machine.hierarchy.dram[0].counters.cas_reads == 1

    def test_nested_loop_addressing(self):
        machine = tiny_test_machine()
        b = ProgramBuilder()
        a = b.buffer("A", 16 * 1024)
        with b.loop(16, "i") as i:
            with b.loop(16, "j") as j:
                b.load(a[i * 1024 + j * 64], width=64)
        _machine, run = run_fresh(b.build(), machine, prefetch=False)
        assert machine.hierarchy.dram[0].counters.cas_reads == 256


class TestInterleaving:
    def test_store_after_load_of_same_line_hits_l1(self):
        machine = tiny_test_machine()
        machine.prefetch_control.disable_all()
        program = build_triad(4096)
        loaded = machine.load(program)
        machine.bust_caches()
        run = machine.run(loaded, core_id=0)
        batch = run.result.batch
        # the store stream must be absorbed by the y lines just loaded
        assert batch.l1_hits >= 4096 // 8
        # dram reads = x + y compulsory only
        assert batch.dram_reads == 2 * 4096 // 8

    def test_negative_stride_in_multi_site_body_rejected(self):
        b = ProgramBuilder()
        x = b.buffer("x", 4096)
        from repro.isa.instructions import AddrExpr, Load, Loop, Store
        from repro.isa.program import Program
        from repro.isa.registers import vec
        body = (
            Load(vec(0), AddrExpr("x", 2048, (("i", -64),)), 64),
            Store(vec(0), AddrExpr("x", 0, (("i", 64),)), 64),
        )
        program = Program([Loop("i", 8, body)], {"x": 4096})
        machine = tiny_test_machine()
        loaded = machine.load(program)
        with pytest.raises(ExecutionError):
            machine.run(loaded, core_id=0)


class TestSpecialInstructions:
    def test_nt_store_loop(self):
        machine = tiny_test_machine()
        program = build_triad(4096, nt=True)
        loaded = machine.load(program)
        machine.bust_caches()
        run = machine.run(loaded, core_id=0)
        assert run.result.batch.nt_lines == 4096 // 8
        assert machine.hierarchy.dram[0].counters.cas_writes == 4096 // 8

    def test_flush_loop(self):
        machine = tiny_test_machine()
        b = ProgramBuilder()
        x = b.buffer("x", 4096)
        with b.loop(64) as i:
            b.load(x[i * 64], width=64)
        with b.loop(64) as i:
            b.flush(x[i * 64])
        loaded = machine.load(b.build())
        run = machine.run(loaded, core_id=0)
        assert run.result.batch.flushes == 64
        assert machine.hierarchy.l1[0].occupancy() == 0

    def test_software_prefetch_loop(self):
        machine = tiny_test_machine()
        b = ProgramBuilder()
        x = b.buffer("x", 1024)  # exactly the L1 capacity (16 lines)
        with b.loop(16) as i:
            b.prefetch(x[i * 64])
        with b.loop(128) as i:
            b.load(x[i * 8], width=64)
        loaded = machine.load(b.build())
        run = machine.run(loaded, core_id=0)
        batch = run.result.batch
        assert batch.sw_prefetches == 16
        assert batch.l1_hits == 16  # all loads hit prefetched lines

    def test_straight_line_instructions(self):
        machine = tiny_test_machine()
        b = ProgramBuilder()
        x = b.buffer("x", 128)
        r1, r2 = b.regs(2)
        v = b.load(x[0], width=128)
        b.add(v, r1, width=128)
        b.store(r2, x[64], width=128)
        loaded = machine.load(b.build())
        run = machine.run(loaded, core_id=0)
        assert run.result.instructions == 3
        assert machine.core_pmu(0).read("fp_128_f64") == 1


class TestDependencyChains:
    def test_few_chains_are_latency_bound(self):
        """Pure-compute chain programs: 2 chains expose the 5-cycle
        multiply latency, 12 chains reach issue throughput."""
        from repro.bench.peakflops import peak_flops_program

        machine = tiny_test_machine()
        trips = 1024
        rates = {}
        for chains in (2, 12):
            program = peak_flops_program(256, has_fma=False, chains=chains,
                                         trips=trips)
            loaded = machine.load(program)
            run = machine.run(loaded, core_id=0)
            rates[chains] = program.static_counts().flops / run.cycles
        # 12 chains: 8 flops/cycle; 2 chains: ~1.6 flops/cycle
        assert rates[12] > 4 * rates[2]

    def test_dot_accumulators_reduce_chain_bound(self):
        caps = CodegenCaps(width_bits=256, has_fma=False)
        machine = tiny_test_machine()
        n = 128  # small enough that issue/chain, not DRAM, dominates
        cycles = {}
        for accumulators in (1, 8):
            kernel = Dot(accumulators=accumulators)
            loaded = machine.load(kernel.build(n, caps))
            machine.run(loaded, core_id=0)  # warm
            cycles[accumulators] = machine.run(loaded, core_id=0).cycles
        # single accumulator: 3-cycle add chain per iteration beats the
        # 2-cycle load issue; eight accumulators are load-bound
        assert cycles[1] > 1.2 * cycles[8]


class TestErrors:
    def test_missing_buffer_mapping(self):
        machine = tiny_test_machine()
        program = build_triad(64)
        loaded = machine.load(program)
        del loaded.buffer_map["y"]
        with pytest.raises(ExecutionError):
            machine.run(loaded, core_id=0)

    def test_zero_trip_loop_is_noop(self):
        machine = tiny_test_machine()
        b = ProgramBuilder()
        x = b.buffer("x", 64)
        with b.loop(0) as i:
            b.load(x[i * 8], width=64)
        loaded = machine.load(b.build())
        run = machine.run(loaded, core_id=0)
        assert run.result.batch.accesses == 0
