"""CLI surface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (["list"],
                     ["roofline", "--machine", "tiny"],
                     ["measure", "daxpy", "1024"],
                     ["experiment", "T1"]):
            assert parser.parse_args(argv).command == argv[0]

    def test_unknown_kernel_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["measure", "sgemm", "64"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "snb-ep" in out
        assert "daxpy" in out
        assert "T1" in out

    def test_roofline_tiny(self, capsys):
        assert main(["roofline", "--machine", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Roofline:" in out
        assert "ridge" in out

    def test_measure_tiny(self, capsys):
        code = main(["measure", "daxpy", "4096", "--machine", "tiny",
                     "--protocol", "cold", "--reps", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "W counted" in out
        assert "flops/byte" in out

    def test_measure_bad_n_is_handled(self, capsys):
        code = main(["measure", "fft", "1000", "--machine", "tiny",
                     "--reps", "1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_experiment_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(["experiment", "T1", "--output", str(out_file),
                     "--quick"])
        assert code == 0
        text = out_file.read_text()
        assert "T1 — Platform characteristics" in text

    def test_experiment_artifacts(self, tmp_path):
        art_dir = tmp_path / "art"
        code = main(["experiment", "F1", "--quick", "--output",
                     str(tmp_path / "r.md"), "--artifacts", str(art_dir)])
        assert code == 0
        assert (art_dir / "f1_example.svg").exists()
