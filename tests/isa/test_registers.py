"""Register model tests."""

import pytest

from repro.errors import IsaError
from repro.isa.registers import (
    GPR_COUNT,
    VEC_COUNT,
    RegisterAllocator,
    gpr,
    parse_register,
    vec,
)


class TestRegisterConstruction:
    def test_vec_names_and_kind(self):
        r = vec(5)
        assert r.name == "v5"
        assert r.index == 5
        assert r.is_vector

    def test_gpr_names_and_kind(self):
        r = gpr(11)
        assert r.name == "r11"
        assert not r.is_vector

    def test_out_of_range_rejected(self):
        with pytest.raises(IsaError):
            vec(VEC_COUNT)
        with pytest.raises(IsaError):
            gpr(-1)
        with pytest.raises(IsaError):
            gpr(GPR_COUNT)

    def test_equality_is_structural(self):
        assert vec(3) == vec(3)
        assert vec(3) != vec(4)
        assert vec(3) != gpr(3)

    def test_str(self):
        assert str(vec(0)) == "v0"


class TestParseRegister:
    def test_roundtrip_all(self):
        for i in range(VEC_COUNT):
            assert parse_register(f"v{i}") == vec(i)
        for i in range(GPR_COUNT):
            assert parse_register(f"r{i}") == gpr(i)

    def test_strips_whitespace(self):
        assert parse_register("  v7 ") == vec(7)

    @pytest.mark.parametrize("bad", ["x3", "v", "vv1", "r1a", "", "7"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(IsaError):
            parse_register(bad)


class TestAllocator:
    def test_fresh_registers_distinct_until_wrap(self):
        alloc = RegisterAllocator()
        regs = [alloc.fresh() for _ in range(VEC_COUNT)]
        assert len({r.name for r in regs}) == VEC_COUNT

    def test_wraps_after_exhaustion(self):
        alloc = RegisterAllocator()
        first = alloc.fresh()
        for _ in range(VEC_COUNT - 1):
            alloc.fresh()
        assert alloc.fresh() == first

    def test_reserve(self):
        alloc = RegisterAllocator()
        regs = alloc.reserve(8)
        assert len(regs) == 8
        assert len({r.name for r in regs}) == 8

    def test_reserve_too_many(self):
        with pytest.raises(IsaError):
            RegisterAllocator().reserve(VEC_COUNT + 1)
