"""Instruction set tests: flop accounting, validation, addresses."""

import pytest

from repro.errors import IsaError
from repro.isa.instructions import (
    AddrExpr,
    Flush,
    Load,
    Loop,
    PrefetchHint,
    Store,
    VecOp,
    flops_of,
    lanes,
)
from repro.isa.registers import vec


class TestLanes:
    @pytest.mark.parametrize("width,expected", [(64, 1), (128, 2),
                                                (256, 4), (512, 8)])
    def test_f64_lanes(self, width, expected):
        assert lanes(width, "f64") == expected

    def test_f32_lanes(self):
        assert lanes(256, "f32") == 8

    def test_bad_width(self):
        with pytest.raises(IsaError):
            lanes(100)


class TestFlopsOf:
    def test_add_counts_per_lane(self):
        assert flops_of("add", 256) == 4

    def test_fma_counts_double(self):
        assert flops_of("fma", 256) == 8
        assert flops_of("fma", 128, "f32") == 8

    def test_max_min_count_zero(self):
        # the PMU events do not count max/min — the paper's
        # applicability limitation
        assert flops_of("max", 256) == 0
        assert flops_of("min", 512) == 0

    def test_unknown_op(self):
        with pytest.raises(IsaError):
            flops_of("xor", 256)


class TestVecOp:
    def test_fma_requires_three_sources(self):
        with pytest.raises(IsaError):
            VecOp("fma", 256, vec(0), (vec(1), vec(2)))

    def test_binop_requires_two_sources(self):
        with pytest.raises(IsaError):
            VecOp("add", 256, vec(0), (vec(1), vec(2), vec(3)))

    def test_rejects_gpr_operands(self):
        from repro.isa.registers import gpr
        with pytest.raises(IsaError):
            VecOp("add", 256, gpr(0), (vec(1), vec(2)))

    def test_flops_property(self):
        op = VecOp("mul", 128, vec(0), (vec(1), vec(2)))
        assert op.flops == 2
        assert op.lanes == 2

    def test_str_format(self):
        op = VecOp("fma", 256, vec(2), (vec(0), vec(1), vec(2)))
        assert str(op) == "vfma.f64.256 v2, v0, v1, v2"

    def test_rejects_bad_precision(self):
        with pytest.raises(IsaError):
            VecOp("add", 256, vec(0), (vec(1), vec(2)), precision="f16")


class TestMemoryInstructions:
    def test_load_bytes(self):
        ld = Load(vec(0), AddrExpr("x"), 256)
        assert ld.bytes == 32

    def test_store_nt_str(self):
        st = Store(vec(0), AddrExpr("x"), 128, nt=True)
        assert str(st).startswith("vstorent.128")

    def test_load_rejects_bad_width(self):
        with pytest.raises(IsaError):
            Load(vec(0), AddrExpr("x"), 96)

    def test_prefetch_flush_str(self):
        assert str(PrefetchHint(AddrExpr("x", 64))) == "prefetch x[64]"
        assert str(Flush(AddrExpr("x"))) == "clflush x[0]"


class TestAddrExpr:
    def test_evaluate_affine(self):
        addr = AddrExpr("x", 16, (("i", 32), ("j", 8)))
        assert addr.evaluate({"i": 3, "j": 2}) == 16 + 96 + 16

    def test_evaluate_missing_iv_raises(self):
        addr = AddrExpr("x", 0, (("i", 8),))
        with pytest.raises(IsaError):
            addr.evaluate({})

    def test_stride_of(self):
        addr = AddrExpr("x", 0, (("i", 32),))
        assert addr.stride_of("i") == 32
        assert addr.stride_of("j") == 0

    def test_duplicate_loop_id_rejected(self):
        with pytest.raises(IsaError):
            AddrExpr("x", 0, (("i", 8), ("i", 16)))

    def test_negative_offset_rejected(self):
        with pytest.raises(IsaError):
            AddrExpr("x", -8)

    def test_str(self):
        assert str(AddrExpr("x", 4, (("i", 32),))) == "x[i*32+4]"
        assert str(AddrExpr("y")) == "y[0]"


class TestLoop:
    def test_negative_trips_rejected(self):
        with pytest.raises(IsaError):
            Loop("i", -1)

    def test_empty_id_rejected(self):
        with pytest.raises(IsaError):
            Loop("", 4)

    def test_zero_trips_allowed(self):
        assert Loop("i", 0).trips == 0
