"""Assembler: formatting, parsing, and property-based roundtrips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssemblerError
from repro.isa.assembler import format_program, parse_addr, parse_program
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import AddrExpr

CANONICAL = """\
buffer x 32768
buffer y 32768
loop i 1024
  vload.256 v0, x[i*32]
  vload.256 v1, y[i*32]
  vfma.f64.256 v1, v2, v0, v1
  vstore.256 v1, y[i*32]
end
"""


class TestParse:
    def test_canonical_listing(self):
        program = parse_program(CANONICAL)
        assert program.buffers == {"x": 32768, "y": 32768}
        assert program.static_counts().flops == 1024 * 8

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nbuffer x 64\nvload.64 v0, x[0]  # trailing\n"
        program = parse_program(text)
        assert program.instruction_count() == 1

    def test_nested_loops(self):
        text = (
            "buffer a 65536\n"
            "loop i 8\n"
            "  loop j 16\n"
            "    vload.64 v0, a[i*512+j*8]\n"
            "  end\n"
            "end\n"
        )
        program = parse_program(text)
        assert program.static_counts().loads == 128

    def test_unterminated_loop(self):
        with pytest.raises(AssemblerError):
            parse_program("loop i 4\n")

    def test_stray_end(self):
        with pytest.raises(AssemblerError):
            parse_program("end\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            parse_program("buffer x 64\nvxor.256 v0, v1\n")

    def test_duplicate_buffer(self):
        with pytest.raises(AssemblerError):
            parse_program("buffer x 64\nbuffer x 64\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            parse_program("buffer x 64\nvadd.f64.256 v0, v1\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            parse_program("buffer x 64\nbogus v0\n")

    def test_prefetch_and_flush(self):
        program = parse_program(
            "buffer x 128\nprefetch x[0]\nclflush x[64]\n"
        )
        counts = program.static_counts()
        assert counts.prefetches == 1
        assert counts.flushes == 1


class TestParseAddr:
    def test_simple(self):
        assert parse_addr("x[0]") == AddrExpr("x", 0, ())

    def test_terms_and_offset(self):
        addr = parse_addr("A[i*1024+j*8+16]")
        assert addr.offset == 16
        assert addr.stride_of("i") == 1024
        assert addr.stride_of("j") == 8

    def test_empty_brackets(self):
        assert parse_addr("x[]") == AddrExpr("x", 0, ())

    @pytest.mark.parametrize("bad", ["x", "x[", "[0]", "x[i**2]", "x[a+b*]"])
    def test_garbage_rejected(self, bad):
        with pytest.raises(AssemblerError):
            parse_addr(bad)


class TestRoundtrip:
    def test_canonical_roundtrip(self):
        program = parse_program(CANONICAL)
        assert format_program(program) == CANONICAL

    def test_builder_to_text_to_program(self):
        b = ProgramBuilder()
        x = b.buffer("x", 8192)
        v = b.reg()
        with b.loop(16, "i") as i:
            ld = b.load(x[i * 64], width=128)
            b.store(b.add(ld, v, width=128), x[i * 64], width=128, nt=True)
        original = b.build()
        parsed = parse_program(format_program(original))
        assert parsed.static_counts() == original.static_counts()
        assert format_program(parsed) == format_program(original)


@st.composite
def random_programs(draw):
    """Small random programs over one buffer."""
    b = ProgramBuilder()
    x = b.buffer("x", 1 << 16)
    regs = b.regs(4)
    trips = draw(st.integers(min_value=1, max_value=16))
    n_instr = draw(st.integers(min_value=1, max_value=6))
    with b.loop(trips, "i") as i:
        for k in range(n_instr):
            choice = draw(st.integers(min_value=0, max_value=4))
            width = draw(st.sampled_from([64, 128, 256]))
            if choice == 0:
                b.load(x[i * 64 + k * 8], width=width)
            elif choice == 1:
                b.store(regs[k % 4], x[i * 64 + k * 8], width=width,
                        nt=draw(st.booleans()))
            elif choice == 2:
                b.add(regs[0], regs[1], width=width)
            elif choice == 3:
                b.fma(regs[0], regs[1], regs[2], width=width)
            else:
                b.prefetch(x[i * 64])
    return b.build()


class TestRoundtripProperties:
    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_format_parse_is_identity_on_counts(self, program):
        parsed = parse_program(format_program(program))
        assert parsed.static_counts() == program.static_counts()
        assert parsed.buffers == program.buffers

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_format_is_stable(self, program):
        once = format_program(program)
        twice = format_program(parse_program(once))
        assert once == twice
