"""GatherLoad: the indexed-addressing ISA extension."""

import pytest

from repro.errors import AssemblerError, IsaError
from repro.isa import ProgramBuilder, format_program
from repro.isa.instructions import AddrExpr, GatherLoad
from repro.isa.registers import gpr, vec
from repro.machine.presets import tiny_test_machine


def gather_sum_program(n=256, modulus=64, stride=37):
    b = ProgramBuilder()
    x = b.buffer("x", modulus * 8)
    table = b.index_table(
        "idx", [((i * stride) % modulus) * 8 for i in range(n)]
    )
    acc = b.reg()
    with b.loop(n) as i:
        v = b.gather(x, table[i * 1], width=64)
        acc = b.add(acc, v, width=64, dst=acc)
    return b.build()


class TestConstruction:
    def test_requires_vector_dst(self):
        with pytest.raises(IsaError):
            GatherLoad(gpr(0), "x", AddrExpr("t"))

    def test_rejects_bad_width(self):
        with pytest.raises(IsaError):
            GatherLoad(vec(0), "x", AddrExpr("t"), width_bits=96)

    def test_str(self):
        g = GatherLoad(vec(0), "x", AddrExpr("t", 0, (("i", 1),)))
        assert str(g) == "vgather.64 v0, x[@t[i*1]]"


class TestBuilderAndValidation:
    def test_counts_as_load(self):
        program = gather_sum_program(128)
        counts = program.static_counts()
        assert counts.loads == 128
        assert counts.load_bytes == 128 * 8
        assert counts.flops == 128

    def test_empty_table_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(IsaError):
            b.index_table("t", [])

    def test_negative_offsets_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(IsaError):
            b.index_table("t", [-8])

    def test_duplicate_table_name_rejected(self):
        b = ProgramBuilder()
        b.index_table("t", [0])
        with pytest.raises(IsaError):
            b.index_table("t", [0])

    def test_unknown_table_rejected(self):
        b = ProgramBuilder()
        x = b.buffer("x", 64)
        b._emit(GatherLoad(b.reg(), "x", AddrExpr("ghost")))
        with pytest.raises(IsaError):
            b.build()

    def test_index_out_of_table_rejected(self):
        b = ProgramBuilder()
        x = b.buffer("x", 4096)
        table = b.index_table("t", [0, 8])
        with b.loop(10) as i:
            b.gather(x, table[i * 1], width=64)
        with pytest.raises(IsaError):
            b.build()

    def test_table_offset_beyond_buffer_rejected(self):
        b = ProgramBuilder()
        x = b.buffer("x", 64)
        table = b.index_table("t", [128])
        b.gather(x, table[0], width=64)
        with pytest.raises(IsaError):
            b.build()

    def test_not_assemblable(self):
        with pytest.raises(AssemblerError):
            format_program(gather_sum_program(16))


class TestExecution:
    def test_exact_unique_line_traffic(self):
        machine = tiny_test_machine()
        machine.prefetch_control.disable_all()
        program = gather_sum_program(n=256, modulus=1024, stride=37)
        loaded = machine.load(program)
        machine.bust_caches()
        run = machine.run(loaded, core_id=0)
        unique = len({((i * 37) % 1024) * 8 // 64 for i in range(256)})
        assert machine.hierarchy.dram[0].counters.cas_reads == unique
        assert run.result.batch.accesses == 256

    def test_repeated_gather_hits_cache(self):
        machine = tiny_test_machine()
        machine.prefetch_control.disable_all()
        # two lines revisited in alternation: after the two compulsory
        # misses, every (non-coalesced) touch is an L1 hit
        program = gather_sum_program(n=64, modulus=16, stride=5)
        loaded = machine.load(program)
        machine.bust_caches()
        run = machine.run(loaded, core_id=0)
        batch = run.result.batch
        assert batch.dram_reads == 2
        assert batch.l1_hits == batch.accesses - 2
        assert batch.accesses > 10  # alternation survives coalescing

    def test_gather_in_nested_loop(self):
        machine = tiny_test_machine()
        b = ProgramBuilder()
        x = b.buffer("x", 4096)
        table = b.index_table("t", [(i * 17 % 512) * 8 for i in range(64)])
        with b.loop(8, "r") as r:
            with b.loop(8, "j") as j:
                b.gather(x, table[r * 8 + j * 1], width=64)
        loaded = machine.load(b.build())
        run = machine.run(loaded, core_id=0)
        assert run.result.batch.accesses == 64

    def test_gather_fp_dependence_counts_in_overcount(self):
        """Gathered values feeding FP ops participate in the reissue
        artifact like normal loads."""
        machine = tiny_test_machine()
        machine.prefetch_control.disable_all()
        program = gather_sum_program(n=2048, modulus=4096, stride=61)
        loaded = machine.load(program)
        machine.bust_caches()
        before = machine.core_pmu(0).read("fp_scalar_f64")
        machine.run(loaded, core_id=0)
        delta = machine.core_pmu(0).read("fp_scalar_f64") - before
        assert delta > 2048  # true adds plus replays
