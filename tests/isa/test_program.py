"""Program IR: validation, static accounting, bounds checking."""

import pytest

from repro.errors import IsaError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import AddrExpr, Load, Loop, VecOp
from repro.isa.program import Program
from repro.isa.registers import vec


def triad_program(n=256, width=256):
    b = ProgramBuilder()
    x = b.buffer("x", n * 8)
    y = b.buffer("y", n * 8)
    alpha = b.reg()
    lanes = width // 64
    with b.loop(n // lanes) as i:
        vx = b.load(x[i * (width // 8)], width=width)
        vy = b.load(y[i * (width // 8)], width=width)
        t = b.mul(alpha, vx, width=width)
        r = b.add(t, vy, width=width)
        b.store(r, y[i * (width // 8)], width=width)
    return b.build()


class TestValidation:
    def test_undeclared_buffer_rejected(self):
        load = Load(vec(0), AddrExpr("nope"), 64)
        with pytest.raises(IsaError):
            Program([load], {})

    def test_iv_outside_scope_rejected(self):
        load = Load(vec(0), AddrExpr("x", 0, (("i", 8),)), 64)
        with pytest.raises(IsaError):
            Program([load], {"x": 64})

    def test_shadowed_loop_id_rejected(self):
        inner = Loop("i", 4, (Load(vec(0), AddrExpr("x", 0, (("i", 8),)), 64),))
        outer = Loop("i", 4, (inner,))
        with pytest.raises(IsaError):
            Program([outer], {"x": 4096})

    def test_nonpositive_buffer_rejected(self):
        with pytest.raises(IsaError):
            Program([], {"x": 0})

    def test_valid_nested_loops(self):
        inner = Loop("j", 4, (Load(vec(0), AddrExpr(
            "x", 0, (("i", 32), ("j", 8))), 64),))
        outer = Loop("i", 4, (inner,))
        program = Program([outer], {"x": 4096})
        assert program.instruction_count() == 1


class TestStaticCounts:
    def test_triad_counts(self):
        program = triad_program(n=256, width=256)
        counts = program.static_counts()
        assert counts.flops == 2 * 256
        assert counts.loads == 2 * 64
        assert counts.stores == 64
        assert counts.load_bytes == 2 * 256 * 8
        assert counts.store_bytes == 256 * 8
        assert counts.fp_width_map() == {(256, "f64"): 128}

    def test_nested_loop_multiplier(self):
        body = (VecOp("add", 128, vec(0), (vec(1), vec(2))),)
        nest = Loop("i", 10, (Loop("j", 7, body),))
        program = Program([nest], {})
        assert program.static_counts().flops == 10 * 7 * 2

    def test_zero_trip_loop_contributes_nothing(self):
        body = (VecOp("add", 128, vec(0), (vec(1), vec(2))),)
        program = Program([Loop("i", 0, body)], {})
        assert program.static_counts().flops == 0

    def test_nt_store_counted_separately(self):
        b = ProgramBuilder()
        x = b.buffer("x", 1024)
        v = b.reg()
        with b.loop(4) as i:
            b.store(v, x[i * 64], width=256, nt=True)
        counts = b.build().static_counts()
        assert counts.nt_stores == 4
        assert counts.stores == 0

    def test_prefetch_and_flush_counts(self):
        b = ProgramBuilder()
        x = b.buffer("x", 1024)
        with b.loop(8) as i:
            b.prefetch(x[i * 64])
            b.flush(x[i * 64])
        counts = b.build().static_counts()
        assert counts.prefetches == 8
        assert counts.flushes == 8

    def test_mem_ops_total(self):
        counts = triad_program().static_counts()
        assert counts.mem_ops == counts.loads + counts.stores


class TestBounds:
    def test_in_bounds_program_passes(self):
        triad_program().check_bounds()

    def test_overflowing_access_rejected(self):
        b = ProgramBuilder()
        x = b.buffer("x", 128)
        with b.loop(4) as i:
            b.load(x[i * 64], width=64)  # last access at 192 > 128
        with pytest.raises(IsaError):
            b.build()

    def test_max_extent(self):
        program = triad_program(n=256)
        assert program.max_extent("x") == 256 * 8
        assert program.max_extent("y") == 256 * 8


class TestWalk:
    def test_walk_visits_all_nodes(self):
        program = triad_program()
        nodes = list(program.walk())
        # 1 loop + 5 instructions
        assert len(nodes) == 6

    def test_repr(self):
        assert "5 static instructions" in repr(triad_program())
