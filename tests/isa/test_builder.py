"""ProgramBuilder tests: fluent API, addressing, loop scoping."""

import pytest

from repro.errors import IsaError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Load, Loop, Store, VecOp


class TestBuffers:
    def test_duplicate_buffer_rejected(self):
        b = ProgramBuilder()
        b.buffer("x", 64)
        with pytest.raises(IsaError):
            b.buffer("x", 64)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(IsaError):
            ProgramBuilder().buffer("x", 0)

    def test_base_address(self):
        b = ProgramBuilder()
        x = b.buffer("x", 64)
        assert x.base.buffer == "x"
        assert x.base.offset == 0


class TestAddressing:
    def test_loopvar_times_int(self):
        b = ProgramBuilder()
        x = b.buffer("x", 4096)
        with b.loop(4, "i") as i:
            addr = x[i * 32 + 8]
            b.load(addr, width=64)
        assert addr.offset == 8
        assert addr.stride_of("i") == 32

    def test_two_variable_address(self):
        b = ProgramBuilder()
        a = b.buffer("A", 1 << 16)
        with b.loop(4, "i") as i:
            with b.loop(4, "j") as j:
                addr = a[i * 1024 + j * 8 + 16]
                b.load(addr, width=64)
        assert addr.stride_of("i") == 1024
        assert addr.stride_of("j") == 8
        assert addr.offset == 16

    def test_coefficient_merging(self):
        b = ProgramBuilder()
        x = b.buffer("x", 1 << 14)
        with b.loop(4, "i") as i:
            addr = x[i * 32 + i * 8]
            b.load(addr, width=64)
        assert addr.stride_of("i") == 40

    def test_non_integer_coefficient_rejected(self):
        b = ProgramBuilder()
        b.buffer("x", 64)
        with b.loop(4) as i:
            with pytest.raises(IsaError):
                i * 1.5

    def test_negative_offset_rejected(self):
        b = ProgramBuilder()
        x = b.buffer("x", 64)
        with pytest.raises(IsaError):
            x[-8]


class TestEmission:
    def test_fma_defaults_to_accumulate(self):
        b = ProgramBuilder()
        x = b.buffer("x", 4096)
        acc = b.reg()
        other = b.reg()
        with b.loop(4) as i:
            v = b.load(x[i * 32], width=256)
            out = b.fma(v, other, acc, width=256)
        assert out == acc
        program = b.build()
        loop = program.body[0]
        fma = loop.body[-1]
        assert isinstance(fma, VecOp)
        assert fma.dst == acc
        assert acc in fma.srcs

    def test_binop_fresh_destination(self):
        b = ProgramBuilder()
        r1, r2 = b.regs(2)
        out = b.add(r1, r2, width=128)
        assert out not in (r1, r2)

    def test_all_binops_emit(self):
        b = ProgramBuilder()
        r1, r2 = b.regs(2)
        for method in (b.add, b.sub, b.mul, b.div, b.max_, b.min_):
            method(r1, r2, width=128)
        program = b.build()
        assert program.instruction_count() == 6

    def test_unclosed_loop_detected(self):
        b = ProgramBuilder()
        b._body_stack.append([])  # simulate an unclosed loop
        with pytest.raises(IsaError):
            b.build()

    def test_auto_loop_ids_unique(self):
        b = ProgramBuilder()
        x = b.buffer("x", 1 << 14)
        with b.loop(2) as i:
            with b.loop(2) as j:
                b.load(x[i * 64 + j * 8], width=64)
        assert i.loop_id != j.loop_id

    def test_emit_after_build_rejected(self):
        b = ProgramBuilder()
        r1, r2 = b.regs(2)
        b.add(r1, r2)
        b.build()
        with pytest.raises(IsaError):
            b.add(r1, r2)

    def test_nested_structure(self):
        b = ProgramBuilder()
        x = b.buffer("x", 1 << 14)
        with b.loop(3, "outer") as i:
            v = b.load(x[i * 8], width=64)
            with b.loop(5, "inner") as j:
                b.load(x[i * 8 + j * 64], width=64)
            b.store(v, x[i * 8], width=64)
        program = b.build()
        outer = program.body[0]
        assert isinstance(outer, Loop)
        assert outer.trips == 3
        kinds = [type(n) for n in outer.body]
        assert kinds == [Load, Loop, Store]
