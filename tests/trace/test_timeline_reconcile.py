"""Window sums must reconcile exactly with aggregate counters.

The whole point of the timeline is that it re-buckets — never invents
or drops — the counters the PMU/IMC methodology already validates:

* for arbitrary random programs, the per-window sums equal the
  interpreter's :class:`ExecutionResult` aggregates (instructions,
  flops, every functional cache/DRAM/prefetch counter) for any window
  width;
* for every registry kernel on the noise-free oracle machine, the
  windowed totals equal the *measured* A-B counter deltas: counted
  flops match W and windowed DRAM lines match Q byte-for-byte.
"""

import random

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

from repro.kernels import kernel_names, make_kernel
from repro.machine.presets import tiny_test_machine
from repro.measure.runner import measure_kernel
from repro.oracle.analytic import oracle_machine, oracle_n
from repro.oracle.fuzz import random_program
from repro.trace import TimelineConfig, TimelineSampler

#: the BatchStats keys that must reconcile against ExecutionResult.batch
_BATCH_KEYS = (
    "accesses", "l1_hits", "l2_hits", "l3_hits", "dram_reads",
    "writebacks", "nt_lines", "l1_evictions", "l2_evictions",
    "l3_evictions", "sw_prefetches", "hw_prefetch_issued",
    "hw_prefetch_dram_reads", "prefetch_useful", "remote_dram_lines",
    "flushes", "tlb_misses", "tlb_walk_cycles",
)


def _sampled_run(seed: int):
    """Run one random program with a sampler attached; return both."""
    machine = tiny_test_machine()
    program = random_program(random.Random(seed))
    loaded = machine.load(program)
    sampler = TimelineSampler(machine, TimelineConfig(1e18))
    machine.trace.attach(sampler)
    try:
        run = machine.run_parallel([(loaded, 0)])
    finally:
        machine.trace.detach()
    return sampler, run.per_core[0]


def _assert_reconciles(sampler, result, width: float) -> None:
    timeline = sampler.timeline(TimelineConfig(width))
    totals = timeline.totals()
    assert totals["instructions"] == result.instructions
    assert totals["flops"] == result.true_flops
    expected = result.batch.as_dict()
    for key in _BATCH_KEYS:
        assert totals[key] == expected.get(key, 0), key
    # busy cycles re-bucket the same phase durations
    busy = sum(w.busy_cycles for w in timeline.windows)
    dur_total = sum(e.dur for e in sampler.entries)
    assert busy == pytest.approx(dur_total, rel=1e-9)


if HAVE_HYPOTHESIS:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000),
           divisor=st.sampled_from([1.0, 2.0, 3.7, 11.0, 47.0, 301.0]))
    def test_random_programs_reconcile_at_any_width(seed, divisor):
        sampler, result = _sampled_run(seed)
        t0, t_end = sampler.phase_span()
        span = t_end - t0
        if span <= 0:
            return  # nothing to window; the error path has its own test
        _assert_reconciles(sampler, result, span / divisor)


def test_fixed_program_reconciles_across_widths():
    sampler, result = _sampled_run(1234)
    t0, t_end = sampler.phase_span()
    span = t_end - t0
    for divisor in (1.0, 5.0, 13.3, 101.0):
        _assert_reconciles(sampler, result, span / divisor)


@pytest.mark.parametrize("name", kernel_names())
def test_registry_kernel_windows_reconcile_with_measured_counters(name):
    """Acceptance: per-window sums equal the aggregate A-B counter
    deltas for every registry kernel (noise-free oracle machine)."""
    machine = oracle_machine()
    kernel = make_kernel(name)
    n = oracle_n(name)
    sampler = TimelineSampler(machine, TimelineConfig(1e18))
    m = measure_kernel(machine, kernel, n, protocol="cold", reps=1,
                       trace=sampler)
    t0, t_end = sampler.phase_span()
    timeline = sampler.timeline(TimelineConfig((t_end - t0) / 7.0))
    totals = timeline.totals()
    # W: the FP counters saw true flops plus the reissue overcount
    assert totals["counted_flops"] == m.work_flops
    assert totals["flops"] == m.true_flops
    # Q: windowed DRAM lines equal the measured IMC CAS deltas
    read_lines = totals["dram_reads"] + totals["hw_prefetch_dram_reads"]
    write_lines = totals["writebacks"] + totals["nt_lines"]
    assert 64.0 * (read_lines + write_lines) == m.traffic_bytes
