"""Trace bus semantics: emission, ordering, and zero-cost disabling."""

from repro.machine.presets import tiny_test_machine
from repro.trace import (
    CACHE,
    DRAM,
    PHASE,
    ListSink,
    NullSink,
    TraceBus,
    TraceEvent,
)
from tests.conftest import build_triad


class TestBus:
    def test_disabled_by_default(self):
        bus = TraceBus()
        assert not bus.enabled
        assert isinstance(bus.sink, NullSink)

    def test_attach_enables_and_routes(self):
        bus = TraceBus()
        sink = ListSink()
        bus.attach(sink)
        assert bus.enabled
        bus.emit(TraceEvent(PHASE, "p", 1.0))
        assert len(sink) == 1

    def test_detach_restores_nullsink_and_returns_sink(self):
        bus = TraceBus()
        sink = ListSink()
        bus.attach(sink)
        bus.emit(TraceEvent(PHASE, "p", 0.0))
        returned = bus.detach()
        assert returned is sink
        assert not bus.enabled
        bus.emit(TraceEvent(PHASE, "p", 1.0))
        assert len(sink) == 1  # nothing new after detach

    def test_emit_while_disabled_is_dropped(self):
        bus = TraceBus()
        bus.emit(TraceEvent(PHASE, "p", 1.0))  # must not raise


class TestMachineEmission:
    def run_traced(self, machine, program):
        sink = ListSink()
        machine.trace.attach(sink)
        loaded = machine.load(program)
        machine.bust_caches()
        run = machine.run(loaded, core_id=0)
        machine.trace.detach()
        return run, sink.events

    def test_phases_and_batches_emitted(self, tiny):
        run, events = self.run_traced(tiny, build_triad(512))
        kinds = {e.kind for e in events}
        assert PHASE in kinds
        assert CACHE in kinds
        assert DRAM in kinds  # cold caches must reach DRAM

    def test_event_ordering_is_monotonic_per_core(self, tiny):
        _run, events = self.run_traced(tiny, build_triad(512))
        timestamps = [e.ts for e in events]
        assert timestamps == sorted(timestamps)

    def test_phase_durations_sum_to_run_cycles(self, tiny):
        run, events = self.run_traced(tiny, build_triad(512))
        phase_cycles = sum(e.dur for e in events if e.kind == PHASE)
        assert abs(phase_cycles - run.cycles) < 1e-6

    def test_phase_args_carry_bounds_and_batch(self, tiny):
        _run, events = self.run_traced(tiny, build_triad(512))
        phase = next(e for e in events if e.kind == PHASE)
        assert phase.args["trips"] > 0
        assert "dram_bandwidth" in phase.args["bounds"]
        assert phase.args["batch"]["accesses"] > 0
        assert phase.args["dominant"] in phase.args["bounds"]

    def test_dram_events_match_imc_counters(self, tiny):
        _run, events = self.run_traced(tiny, build_triad(512))
        reads = sum(e.args["reads"] for e in events if e.kind == DRAM)
        writes = sum(e.args["writes"] for e in events if e.kind == DRAM)
        imc = tiny.hierarchy.dram[0].counters
        assert reads == imc.cas_reads
        assert writes == imc.cas_writes

    def test_tracing_does_not_perturb_execution(self, tiny):
        program = build_triad(512)
        run_traced, _events = self.run_traced(tiny, program)
        untraced = tiny_test_machine()
        loaded = untraced.load(program)
        untraced.bust_caches()
        run_plain = untraced.run(loaded, core_id=0)
        assert run_traced.cycles == run_plain.cycles
        assert (run_traced.result.batch.as_dict()
                == run_plain.result.batch.as_dict())

    def test_disabled_bus_emits_nothing_during_run(self, tiny):
        sink = ListSink()
        tiny.trace.sink = sink  # routed but NOT enabled
        loaded = tiny.load(build_triad(512))
        tiny.bust_caches()
        tiny.run(loaded, core_id=0)
        assert len(sink) == 0
