"""CLI surface of ``repro profile`` and the ``--json`` flags."""

import json

from repro.cli import build_parser, main


class TestParser:
    def test_profile_subcommand_exists(self):
        args = build_parser().parse_args(["profile", "triad"])
        assert args.command == "profile"
        assert args.n == 4096  # size is optional

    def test_profile_accepts_outputs(self):
        args = build_parser().parse_args(
            ["profile", "triad", "512", "--trace-out", "t.json",
             "--metrics-out", "m.prom", "--machine", "snb"]
        )
        assert args.trace_out == "t.json"
        assert args.metrics_out == "m.prom"


class TestProfileCommand:
    def test_profile_prints_phase_table(self, capsys):
        code = main(["profile", "triad", "512", "--machine", "tiny",
                     "--scale", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "W counted" in out
        assert "phase" in out
        assert "dominant bound" in out
        assert "bound attribution" in out

    def test_profile_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace_file = tmp_path / "t.json"
        code = main(["profile", "triad", "512", "--machine", "tiny",
                     "--scale", "1", "--trace-out", str(trace_file)])
        assert code == 0
        doc = json.loads(trace_file.read_text())
        assert "traceEvents" in doc
        phases = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert phases, "expected at least one phase event"
        assert all("ts" in e and "dur" in e for e in phases)

    def test_profile_writes_prometheus_metrics(self, tmp_path, capsys):
        metrics_file = tmp_path / "m.prom"
        code = main(["profile", "triad", "512", "--machine", "tiny",
                     "--scale", "1", "--metrics-out", str(metrics_file)])
        assert code == 0
        text = metrics_file.read_text()
        assert "# TYPE repro_cycles_total counter" in text
        assert "repro_dram_lines_total" in text

    def test_profile_json(self, capsys):
        code = main(["profile", "triad", "512", "--machine", "tiny",
                     "--scale", "1", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kernel"] == "triad"
        assert doc["trace"]["phase_count"] >= 1


class TestJsonFlags:
    def test_measure_json(self, capsys):
        code = main(["measure", "daxpy", "1024", "--machine", "tiny",
                     "--scale", "1", "--reps", "1", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kernel"] == "daxpy"
        assert doc["traffic_bytes"] >= 0
        assert doc["summaries"]["runtime"]["count"] == 1

    def test_roofline_json(self, capsys):
        code = main(["roofline", "--machine", "tiny", "--scale", "1",
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert "model" in doc

    def test_snb_alias_resolves(self):
        from repro.machine.presets import make_machine
        assert make_machine("snb", scale=0.125).spec.name.startswith("snb-ep")
