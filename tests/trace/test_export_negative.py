"""Exporter negative paths: malformed events and non-finite metrics.

The exporters sit on the CI/artifact boundary — a malformed event or a
NaN metric must degrade to well-formed output (or a clear error), not
to a silently corrupt trace file that Perfetto rejects hours later.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.trace.events import CACHE, MARK, PHASE, TraceEvent
from repro.trace.export import to_chrome_trace, to_jsonl, to_prometheus


def test_chrome_trace_ignores_unknown_event_kinds():
    events = [
        TraceEvent("no-such-kind", "mystery", ts=0.0),
        TraceEvent(PHASE, "loop", ts=0.0, core=0, dur=10.0),
    ]
    doc = to_chrome_trace(events)
    names = [e.get("name") for e in doc["traceEvents"]]
    assert "loop" in names and "mystery" not in names


def test_chrome_trace_skips_non_numeric_counter_args():
    events = [
        TraceEvent(CACHE, "port0", ts=1.0, core=0,
                   args={"l1_hits": 3, "note": "not-a-number"}),
    ]
    doc = to_chrome_trace(events)
    counter = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counter and counter[0]["args"] == {"l1_hits": 3}
    json.dumps(doc)  # must stay serialisable


def test_chrome_trace_empty_stream_is_valid_document():
    doc = to_chrome_trace([])
    assert doc["traceEvents"][0]["name"] == "process_name"
    json.dumps(doc)


def test_jsonl_round_trips_every_event_field():
    events = [TraceEvent(MARK, "m", ts=2.5, core=1, args={"k": 7})]
    line = json.loads(to_jsonl(events))
    assert line == {"kind": "mark", "name": "m", "ts": 2.5,
                    "core": 1, "dur": 0.0, "args": {"k": 7}}


def test_jsonl_non_finite_values_stay_strict_json():
    # bare `NaN`/`Infinity` are not JSON; the exporter must spell them
    # as strings so a strict parser still reads every line
    events = [TraceEvent(MARK, "bad", ts=float("nan"),
                         args={"rate": float("inf")})]
    line = json.loads(to_jsonl(events), parse_constant=_reject_constant)
    assert line["ts"] == "nan"
    assert line["args"]["rate"] == "inf"


def _reject_constant(value):
    raise ValueError(f"non-standard JSON constant: {value}")


def test_prometheus_renders_non_finite_metrics_as_valid_text():
    # Prometheus text format allows NaN/+Inf spellings; what matters
    # is that the renderer does not crash and every line stays
    # `name{labels} value`-shaped
    summary = {
        "phase_count": float("nan"),
        "total_cycles": float("inf"),
    }
    text = to_prometheus(summary)
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        name, _, value = line.rpartition(" ")
        assert name
        float(value)  # nan/inf parse; garbage does not


def test_prometheus_empty_summary_stays_well_formed():
    # no crash, and every sample line parses as `name{labels} value`
    for line in to_prometheus({}).splitlines():
        if line and not line.startswith("#"):
            name, _, value = line.rpartition(" ")
            assert name.startswith("repro_")
            float(value)
