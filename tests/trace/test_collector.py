"""Collector summarisation: phase records, marks, derived metrics."""

from repro.trace import MARK, PHASE, TraceCollector, TraceEvent


def phase_event(name="loop:j", ts=0.0, dur=100.0, core=0, dominant="dram_bandwidth",
                exposed=20.0, l2_hits=0, dram_reads=8, mlp=4.0, dram_bpc=4.0,
                reissue_slots=0, reissue_flops=0):
    return TraceEvent(PHASE, name, ts, core=core, dur=dur, args={
        "trips": 16,
        "dominant": dominant,
        "bounds": {"dram_bandwidth": dur - exposed, "exposed_latency": exposed},
        "batch": {"l1_hits": 4, "l2_hits": l2_hits, "l3_hits": 0,
                  "dram_reads": dram_reads, "writebacks": 2,
                  "hw_prefetch_dram_reads": 1, "nt_lines": 0},
        "dram_bpc": dram_bpc,
        "mlp": mlp,
        "reissue_slots": reissue_slots,
        "reissue_flops": reissue_flops,
    })


class TestPhaseRecords:
    def test_phase_unpacked(self):
        col = TraceCollector()
        col.emit(phase_event())
        (record,) = col.phases
        assert record.name == "loop:j"
        assert record.cycles == 100.0
        assert record.dominant == "dram_bandwidth"
        assert record.trips == 16

    def test_derived_bandwidth_and_mlp(self):
        col = TraceCollector()
        col.emit(phase_event())
        derived = col.phases[0].derived
        # (8 demand + 2 wb + 1 prefetch) lines * 64B / 100 cycles
        assert abs(derived["achieved_dram_bpc"] - 11 * 64 / 100.0) < 1e-9
        assert abs(derived["dram_utilization"]
                   - derived["achieved_dram_bpc"] / 4.0) < 1e-9
        assert abs(derived["exposed_fraction"] - 0.2) < 1e-9
        # exposed * mlp / cycles = average outstanding misses
        assert abs(derived["avg_outstanding_misses"] - 0.8) < 1e-9


class TestMarks:
    def test_marks_scope_the_summary(self):
        col = TraceCollector()
        col.emit(phase_event(name="setup", dur=1000.0))
        col.emit(TraceEvent(MARK, "measured:begin", 1000.0))
        col.emit(phase_event(name="kernel", ts=1000.0, dur=100.0))
        col.emit(TraceEvent(MARK, "measured:end", 1100.0))
        col.emit(phase_event(name="teardown", ts=1100.0, dur=500.0))
        measured = col.measured_phases()
        assert [p.name for p in measured] == ["kernel"]
        assert col.summary()["total_cycles"] == 100.0

    def test_without_marks_every_phase_counts(self):
        col = TraceCollector()
        col.emit(phase_event(dur=100.0))
        col.emit(phase_event(dur=200.0, ts=100.0))
        assert col.summary()["total_cycles"] == 300.0


class TestSummary:
    def test_bound_cycles_exclude_exposed_latency(self):
        col = TraceCollector()
        col.emit(phase_event(dur=100.0, exposed=20.0))
        assert col.dominant_cycles() == {"dram_bandwidth": 80.0}

    def test_reissue_totals(self):
        col = TraceCollector()
        col.emit(phase_event(reissue_slots=3, reissue_flops=24))
        col.emit(phase_event(ts=100.0, reissue_slots=2, reissue_flops=16))
        summary = col.summary()
        assert summary["reissue"] == {"slots": 5, "overcounted_flops": 40}

    def test_dram_totals(self):
        col = TraceCollector()
        col.emit(phase_event())
        dram = col.summary()["dram"]
        assert dram["read_lines"] == 9    # 8 demand + 1 prefetch
        assert dram["write_lines"] == 2   # writebacks
        assert dram["bytes"] == 11 * 64

    def test_phase_table_renders(self):
        col = TraceCollector()
        col.emit(phase_event())
        table = col.phase_table()
        assert "loop:j" in table
        assert "dram_bandwidth" in table

    def test_bound_attribution_renders(self):
        col = TraceCollector()
        col.emit(phase_event())
        text = col.bound_attribution()
        assert "dram_bandwidth" in text
        assert "100%" in text

    def test_keep_events_false_drops_raw_stream(self):
        col = TraceCollector(keep_events=False)
        col.emit(phase_event())
        assert col.events == []
        assert len(col.phases) == 1
