"""Timeline misuse must fail with clear ReproErrors, not tracebacks."""

import pytest

from repro.cli import main
from repro.errors import ReproError, TimelineError
from repro.trace import PHASE, TimelineConfig, TimelineSampler, TraceEvent


def _phase(ts, dur):
    return TraceEvent(PHASE, "loop:x", ts, core=0, dur=dur, args={
        "trips": 1, "dominant": "fp_issue", "bounds": {}, "batch": {},
        "dram_bpc": 0.0, "mlp": 1.0, "reissue_slots": 0,
        "reissue_flops": 0, "instructions": 1, "flops": 0,
    })


class TestSamplerErrors:
    def test_empty_trace_raises(self):
        sampler = TimelineSampler(config=TimelineConfig(100))
        with pytest.raises(TimelineError, match="no phase events"):
            sampler.timeline()

    def test_window_wider_than_span_raises(self):
        sampler = TimelineSampler(config=TimelineConfig(1e9))
        sampler.emit(_phase(0, 100))
        with pytest.raises(TimelineError, match="exceeds the measured"):
            sampler.timeline()

    def test_zero_span_raises(self):
        sampler = TimelineSampler(config=TimelineConfig(10))
        sampler.emit(_phase(50, 0))
        with pytest.raises(TimelineError, match="span is zero"):
            sampler.timeline()

    def test_unknown_series_raises(self):
        sampler = TimelineSampler(config=TimelineConfig(50))
        sampler.emit(_phase(0, 100))
        with pytest.raises(TimelineError, match="unknown timeline series"):
            sampler.timeline().series("nope")

    def test_timeline_error_is_repro_error(self):
        assert issubclass(TimelineError, ReproError)


class TestCliErrors:
    def test_zero_window_exits_2_without_traceback(self, capsys):
        code = main(["timeline", "--kernel", "daxpy", "--machine", "tiny",
                     "--scale", "1", "--window", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_negative_window_exits_2(self, capsys):
        code = main(["timeline", "--kernel", "daxpy", "--machine", "tiny",
                     "--scale", "1", "--window", "-5"])
        assert code == 2
        assert "positive" in capsys.readouterr().err

    def test_window_larger_than_run_exits_2(self, capsys, tmp_path):
        code = main(["timeline", "--kernel", "daxpy", "--machine", "tiny",
                     "--scale", "1", "--n", "512", "--window", "1e12",
                     "--out-dir", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "exceeds the measured" in err
        assert "Traceback" not in err
        # failed validation must not leave partial artifacts behind
        assert list(tmp_path.iterdir()) == []

    def test_unknown_kernel_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["timeline", "--kernel", "not-a-kernel"])
