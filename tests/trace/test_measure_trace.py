"""Tracing composed with the measurement methodology.

The critical regression: attaching a trace collector must not change
the measured W/Q/T by a single bit — the collector only observes.
"""

import json

from repro.kernels import make_kernel
from repro.machine.presets import tiny_test_machine
from repro.measure.runner import measure_kernel
from repro.trace import MARK, TraceCollector, measurement_to_dict


def measure(trace=None, reps=2):
    machine = tiny_test_machine()
    return measure_kernel(machine, make_kernel("triad"), 512,
                          protocol="cold", reps=reps, trace=trace)


class TestTracedMeasurement:
    def test_traced_wqt_identical_to_untraced(self):
        traced = measure(trace=True)
        plain = measure()
        assert traced.work_flops == plain.work_flops
        assert traced.traffic_bytes == plain.traffic_bytes
        assert traced.llc_bytes == plain.llc_bytes
        assert traced.runtime_seconds == plain.runtime_seconds
        assert traced.work_summary == plain.work_summary
        assert traced.traffic_summary == plain.traffic_summary
        assert traced.runtime_summary == plain.runtime_summary

    def test_trace_attached_to_measurement(self):
        m = measure(trace=True)
        assert isinstance(m.trace, TraceCollector)
        assert len(m.trace.events) > 0
        assert m.trace.machine_name == "tiny"

    def test_untraced_measurement_has_no_trace(self):
        assert measure().trace is None

    def test_marks_bracket_the_measured_kernel(self):
        m = measure(trace=True)
        marks = [e.name for e in m.trace.events if e.kind == MARK]
        assert marks.count("measured:begin") == 1
        assert marks.count("measured:end") == 1
        # the measured region excludes init/protocol phases
        assert len(m.trace.measured_phases()) < len(m.trace.phases)

    def test_existing_collector_is_reused(self):
        collector = TraceCollector()
        m = measure(trace=collector)
        assert m.trace is collector
        assert len(collector.events) > 0

    def test_bus_detached_after_measurement(self):
        machine = tiny_test_machine()
        measure_kernel(machine, make_kernel("triad"), 512, reps=1,
                       trace=True)
        assert not machine.trace.enabled

    def test_summary_reflects_kernel_traffic(self):
        m = measure(trace=True)
        summary = m.trace.summary()
        assert summary["phase_count"] >= 1
        assert summary["dram"]["bytes"] > 0
        assert summary["dominant_bound"] is not None

    def test_measurement_to_dict_embeds_trace(self):
        m = measure(trace=True)
        doc = measurement_to_dict(m)
        json.dumps(doc)  # JSON-ready
        assert doc["kernel"] == "triad"
        assert doc["trace"]["phase_count"] >= 1
        assert measurement_to_dict(measure()).get("trace") is None
