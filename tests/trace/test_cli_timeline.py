"""CLI surface of ``repro timeline`` and the measure_kernel config path."""

import json
import os

from repro.cli import build_parser, main
from repro.machine.presets import tiny_test_machine
from repro.kernels.registry import make_kernel
from repro.measure.runner import measure_kernel
from repro.trace import TimelineConfig, TimelineSampler, measurement_to_dict


class TestParser:
    def test_timeline_subcommand_defaults(self):
        args = build_parser().parse_args(["timeline"])
        assert args.command == "timeline"
        assert args.window == 10_000.0
        assert args.out_dir == os.path.join("artifacts", "timeline")

    def test_kernel_aliases_accepted(self):
        args = build_parser().parse_args(["timeline", "--kernel", "dgemm"])
        assert args.kernel == "dgemm"


class TestTimelineCommand:
    ARGS = ["timeline", "--kernel", "daxpy", "--machine", "tiny",
            "--scale", "1", "--n", "4096", "--window", "2000"]

    def test_writes_all_artifacts_by_default(self, tmp_path, capsys):
        code = main(self.ARGS + ["--out-dir", str(tmp_path)])
        assert code == 0
        stems = sorted(p.name for p in tmp_path.iterdir())
        assert any(s.endswith(".svg") for s in stems)
        assert any(s.endswith(".csv") for s in stems)
        assert any(s.endswith(".trace.json") for s in stems)
        assert any(s.endswith(".trajectory.csv") for s in stems)
        out = capsys.readouterr().out
        assert "window" in out
        assert "trajectory" in out  # ascii breadcrumb legend

    def test_artifact_selection_flags(self, tmp_path, capsys):
        code = main(self.ARGS + ["--out-dir", str(tmp_path), "--csv"])
        assert code == 0
        names = [p.name for p in tmp_path.iterdir()]
        assert all(not n.endswith(".svg") for n in names)
        assert any(n.endswith(".csv") for n in names)

    def test_svg_contains_trajectory_overlay(self, tmp_path, capsys):
        code = main(self.ARGS + ["--out-dir", str(tmp_path), "--svg"])
        assert code == 0
        svg_file = next(p for p in tmp_path.iterdir()
                        if p.name.endswith(".svg"))
        svg = svg_file.read_text()
        assert "trajectory:" in svg
        assert 'stroke-width="1.8"' in svg

    def test_chrome_trace_has_timeline_tracks(self, tmp_path, capsys):
        code = main(self.ARGS + ["--out-dir", str(tmp_path), "--chrome"])
        assert code == 0
        trace_file = next(p for p in tmp_path.iterdir()
                          if p.name.endswith(".trace.json"))
        doc = json.loads(trace_file.read_text())
        tracks = {e["name"] for e in doc["traceEvents"]
                  if e["ph"] == "C"}
        assert any(t.startswith("timeline.") for t in tracks)

    def test_json_output(self, tmp_path, capsys):
        code = main(self.ARGS + ["--out-dir", str(tmp_path), "--csv",
                                 "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["measurement"]["kernel"] == "daxpy"
        assert doc["timeline"]["window_cycles"] == 2000.0
        assert doc["trajectory"]["points"]
        assert doc["artifacts"]["csv"]

    def test_dgemm_alias_resolves_to_tiled(self, tmp_path, capsys):
        code = main(["timeline", "--kernel", "dgemm", "--machine", "tiny",
                     "--scale", "1", "--n", "32", "--window", "500",
                     "--out-dir", str(tmp_path), "--csv"])
        assert code == 0
        names = [p.name for p in tmp_path.iterdir()]
        assert any(n.startswith("dgemm-tiled_") for n in names)


class TestMeasureKernelTimelineConfig:
    def test_config_builds_a_sampler(self):
        machine = tiny_test_machine()
        m = measure_kernel(machine, make_kernel("daxpy"), 2048,
                           protocol="cold", reps=1,
                           trace=TimelineConfig(1000.0))
        assert isinstance(m.trace, TimelineSampler)
        timeline = m.trace.timeline()
        assert len(timeline) > 1
        assert timeline.totals()["flops"] == m.true_flops

    def test_measurement_json_embeds_timeline_summary(self):
        machine = tiny_test_machine()
        m = measure_kernel(machine, make_kernel("daxpy"), 2048,
                           protocol="cold", reps=1,
                           trace=TimelineConfig(1000.0))
        doc = measurement_to_dict(m)
        assert doc["trace"]["kind"] == "timeline"
        assert doc["trace"]["window_count"] == len(m.trace.timeline())
