"""Windowed timeline sampler: binning, derivation, trajectory, export."""

import json

import pytest

from repro.errors import TimelineError
from repro.roofline import ComputeCeiling, MemoryCeiling, RooflineModel
from repro.roofline.plot_ascii import ascii_plot
from repro.roofline.plot_svg import svg_plot
from repro.trace import (
    MARK,
    PHASE,
    RooflineTrajectory,
    TimelineConfig,
    TimelineSampler,
    TraceEvent,
    to_chrome_trace,
)
from repro.trace.timeline import _split_counter


def phase(ts, dur, batch=None, instructions=0, flops=0, core=0,
          reissue_flops=0, reissue_slots=0, name="loop:x"):
    return TraceEvent(PHASE, name, ts, core=core, dur=dur, args={
        "trips": 1, "dominant": "dram_bandwidth", "bounds": {},
        "batch": batch or {}, "dram_bpc": 4.0, "mlp": 8.0,
        "reissue_slots": reissue_slots, "reissue_flops": reissue_flops,
        "instructions": instructions, "flops": flops,
    })


def sample(events, window, **kwargs):
    sampler = TimelineSampler(config=TimelineConfig(window, **kwargs))
    for event in events:
        sampler.emit(event)
    return sampler


class TestConfig:
    def test_rejects_zero_window(self):
        with pytest.raises(TimelineError):
            TimelineConfig(0)

    def test_rejects_negative_window(self):
        with pytest.raises(TimelineError):
            TimelineConfig(-10.0)

    def test_rejects_non_finite_window(self):
        with pytest.raises(TimelineError):
            TimelineConfig(float("inf"))
        with pytest.raises(TimelineError):
            TimelineConfig(float("nan"))

    def test_accepts_integer_width(self):
        assert TimelineConfig(100).window_cycles == 100


class TestSplitCounter:
    def test_parts_always_sum_to_total(self):
        for total in (1, 2, 7, 63, 1000, 12345):
            for fractions in ([0.5, 0.5], [0.1, 0.2, 0.7],
                              [1 / 3, 1 / 3, 1 / 3], [0.999, 0.001],
                              [0.2] * 5):
                parts = _split_counter(total, fractions)
                assert sum(parts) == total
                assert all(p >= 0 for p in parts)

    def test_split_is_proportional(self):
        parts = _split_counter(100, [0.25, 0.75])
        assert parts == [25, 75]


class TestBinning:
    def test_window_count_and_bounds(self):
        tl = sample([phase(0, 100, instructions=10)], 30).timeline()
        # span 100, window 30 -> 4 windows, last partial [90, 100)
        assert len(tl) == 4
        assert tl.windows[0].start == 0 and tl.windows[0].end == 30
        assert tl.windows[-1].start == 90 and tl.windows[-1].end == 100
        assert tl.windows[-1].width == pytest.approx(10)

    def test_straddling_event_counters_reconcile_exactly(self):
        events = [phase(0, 100, batch={"dram_reads": 7, "accesses": 13},
                        instructions=997, flops=1001)]
        tl = sample(events, 30).timeline()
        totals = tl.totals()
        assert totals["dram_reads"] == 7
        assert totals["accesses"] == 13
        assert totals["instructions"] == 997
        assert totals["flops"] == 1001

    def test_straddling_event_split_is_proportional(self):
        tl = sample([phase(0, 100, instructions=100)], 25).timeline()
        assert [w.counters["instructions"] for w in tl.windows] == [25] * 4

    def test_busy_cycles_track_overlap(self):
        tl = sample([phase(10, 40, instructions=4)], 25).timeline()
        # phase [10, 50) over windows [10, 35) and [35, 50)
        assert tl.windows[0].busy_cycles == pytest.approx(25)
        assert tl.windows[1].busy_cycles == pytest.approx(15)

    def test_zero_duration_event_lands_in_its_window(self):
        events = [phase(0, 90, instructions=9),
                  phase(65, 0, batch={"flushes": 3})]
        tl = sample(events, 30).timeline()
        assert tl.windows[2].counters["flushes"] == 3
        assert tl.totals()["flushes"] == 3

    def test_multiple_events_accumulate(self):
        events = [phase(0, 30, instructions=3),
                  phase(30, 30, instructions=5),
                  phase(60, 30, instructions=7)]
        tl = sample(events, 45).timeline()
        assert len(tl) == 2
        assert tl.totals()["instructions"] == 15

    def test_counted_flops_include_reissue(self):
        events = [phase(0, 60, flops=100, reissue_flops=40,
                        reissue_slots=5)]
        totals = sample(events, 30).timeline().totals()
        assert totals["flops"] == 100
        assert totals["counted_flops"] == 140
        assert totals["reissue_slots"] == 5

    def test_exact_multiple_span_has_no_empty_tail_window(self):
        tl = sample([phase(0, 90, instructions=9)], 30).timeline()
        assert len(tl) == 3
        assert tl.windows[-1].end == 90


class TestMeasuredRegion:
    def test_marks_scope_the_timeline(self):
        events = [
            phase(0, 50, instructions=1, name="setup"),
            TraceEvent(MARK, "measured:begin", 50.0),
            phase(50, 100, instructions=42),
            TraceEvent(MARK, "measured:end", 150.0),
            phase(150, 50, instructions=1, name="teardown"),
        ]
        tl = sample(events, 25).timeline()
        assert tl.t0 == 50 and tl.t_end == 150
        assert tl.totals()["instructions"] == 42

    def test_no_marks_means_everything_counts(self):
        events = [phase(0, 50, instructions=1),
                  phase(50, 50, instructions=2)]
        tl = sample(events, 20).timeline()
        assert tl.totals()["instructions"] == 3

    def test_measured_only_false_keeps_all(self):
        events = [
            phase(0, 50, instructions=7, name="setup"),
            TraceEvent(MARK, "measured:begin", 50.0),
            phase(50, 50, instructions=2),
            TraceEvent(MARK, "measured:end", 100.0),
        ]
        tl = sample(events, 25, measured_only=False).timeline()
        assert tl.totals()["instructions"] == 9


class TestDerived:
    def test_dram_bandwidth_uses_line_bytes(self):
        events = [phase(0, 64, batch={"dram_reads": 4, "writebacks": 2})]
        sampler = sample(events, 32)
        tl = sampler.timeline()
        w = tl.windows[0]
        # 2 read lines x 64B over 32 cycles
        assert w.derived["dram_read_bpc"] == pytest.approx(2 * 64 / 32)
        assert w.derived["dram_write_bpc"] == pytest.approx(1 * 64 / 32)

    def test_hit_rates_none_without_denominator(self):
        events = [phase(0, 60, instructions=6)]
        w = sample(events, 30).timeline().windows[0]
        assert w.derived["l1_hit_rate"] is None
        assert w.derived["l2_hit_rate"] is None
        assert w.derived["prefetch_accuracy"] is None

    def test_hit_rates_clamped_to_one(self):
        # rounding can split hits/misses inconsistently; rate must not
        # exceed 100%
        events = [phase(0, 60, batch={"accesses": 10, "l1_hits": 10})]
        w = sample(events, 30).timeline().windows[0]
        assert w.derived["l1_hit_rate"] == 1.0

    def test_intensity_floors_traffic_at_one_line(self):
        events = [phase(0, 60, flops=640)]  # zero DRAM traffic
        w = sample(events, 30).timeline().windows[0]
        assert w.derived["intensity"] == pytest.approx(
            w.counters["flops"] / 64.0)

    def test_ipc_and_flops_per_cycle(self):
        events = [phase(0, 50, instructions=100, flops=200)]
        w = sample(events, 25).timeline().windows[0]
        assert w.derived["ipc"] == pytest.approx(2.0)
        assert w.derived["flops_per_cycle"] == pytest.approx(4.0)


class TestSerialization:
    EVENTS = [phase(0, 100, batch={"dram_reads": 6, "accesses": 20,
                                   "l1_hits": 14},
                    instructions=50, flops=80)]

    def test_csv_has_header_and_one_row_per_window(self):
        tl = sample(self.EVENTS, 25).timeline()
        lines = tl.to_csv().strip().splitlines()
        assert lines[0].startswith("window,start_cycle,end_cycle")
        assert "intensity" in lines[0]
        assert len(lines) == 1 + len(tl)

    def test_json_doc_roundtrips(self):
        tl = sample(self.EVENTS, 25).timeline()
        doc = json.loads(json.dumps(tl.to_json_doc()))
        assert doc["window_count"] == len(tl)
        assert doc["totals"]["instructions"] == 50
        assert len(doc["windows"]) == len(tl)

    def test_window_table_renders(self):
        text = sample(self.EVENTS, 25).timeline().window_table()
        assert "win" in text and "IPC" in text

    def test_summary_is_json_ready(self):
        summary = sample(self.EVENTS, 25).timeline().summary()
        json.dumps(summary)
        assert summary["kind"] == "timeline"
        assert summary["dram"]["read_lines"] == 6


class TestTrajectory:
    def make_timeline(self):
        sampler = TimelineSampler(config=TimelineConfig(25))
        sampler.frequency_hz = 1e9
        for event in [
            phase(0, 25, flops=100, batch={"dram_reads": 10}),
            phase(25, 25, flops=0, batch={"dram_reads": 5}),
            phase(50, 25, flops=400, batch={"dram_reads": 1}),
        ]:
            sampler.emit(event)
        return sampler.timeline()

    def test_zero_flop_windows_are_skipped(self):
        traj = RooflineTrajectory.from_timeline(self.make_timeline())
        assert [p.index for p in traj.points] == [0, 2]

    def test_coordinates(self):
        traj = RooflineTrajectory.from_timeline(self.make_timeline())
        first = traj.points[0]
        assert first.intensity == pytest.approx(100 / (10 * 64))
        assert first.performance == pytest.approx(100 / 25 * 1e9)

    def test_needs_frequency(self):
        sampler = sample([phase(0, 50, flops=10)], 25)
        with pytest.raises(TimelineError):
            RooflineTrajectory.from_timeline(sampler.timeline())

    def test_csv(self):
        traj = RooflineTrajectory.from_timeline(self.make_timeline())
        lines = traj.to_csv().strip().splitlines()
        assert lines[0].startswith("window,start_cycle")
        assert len(lines) == 1 + len(traj)


def tiny_model():
    return RooflineModel(
        "m",
        [ComputeCeiling("scalar", 2.7e9), ComputeCeiling("avx", 21.6e9)],
        [MemoryCeiling("DRAM", 11e9)],
    )


def tiny_trajectory(n=12):
    sampler = TimelineSampler(config=TimelineConfig(10))
    sampler.frequency_hz = 1e9
    for k in range(n):
        sampler.emit(phase(k * 10, 10, flops=100 + 10 * k,
                           batch={"dram_reads": max(10 - k, 1)}))
    return RooflineTrajectory.from_timeline(sampler.timeline(),
                                            label="walk")


class TestPlotOverlays:
    def test_svg_polyline_markers_and_legend(self):
        svg = svg_plot(tiny_model(), timeline=tiny_trajectory())
        assert 'stroke-width="1.8"' in svg        # gradient segments
        assert 'stroke="white"' in svg            # start/end markers
        assert "trajectory: walk" in svg

    def test_svg_single_point_trajectory(self):
        svg = svg_plot(tiny_model(), timeline=tiny_trajectory(n=1))
        assert "trajectory: walk" in svg

    def test_svg_without_timeline_unchanged(self):
        assert "trajectory" not in svg_plot(tiny_model())

    def test_ascii_breadcrumbs_and_legend(self):
        text = ascii_plot(tiny_model(), timeline=tiny_trajectory())
        assert "trajectory: walk" in text
        # nine sampled breadcrumbs at most, numbered from 1
        assert "1.." in text
        assert "9" in text.split("trajectory")[0]

    def test_ascii_few_points(self):
        text = ascii_plot(tiny_model(), timeline=tiny_trajectory(n=3))
        assert "1..3 trajectory" in text


class TestChromeTimelineTracks:
    def test_counter_tracks_and_metadata(self):
        sampler = sample([phase(0, 100, instructions=50, flops=80,
                                batch={"accesses": 20, "l1_hits": 14,
                                       "dram_reads": 6})], 25)
        tl = sampler.timeline()
        doc = to_chrome_trace([], frequency_hz=1e9, timeline=tl)
        events = doc["traceEvents"]
        tracks = {e["name"] for e in events if e["ph"] == "C"}
        assert "timeline.dram_bw_bpc" in tracks
        assert "timeline.ipc" in tracks
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "thread_name"
                   and e["args"]["name"] == "timeline" for e in meta)
        assert any(e["name"] == "thread_sort_index" for e in meta)
        json.dumps(doc)

    def test_closing_sample_at_t_end(self):
        tl = sample([phase(0, 100, instructions=10)], 25).timeline()
        doc = to_chrome_trace([], frequency_hz=1e9, timeline=tl)
        ipc = [e for e in doc["traceEvents"]
               if e["ph"] == "C" and e["name"] == "timeline.ipc"]
        # one sample per window plus the closing sample
        assert len(ipc) == len(tl) + 1
        assert ipc[-1]["ts"] == pytest.approx(
            tl.t_end / 1e9 * 1e6)

    def test_machine_scope_events_get_their_own_track(self):
        events = [TraceEvent(MARK, "measured:begin", 0.0)]
        doc = to_chrome_trace(events, frequency_hz=1e9)
        mark = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert mark["tid"] == 10_000
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["args"].get("name") == "machine" for e in meta)

    def test_core_events_keep_core_tid(self):
        doc = to_chrome_trace([phase(0, 10, core=1)], frequency_hz=1e9)
        x = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert x["tid"] == 1
