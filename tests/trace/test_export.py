"""Exporter formats: Chrome trace-event JSON, Prometheus text, JSONL."""

import json

from repro.trace import (
    CACHE,
    DRAM,
    MARK,
    PHASE,
    TraceCollector,
    TraceEvent,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)

EVENTS = [
    TraceEvent(PHASE, "loop:j", 0.0, core=0, dur=100.0,
               args={"trips": 8, "dominant": "dram_bandwidth",
                     "bounds": {"dram_bandwidth": 90.0,
                                "exposed_latency": 10.0},
                     "batch": {"l1_hits": 3, "dram_reads": 2},
                     "dram_bpc": 4.0, "mlp": 8.0,
                     "reissue_slots": 0, "reissue_flops": 0}),
    TraceEvent(CACHE, "core0", 0.0, core=0,
               args={"l1_hits": 3, "l2_hits": 1, "l3_hits": 0,
                     "l1_evictions": 0, "l2_evictions": 0,
                     "l3_evictions": 0, "tlb_misses": 1,
                     "accesses": 6, "flushes": 0}),
    TraceEvent(DRAM, "node0", 0.0, core=0,
               args={"reads": 2, "writes": 1, "demand_reads": 2,
                     "prefetch_reads": 0, "remote_lines": 0}),
    TraceEvent(CACHE, "core0", 100.0, core=0,
               args={"l1_hits": 5, "l2_hits": 0, "l3_hits": 0,
                     "l1_evictions": 0, "l2_evictions": 0,
                     "l3_evictions": 0, "tlb_misses": 0,
                     "accesses": 5, "flushes": 0}),
    TraceEvent(MARK, "measured:begin", 0.0),
]


class TestChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(EVENTS, frequency_hz=1e9)
        assert set(doc) == {"displayTimeUnit", "traceEvents"}
        json.dumps(doc)  # must be JSON-serialisable

    def test_phase_becomes_complete_event_in_microseconds(self):
        doc = to_chrome_trace(EVENTS, frequency_hz=1e9)
        x = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert x["name"] == "loop:j"
        assert x["tid"] == 0
        # 100 cycles at 1 GHz = 0.1 us
        assert abs(x["dur"] - 0.1) < 1e-12

    def test_counter_tracks_are_cumulative(self):
        doc = to_chrome_trace(EVENTS, frequency_hz=1e9)
        cache = [e for e in doc["traceEvents"]
                 if e["ph"] == "C" and e["name"] == "cache.core0"]
        assert len(cache) == 2
        assert cache[0]["args"]["l1_hits"] == 3
        assert cache[1]["args"]["l1_hits"] == 8  # 3 + 5, running total

    def test_counter_args_are_flat_numbers(self):
        doc = to_chrome_trace(EVENTS, frequency_hz=1e9)
        for e in doc["traceEvents"]:
            if e["ph"] == "C":
                assert all(isinstance(v, (int, float))
                           for v in e["args"].values())

    def test_marks_become_instants(self):
        doc = to_chrome_trace(EVENTS, frequency_hz=1e9)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "measured:begin" for e in instants)

    def test_metadata_names_process_and_threads(self):
        doc = to_chrome_trace(EVENTS, frequency_hz=1e9, machine_name="snb")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "snb" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)


class TestJsonl:
    def test_one_object_per_line_roundtrips(self):
        text = to_jsonl(EVENTS)
        lines = text.splitlines()
        assert len(lines) == len(EVENTS)
        first = json.loads(lines[0])
        assert first["kind"] == PHASE
        assert first["name"] == "loop:j"
        assert first["dur"] == 100.0


class TestPrometheus:
    def make_summary(self):
        col = TraceCollector()
        # feed only the counter/phase events; the trailing mark would
        # otherwise scope the summary to an empty measured region
        for event in EVENTS:
            if event.kind != MARK:
                col.emit(event)
        return col.summary()

    def test_exposition_format(self):
        text = to_prometheus(self.make_summary())
        assert "# HELP repro_phase_count" in text
        assert "# TYPE repro_phase_count gauge" in text
        assert "repro_phase_count 1" in text

    def test_bound_cycles_labelled(self):
        text = to_prometheus(self.make_summary())
        assert 'repro_bound_cycles_total{bound="dram_bandwidth"} 90' in text

    def test_dram_lines_labelled_by_direction(self):
        text = to_prometheus(self.make_summary())
        assert 'repro_dram_lines_total{dir="read"}' in text
        assert 'repro_dram_lines_total{dir="write"}' in text

    def test_custom_prefix(self):
        text = to_prometheus(self.make_summary(), prefix="sim")
        assert "sim_phase_count 1" in text
        assert "repro_" not in text
