"""Bench-compare regression gate over the committed ``BENCH_*.json``.

The repository commits performance baselines — ``BENCH_engine.json``
(two-tier engine speedup, plan-cache hit rate, rep amortization),
``BENCH_timeline.json`` (timeline-sampler overhead),
``BENCH_selfprofile.json`` (span-profiler overhead), and
``BENCH_ert.json`` (ERT-discovered ceiling-hierarchy shape) — but until now
nothing *compared* fresh numbers against them: CI merely uploaded
artifacts for humans to eyeball.  This module is the comparer, and
``repro benchgate`` the CLI that exits nonzero on regression.

Design constraints:

* **Machine-portable checks.**  Absolute wall seconds differ across
  hosts, so every gated metric is a *ratio* measured within one process
  on one host: speedup (reference/fast), cache hit rates, overhead
  factors (instrumented/uninstrumented).  Raw second counts are carried
  in the docs for humans but never gated.
* **Configurable tolerances.**  Each check declares a direction and a
  tolerance; ``--tolerance`` scales all relative tolerances at the CLI.
* **Self-testable.**  :func:`inject_slowdown` applies a synthetic
  host-slowdown factor to a measured doc (fast-engine seconds grow,
  speedups shrink, overhead factors grow); the acceptance test injects
  2x and asserts the gate goes red.

Fresh numbers come either from ``--current FILE`` (a doc produced by
the matching ``benchmarks/bench_*.py`` writer — the CI path) or, with
no ``--current``, by importing and running that writer in-process
(requires running from the repository root, where the ``benchmarks``
package is importable).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ReproError


class BenchGateError(ReproError):
    """Unusable baseline/current doc or unknown bench kind."""


#: committed baseline file per bench kind (repo-root relative)
BASELINES = {
    "s5_engine": "BENCH_engine.json",
    "s3_timeline": "BENCH_timeline.json",
    "s6_selfprofile": "BENCH_selfprofile.json",
    "s7_ert": "BENCH_ert.json",
    "s9_disttrace": "BENCH_disttrace.json",
}

#: bench kind -> module under benchmarks/ whose collect_baseline()
#: regenerates a current doc (used when --current is not given)
COLLECTORS = {
    "s5_engine": "benchmarks.bench_s5_engine",
    "s3_timeline": "benchmarks.bench_s3_timeline",
    "s6_selfprofile": "benchmarks.bench_s6_selfprofile",
    "s7_ert": "benchmarks.bench_s7_ert",
    "s9_disttrace": "benchmarks.bench_s9_disttrace",
}


@dataclass(frozen=True)
class GateCheck:
    """One gated metric.

    ``path`` is a dotted path into the doc; a ``*`` component fans the
    check out over every key at that level.  Directions:

    * ``min_rel`` — current must be >= baseline * (1 - tol)
    * ``max_rel`` — current must be <= baseline * (1 + tol)
    * ``min_abs`` — current must be >= baseline - tol
    * ``max_cap`` — current must be <= tol (an absolute ceiling the
      baseline does not move; tolerance scaling does not apply)
    * ``min_floor`` — current must be >= tol (an absolute floor,
      symmetric to ``max_cap``: the committed baseline neither
      relaxes nor tightens it, and tolerance scaling does not apply)
    """

    path: str
    direction: str
    tol: float


@dataclass
class GateResult:
    """Verdict for one expanded check."""

    metric: str
    baseline: float
    current: float
    limit: float
    direction: str
    ok: bool

    def describe(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        op = ">=" if self.direction.startswith("min") else "<="
        return (f"{mark} {self.metric}: current {self.current:.4g} "
                f"{op} limit {self.limit:.4g} "
                f"(baseline {self.baseline:.4g})")


#: the gate specs.  Ratios only — see the module docstring.
GATES: Dict[str, List[GateCheck]] = {
    "s5_engine": [
        # the fast engine's reason to exist: wall-clock speedup over
        # the reference engine on the committed sweep workloads
        GateCheck("sweeps.*.speedup", "min_rel", 0.35),
        # the symbolic-plan acceptance bound: >= 10x on the dgemm
        # sweep, absolute — a faster committed baseline must not let
        # the engine coast back down toward the old plateau
        GateCheck("sweeps.dgemm.speedup", "min_floor", 10.0),
        # compile-tier amortization: plans must actually be reused ...
        GateCheck("sweeps.*.plan_cache.hit_rate", "min_abs", 0.10),
        # ... and with size-polymorphic structures, near-perfectly:
        # every problem size of a sweep rebinds the same interned
        # plans instead of recompiling
        GateCheck("sweeps.*.plan_cache.hit_rate", "min_floor", 0.95),
        GateCheck("amortization.amortization_factor", "min_rel", 0.50),
    ],
    "s3_timeline": [
        # attach tax of the timeline sampler vs a fully untraced run
        GateCheck("overhead_vs_untraced.sampler", "max_rel", 0.50),
        GateCheck("overhead_vs_untraced.nullsink", "max_rel", 0.50),
    ],
    "s6_selfprofile": [
        # the span-profiler acceptance bound: disabled instrumentation
        # must stay under 5% of the dgemm sweep wall time (absolute
        # ceiling — the baseline value does not relax it)
        GateCheck("disabled.overhead_fraction", "max_cap", 0.05),
        # enabled profiling must stay usable (not orders of magnitude)
        GateCheck("enabled.overhead_factor", "max_rel", 0.75),
    ],
    "s7_ert": [
        # ERT ceilings are simulated (deterministic) quantities, so the
        # hierarchy-shape ratios get a tight band: a drift means the
        # measurement path changed, not the host
        GateCheck("ratios.l1_over_dram", "min_rel", 0.05),
        GateCheck("ratios.l2_over_dram", "min_rel", 0.05),
        GateCheck("ratios.l3_over_dram", "min_rel", 0.05),
        GateCheck("ratios.compute_over_dram_ridge", "min_rel", 0.05),
    ],
    "s9_disttrace": [
        # the distributed-telemetry acceptance bound: the always-on
        # parts (flight-recorder breadcrumbs, fault-hook checks) must
        # stay under 2% of the dgemm sweep wall time with collection
        # off (absolute ceiling — the baseline value does not relax it)
        GateCheck("disabled.overhead_fraction", "max_cap", 0.02),
        # full collection (span capture, metrics delta, event sample,
        # merge) must stay usable on the same sweep
        GateCheck("enabled.overhead_factor", "max_rel", 0.75),
    ],
}


def gate_checks_for(kind: str) -> List[GateCheck]:
    try:
        return GATES[kind]
    except KeyError:
        raise BenchGateError(
            f"no gate spec for bench kind {kind!r} "
            f"(known: {', '.join(sorted(GATES))})"
        ) from None


# ----------------------------------------------------------------------
# doc traversal
# ----------------------------------------------------------------------
def _walk(doc: dict, parts: List[str], prefix: str = ""):
    """Yield ``(dotted_path, value)`` for every expansion of ``parts``."""
    if not parts:
        yield prefix, doc
        return
    head, rest = parts[0], parts[1:]
    if head == "*":
        if not isinstance(doc, dict):
            raise BenchGateError(f"cannot expand '*' at {prefix!r}: "
                                 f"not an object")
        for key in sorted(doc):
            yield from _walk(doc[key], rest,
                             f"{prefix}.{key}" if prefix else key)
    else:
        if not isinstance(doc, dict) or head not in doc:
            raise BenchGateError(f"missing metric path component "
                                 f"{head!r} under {prefix or '<root>'!r}")
        yield from _walk(doc[head], rest,
                         f"{prefix}.{head}" if prefix else head)


def _lookup(doc: dict, dotted: str) -> float:
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise BenchGateError(f"current doc is missing metric "
                                 f"{dotted!r}")
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise BenchGateError(f"metric {dotted!r} is not numeric: {node!r}")
    return float(node)


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def compare_docs(baseline: dict, current: dict,
                 tolerance_scale: float = 1.0) -> List[GateResult]:
    """Run every gate check for the docs' bench kind.

    Both docs must carry the same ``bench`` kind.  ``tolerance_scale``
    multiplies every relative tolerance (``min_rel``/``max_rel``);
    absolute tolerances and ceilings are left alone.
    """
    kind = baseline.get("bench")
    if not kind:
        raise BenchGateError("baseline doc has no 'bench' kind field")
    if current.get("bench") != kind:
        raise BenchGateError(
            f"bench kind mismatch: baseline {kind!r} vs current "
            f"{current.get('bench')!r}"
        )
    results: List[GateResult] = []
    for check in gate_checks_for(kind):
        parts = check.path.split(".")
        for dotted, base_value in _walk(baseline, parts):
            if not isinstance(base_value, (int, float)) \
                    or isinstance(base_value, bool):
                raise BenchGateError(
                    f"baseline metric {dotted!r} is not numeric: "
                    f"{base_value!r}"
                )
            base_value = float(base_value)
            cur_value = _lookup(current, dotted)
            if not math.isfinite(cur_value):
                # a non-finite fresh measurement is always a failure
                # for max-bounded checks and a pass for min-bounded
                # ones only when +Inf
                pass
            direction = check.direction
            if direction == "min_rel":
                limit = base_value * (1.0 - check.tol * tolerance_scale)
                ok = cur_value >= limit
            elif direction == "max_rel":
                limit = base_value * (1.0 + check.tol * tolerance_scale)
                ok = cur_value <= limit
            elif direction == "min_abs":
                limit = base_value - check.tol
                ok = cur_value >= limit
            elif direction == "max_cap":
                limit = check.tol
                ok = cur_value <= limit
            elif direction == "min_floor":
                limit = check.tol
                ok = cur_value >= limit
            else:  # pragma: no cover - specs are static
                raise BenchGateError(f"unknown direction {direction!r}")
            if math.isnan(cur_value):
                ok = False
            results.append(GateResult(
                metric=dotted, baseline=base_value, current=cur_value,
                limit=limit, direction=direction, ok=ok,
            ))
    return results


# ----------------------------------------------------------------------
# slowdown injection (gate self-test)
# ----------------------------------------------------------------------
def inject_slowdown(doc: dict, factor: float) -> dict:
    """A copy of ``doc`` as if the *instrumented/fast side* ran
    ``factor``x slower on the same host.

    Models a regression in the code under test, not a uniformly slower
    machine: fast-engine seconds grow and speedups shrink by
    ``factor``; sampler/profiler overhead factors grow by ``factor``;
    reference-side numbers are untouched.  Used by ``repro benchgate
    --inject-slowdown`` and the acceptance test to prove the gate
    actually fires.
    """
    if factor <= 0:
        raise BenchGateError(f"slowdown factor must be > 0, got {factor}")
    out = json.loads(json.dumps(doc))  # deep copy, JSON-clean
    kind = out.get("bench")
    if kind == "s5_engine":
        for sweep in out.get("sweeps", {}).values():
            sweep["fast_seconds"] = sweep["fast_seconds"] * factor
            sweep["speedup"] = sweep["speedup"] / factor
        amort = out.get("amortization")
        if amort:
            amort["marginal_rep_seconds"] *= factor
            amort["first_measurement_seconds"] *= factor
    elif kind == "s3_timeline":
        over = out.get("overhead_vs_untraced", {})
        for key in over:
            over[key] = over[key] * factor
        runs = out.get("run_seconds", {})
        for key in ("nullsink", "sampler"):
            if key in runs:
                runs[key] *= factor
    elif kind == "s6_selfprofile":
        disabled = out.get("disabled", {})
        if "overhead_fraction" in disabled:
            disabled["overhead_fraction"] *= factor
        if "span_call_ns" in disabled:
            disabled["span_call_ns"] *= factor
        enabled = out.get("enabled", {})
        if "overhead_factor" in enabled:
            enabled["overhead_factor"] *= factor
    elif kind == "s9_disttrace":
        disabled = out.get("disabled", {})
        for key in ("overhead_fraction", "flight_note_ns",
                    "fault_check_ns"):
            if key in disabled:
                disabled[key] *= factor
        enabled = out.get("enabled", {})
        if "overhead_factor" in enabled:
            enabled["overhead_factor"] *= factor
        runs = out.get("run_seconds", {})
        if "telemetry" in runs:
            runs["telemetry"] *= factor
    elif kind == "s7_ert":
        # model a regression in the fast levels of the measurement path:
        # near-level ceilings deflate relative to DRAM, the compute roof
        # sags, discovery wall time grows
        ratios = out.get("ratios", {})
        for key in ratios:
            ratios[key] = ratios[key] / factor
        runs = out.get("run_seconds", {})
        if "discovery" in runs:
            runs["discovery"] *= factor
    else:
        raise BenchGateError(f"cannot inject slowdown into bench kind "
                             f"{kind!r}")
    return out


# ----------------------------------------------------------------------
# measuring / loading current docs
# ----------------------------------------------------------------------
def load_doc(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise BenchGateError(f"cannot read bench doc {path!r}: {exc}") \
            from exc
    except ValueError as exc:
        raise BenchGateError(f"bench doc {path!r} is not valid JSON: "
                             f"{exc}") from exc
    if not isinstance(doc, dict):
        raise BenchGateError(f"bench doc {path!r} is not a JSON object")
    return doc


def measure_current(kind: str, repeats: Optional[int] = None) -> dict:
    """Regenerate fresh numbers by running the bench collector
    in-process (requires the ``benchmarks`` package on ``sys.path``,
    i.e. running from the repository root)."""
    module_name = COLLECTORS.get(kind)
    if module_name is None:
        raise BenchGateError(f"no collector for bench kind {kind!r}")
    try:
        import importlib

        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise BenchGateError(
            f"cannot import {module_name!r} ({exc}); run from the "
            f"repository root, or pass --current with a doc produced "
            f"by the bench script"
        ) from exc
    collect: Callable[..., dict] = module.collect_baseline
    if repeats is None:
        return collect()
    return collect(repeats=repeats)


def run_gate(baseline_path: str, current: Optional[dict] = None,
             current_path: Optional[str] = None,
             tolerance_scale: float = 1.0,
             slowdown: Optional[float] = None,
             repeats: Optional[int] = None) -> List[GateResult]:
    """Load/measure, optionally inject a slowdown, and compare.

    Precedence for the current side: an in-memory ``current`` doc, then
    ``current_path``, then a fresh in-process measurement.
    """
    baseline = load_doc(baseline_path)
    if current is None:
        if current_path is not None:
            current = load_doc(current_path)
        else:
            kind = baseline.get("bench")
            if not kind:
                raise BenchGateError("baseline doc has no 'bench' kind")
            current = measure_current(kind, repeats=repeats)
    if slowdown is not None and slowdown != 1.0:
        current = inject_slowdown(current, slowdown)
    return compare_docs(baseline, current, tolerance_scale)
