"""Host-side observability: the simulator watching itself.

Every other observability layer in this repository (the trace bus, the
windowed timeline profiler) watches the *simulated* machine — cycles,
cache lines, DRAM CAS counts on the machine model's TSC timeline.  This
package watches the *simulator*: where host wall-time goes (compile
tier vs. execute tier vs. cache model vs. sweep executor), what the
long-lived process's counters and latency distributions look like, and
whether the committed performance baselines still hold.

Five pieces:

* :mod:`repro.obs.spans` — a hierarchical span profiler
  (``with SPANS("engine.compile"):``) instrumented through the hot
  layers, near-zero cost when disabled, exporting Chrome-trace flame
  views of host wall-time and a top-N hotspot table;
* :mod:`repro.obs.metrics` — a unified registry of counters, gauges
  and histograms behind one Prometheus/JSON export path (shared
  text-format helpers with :mod:`repro.trace.export`);
* :mod:`repro.obs.remote` — the distributed telemetry plane: trace
  contexts dispatched with each sweep point, worker-side span/metrics/
  event capture, parent-side merge onto per-worker flame tracks, and
  the always-on flight recorder that dumps its ring to
  ``artifacts/flightrec/`` when a point raises or a worker dies;
* :mod:`repro.obs.dashboard` — the ``repro sweep --live`` in-terminal
  dashboard rendered from the metrics registry;
* :mod:`repro.obs.benchgate` — the perf-regression gate diffing
  freshly measured numbers against the committed ``BENCH_*.json``
  baselines.

See ``docs/OBSERVABILITY.md`` for the three-plane model (machine-time
trace bus, host-time span profiler, cross-process distributed plane)
and the metrics catalog.
"""

from .spans import SPANS, SpanProfiler, SpanRecord
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help,
    escape_label_value,
    format_labels,
    format_value,
)
from .remote import (
    FLIGHT,
    FlightRecorder,
    SpanSectionCapture,
    TraceContext,
    build_point_telemetry,
    merge_run_telemetry,
)
from .dashboard import SweepDashboard
from .benchgate import (
    GateResult,
    compare_docs,
    gate_checks_for,
    inject_slowdown,
    run_gate,
)

__all__ = [
    "SPANS",
    "SpanProfiler",
    "SpanRecord",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_help",
    "escape_label_value",
    "format_labels",
    "format_value",
    "FLIGHT",
    "FlightRecorder",
    "SpanSectionCapture",
    "TraceContext",
    "build_point_telemetry",
    "merge_run_telemetry",
    "SweepDashboard",
    "GateResult",
    "compare_docs",
    "gate_checks_for",
    "inject_slowdown",
    "run_gate",
]
