"""Distributed telemetry plane: worker-side capture, parent-side merge.

The sweep executor fans points out to ``ProcessPoolExecutor`` workers,
and before this module everything observed *inside* a worker — spans
from ``SPANS("sweep.point")``, trace-bus events, metrics increments —
died with the worker process.  This module is the transport between
those two worlds:

* :class:`TraceContext` — the picklable per-point context the parent
  attaches to each dispatch (run id, point index, parent span name,
  collection switches).  It rides to the worker as a second argument to
  :func:`repro.sweep.executor.simulate_point`.
* :class:`SpanSectionCapture` — captures the spans a point produces as
  a self-contained *section* (records with section-relative parent
  indices, per-name aggregate deltas, a dropped count).  Two modes:
  **owned** (the profiler was disabled, so the capture enables it and
  restores the exact prior state afterwards — the worker steady state)
  and **inline** (the profiler was already enabled, e.g. under
  ``repro selfprofile``; the section is sliced out without disturbing
  the live record list, and the merge step knows not to absorb it
  twice).
* :func:`build_point_telemetry` / :func:`merge_run_telemetry` — the
  worker-side section builder and the parent-side merge.  The merge
  lands worker spans on per-pid flame tracks with causal flow links
  from the parent's dispatch instant (``time.perf_counter_ns`` is
  CLOCK_MONOTONIC-based on Linux, so worker timestamps are directly
  comparable), folds metrics deltas into the parent registry
  (counters sum, gauges last-write, histograms bucket-merge), and
  produces the compact ``telemetry`` summary that ``repro sweep
  --json`` exposes.
* :class:`FlightRecorder` / :data:`FLIGHT` — the always-on fixed-size
  ring of breadcrumbs every worker keeps, dumped to
  ``artifacts/flightrec/`` with the failing point's repr when a point
  raises (worker-side dump) or a worker dies (parent-side dump naming
  the in-flight points).

Telemetry stays strictly **outside** the content-addressed result
cache: the executor pops the ``"telemetry"`` payload section before
``cache.store``, so serial, parallel and cached runs keep bit-identical
measurement checksums, and cache replays are marked
``replayed-from-cache`` in the summary instead of fabricating worker
sections.
"""

from __future__ import annotations

import json
import os
import signal
import time
import uuid
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from .metrics import REGISTRY, MetricsRegistry
from .spans import SPANS, SpanProfiler

__all__ = [
    "FLIGHT",
    "FlightRecorder",
    "SpanSectionCapture",
    "TraceContext",
    "TELEMETRY_VERSION",
    "build_point_telemetry",
    "maybe_fault",
    "merge_run_telemetry",
    "new_run_id",
]

#: telemetry payload-section schema version
TELEMETRY_VERSION = 1

#: where flight-recorder dumps land unless overridden
FLIGHTREC_DIR_ENV = "REPRO_FLIGHTREC_DIR"
DEFAULT_FLIGHTREC_DIR = os.path.join("artifacts", "flightrec")

#: fault-injection hooks (tests and the CI smoke job): when the value
#: equals the point's ``kernel:n`` label, the worker raises / dies
CRASH_ENV = "REPRO_DISTTRACE_CRASH"
KILL_ENV = "REPRO_DISTTRACE_KILL"

#: per-run cap on trace events sampled back from any one worker point
DEFAULT_EVENT_SAMPLE = 16

#: cap on trace-event sample rows kept in the merged run summary
MERGED_EVENT_SAMPLE = 64


def new_run_id() -> str:
    """Short unique id tying one ``run_plan`` call's telemetry together."""
    return uuid.uuid4().hex[:12]


# ----------------------------------------------------------------------
# context propagation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceContext:
    """Picklable per-point trace context (parent → worker).

    ``collect`` switches span/metrics/event capture; the flight
    recorder and fault hooks are always on regardless (breadcrumbs are
    a handful of dict appends per point).
    """

    run_id: str
    point_index: int
    parent_span: str = "sweep.run"
    collect: bool = True
    event_sample: int = DEFAULT_EVENT_SAMPLE
    flightrec_dir: Optional[str] = None


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class FlightRecorder:
    """Always-on bounded ring of recent breadcrumbs in every process.

    A breadcrumb is one plain dict (monotonic timestamp, kind, detail
    fields); :meth:`note` costs one dict build and one deque append, so
    the recorder stays on even in the telemetry-disabled fast path.
    :meth:`dump` snapshots the ring to ``artifacts/flightrec/`` (or
    ``$REPRO_FLIGHTREC_DIR``) together with the failure reason and the
    failing point's repr — the black box a post-mortem starts from.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.total = 0
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._dumps = 0

    def note(self, kind: str, what: str, **attrs) -> None:
        self.total += 1
        row = {"t_ns": time.perf_counter_ns(), "kind": kind, "what": what}
        if attrs:
            row.update(attrs)
        self._ring.append(row)

    def records(self) -> List[dict]:
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.total = 0

    def __len__(self) -> int:
        return len(self._ring)

    def dump(self, reason: str, point: Optional[str] = None,
             directory: Optional[str] = None, **extra) -> str:
        """Write the ring to disk; returns the dump file path."""
        directory = (directory
                     or os.environ.get(FLIGHTREC_DIR_ENV, "").strip()
                     or DEFAULT_FLIGHTREC_DIR)
        os.makedirs(directory, exist_ok=True)
        self._dumps += 1
        pid = os.getpid()
        path = os.path.join(
            directory,
            f"flight-{int(time.time() * 1e3)}-{pid}-{self._dumps}.json",
        )
        doc = {
            "reason": reason,
            "point": point,
            "pid": pid,
            "recorded": self.total,
            "retained": len(self._ring),
            "records": self.records(),
        }
        if extra:
            doc.update(extra)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, default=str)
            handle.write("\n")
        return path


#: the process-wide flight recorder (workers inherit a fresh one)
FLIGHT = FlightRecorder()


def maybe_fault(label: str) -> None:
    """Test/CI fault-injection hooks, matched on ``kernel:n``.

    ``$REPRO_DISTTRACE_CRASH`` raises inside the worker (exercises the
    worker-side flight dump + :class:`~repro.errors.SweepPointError`
    path); ``$REPRO_DISTTRACE_KILL`` SIGKILLs the worker process
    (exercises the parent-side BrokenProcessPool dump).  Both are
    inert unless the environment value equals ``label`` exactly.
    """
    if os.environ.get(CRASH_ENV, "") == label:
        raise RuntimeError(f"injected crash at point {label} "
                           f"(${CRASH_ENV})")
    if os.environ.get(KILL_ENV, "") == label:
        FLIGHT.note("fault", "injected kill", point=label)
        os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# worker-side span capture
# ----------------------------------------------------------------------
class SpanSectionCapture:
    """Capture the spans produced inside a with-block as a section.

    The section's ``records`` carry parent indices relative to the
    section start (``-1`` for section roots) and depths relative to the
    shallowest captured span, so :meth:`SpanProfiler.absorb_remote` can
    splice them into any host profiler.  ``aggregates`` are the *delta*
    the block added to the per-name tables.

    Owned mode (profiler disabled on entry) enables the profiler for
    the block and restores records/aggregates/dropped/enabled exactly
    afterwards — repeated points in a long-lived pool worker never leak
    state into each other.  Inline mode (already enabled) leaves the
    live profiler untouched and only slices; the section is tagged so
    the merge step skips re-absorbing spans that are already present.
    """

    def __init__(self, profiler: Optional[SpanProfiler] = None) -> None:
        self.profiler = profiler if profiler is not None else SPANS
        self.section: Optional[dict] = None
        self._owned = False
        self._mark = 0
        self._dropped0 = 0
        self._agg0: Dict[str, List[int]] = {}

    def __enter__(self) -> "SpanSectionCapture":
        profiler = self.profiler
        self._owned = not profiler.enabled
        self._mark = len(profiler.records)
        self._dropped0 = profiler.dropped
        self._agg0 = {name: list(agg)
                      for name, agg in profiler._agg.items()}
        if self._owned:
            profiler.enable()
        return self

    def __exit__(self, *_exc) -> bool:
        profiler = self.profiler
        mark = self._mark
        rows = profiler.records[mark:]
        base_depth = min((r.depth for r in rows), default=0)
        records = []
        for record in rows:
            row = {
                "name": record.name,
                "start_ns": record.start_ns,
                "dur_ns": record.dur_ns,
                "depth": record.depth - base_depth,
                "parent": (record.parent - mark
                           if record.parent >= mark else -1),
            }
            if record.attrs:
                row["attrs"] = dict(record.attrs)
            records.append(row)
        aggregates: Dict[str, List[int]] = {}
        for name, agg in profiler._agg.items():
            before = self._agg0.get(name, [0, 0, 0])
            delta = [agg[0] - before[0], agg[1] - before[1],
                     agg[2] - before[2]]
            if any(delta):
                aggregates[name] = delta
        self.section = {
            "mode": "owned" if self._owned else "inline",
            "records": records,
            "aggregates": aggregates,
            "dropped": profiler.dropped - self._dropped0,
        }
        if self._owned:
            del profiler.records[mark:]
            profiler._agg = self._agg0
            profiler.dropped = self._dropped0
            profiler.disable()
        return False


# ----------------------------------------------------------------------
# worker-side section assembly
# ----------------------------------------------------------------------
def build_point_telemetry(ctx: TraceContext, spans: Optional[dict],
                          busy_ns: int, events_total: int,
                          event_sample: List[dict]) -> dict:
    """Assemble the ``telemetry`` payload section for one point.

    The worker-labelled metric families are built in a throwaway
    registry and shipped as a :meth:`MetricsRegistry.to_delta_doc`
    snapshot, so the parent-side merge is the same ``absorb_delta``
    path the tests pin down.
    """
    pid = os.getpid()
    local = MetricsRegistry()
    local.counter(
        "repro_sweep_worker_points_total",
        "Sweep points simulated, by worker process",
        labelnames=("worker",),
    ).inc(worker=pid)
    local.counter(
        "repro_sweep_worker_busy_seconds_total",
        "Wall time spent simulating sweep points, by worker process",
        labelnames=("worker",),
    ).inc(busy_ns / 1e9, worker=pid)
    return {
        "version": TELEMETRY_VERSION,
        "run": ctx.run_id,
        "index": ctx.point_index,
        "worker": {"pid": pid},
        "busy_ns": busy_ns,
        "spans": spans or {"mode": "owned", "records": [],
                           "aggregates": {}, "dropped": 0},
        "metrics": local.to_delta_doc(),
        "events": {"total": events_total, "sample": event_sample},
    }


# ----------------------------------------------------------------------
# parent-side merge
# ----------------------------------------------------------------------
def merge_run_telemetry(run_id: str, sections: List[Optional[dict]],
                        statuses: List[str], labels: List[str],
                        submit_ns: List[Optional[int]],
                        elapsed_seconds: float,
                        profiler: Optional[SpanProfiler] = None,
                        registry: Optional[MetricsRegistry] = None,
                        collected: bool = True) -> dict:
    """Fold per-point telemetry sections into the parent and summarise.

    ``sections``/``statuses``/``labels``/``submit_ns`` are parallel
    arrays in plan order; cache hits have no section and show up as
    ``replayed-from-cache`` rows.  Owned span sections are absorbed
    onto per-pid flame tracks with a causal link from the parent's
    dispatch instant; inline sections (serial run under an
    already-enabled profiler) are counted but not re-absorbed.  Worker
    metric deltas merge into ``registry`` and a
    ``repro_sweep_worker_utilization`` gauge (busy seconds / run wall
    seconds) is set per worker.
    """
    profiler = profiler if profiler is not None else SPANS
    registry = registry if registry is not None else REGISTRY
    workers: Dict[int, dict] = {}
    points: List[dict] = []
    events_total = 0
    event_sample: List[dict] = []

    for idx, section in enumerate(sections):
        status = statuses[idx] if idx < len(statuses) else ""
        row = {"index": idx, "label": labels[idx],
               "status": ("replayed-from-cache" if status == "hit"
                          else "simulated")}
        if section is None:
            points.append(row)
            continue
        pid = int(section.get("worker", {}).get("pid", 0))
        row["worker"] = pid
        points.append(row)
        worker = workers.setdefault(pid, {
            "pid": pid, "points": 0, "busy_seconds": 0.0,
            "spans": 0, "span_records_dropped": 0, "events": 0,
        })
        worker["points"] += 1
        worker["busy_seconds"] += section.get("busy_ns", 0) / 1e9
        spans = section.get("spans") or {}
        if spans.get("mode") == "owned" and pid:
            absorbed = profiler.absorb_remote(
                spans, track=pid, track_name=f"sweep worker {pid}",
                link={"id": f"{run_id}:{idx}",
                      "submit_ns": submit_ns[idx]
                      if idx < len(submit_ns) else None},
            )
            worker["spans"] += absorbed
            worker["span_records_dropped"] += max(
                0, len(spans.get("records") or []) - absorbed)
        else:
            worker["spans"] += len(spans.get("records") or [])
        metrics = section.get("metrics")
        if metrics:
            registry.absorb_delta(metrics)
        events = section.get("events") or {}
        total = int(events.get("total", 0))
        events_total += total
        worker["events"] += total
        budget = MERGED_EVENT_SAMPLE - len(event_sample)
        if budget > 0:
            event_sample.extend(events.get("sample", ())[:budget])

    if elapsed_seconds > 0 and workers:
        utilization = registry.gauge(
            "repro_sweep_worker_utilization",
            "Fraction of the sweep wall time each worker spent busy",
            labelnames=("worker",),
        )
        for pid, worker in workers.items():
            worker["utilization"] = min(
                1.0, worker["busy_seconds"] / elapsed_seconds)
            utilization.set(worker["utilization"], worker=pid)

    cached = sum(1 for row in points
                 if row["status"] == "replayed-from-cache")
    return {
        "version": TELEMETRY_VERSION,
        "run": run_id,
        "collected": collected,
        "workers": [workers[pid] for pid in sorted(workers)],
        "points": points,
        "cached_points": cached,
        "events": {"total": events_total, "sample": event_sample},
    }
