"""Unified metrics registry: counters, gauges, histograms, one export.

Telemetry used to be scattered — :class:`~repro.engine.plan.
PlanCacheStats` lived on each core, sweep-cache hit counts on
:class:`~repro.sweep.executor.SweepStats`, and each CLI glued its own
export together.  The :class:`MetricsRegistry` absorbs them behind one
Prometheus/JSON export path, shared (via the ``escape_*`` /
``format_*`` helpers below) with :func:`repro.trace.export.
to_prometheus`, so every exposition in the repository renders the same
conformant text format.

Format conformance (pinned by ``tests/obs/test_prometheus_format.py``):

* label values escape backslash, double-quote and newline; HELP text
  escapes backslash and newline (the Prometheus text-exposition rules);
* every metric family is preceded by exactly one ``# HELP`` and one
  ``# TYPE`` line;
* histograms emit cumulative ``_bucket`` samples in ascending ``le``
  order ending at ``+Inf``, plus ``_sum`` and ``_count``, and are valid
  (all zeros, no NaN) with zero observations;
* non-finite values render as Prometheus' ``+Inf``/``-Inf``/``NaN``
  spellings, never as Python's ``inf``/``nan``.

The registry is deliberately small and dependency-free — it is not a
Prometheus client library, just enough structure that the sweep
executor, the engine plan cache, and the ``selfprofile`` CLI speak one
metrics language.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "escape_help",
    "escape_label_value",
    "format_labels",
    "format_value",
]

#: default latency buckets (seconds): micro-benchmark floor through
#: multi-minute sweep points
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   30.0, 60.0, 300.0)


# ----------------------------------------------------------------------
# Prometheus text-format helpers (shared with repro.trace.export)
# ----------------------------------------------------------------------
def escape_label_value(value: object) -> str:
    """Escape a label value per the text exposition format."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline only; quotes are
    legal in HELP text)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_labels(labels: Optional[Dict[str, object]]) -> str:
    """``{k="v",...}`` with escaped values; empty string for no labels."""
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in labels.items()
    )
    return "{" + body + "}"


def format_value(value: float) -> str:
    """Render a sample value; non-finite floats use Prometheus
    spellings (``+Inf`` / ``-Inf`` / ``NaN``)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return f"{value:g}"


def _bucket_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else f"{bound:g}"


# ----------------------------------------------------------------------
# metric kinds
# ----------------------------------------------------------------------
class _Metric:
    """Base: a named family of samples keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._samples: Dict[Tuple[str, ...], float] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _label_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    # shared by counter/gauge; histogram overrides
    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        if not self.labelnames and not self._samples:
            # an unlabelled metric always exposes its (zero) sample so
            # absence-of-traffic is visible rather than missing
            return [({}, 0.0)]
        return [
            (self._label_dict(key), value)
            for key, value in sorted(self._samples.items())
        ]

    def to_prometheus(self) -> List[str]:
        lines = [f"# HELP {self.name} {escape_help(self.help)}",
                 f"# TYPE {self.name} {self.kind}"]
        for labels, value in self.samples():
            lines.append(
                f"{self.name}{format_labels(labels)} {format_value(value)}"
            )
        return lines

    def to_json_doc(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "samples": [
                {"labels": labels, "value": value}
                for labels, value in self.samples()
            ],
        }


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up "
                             f"(got {amount})")
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._samples.get(self._key(labels), 0.0)


class Gauge(_Metric):
    """A value that goes up and down (queue depth, hit rate)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._samples[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._samples.get(self._key(labels), 0.0)


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Iterable[float] = DEFAULT_BUCKETS,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"{name}: need at least one bucket bound")
        if bounds != [b for b in bounds if not math.isinf(b)]:
            bounds = [b for b in bounds if not math.isinf(b)]
        #: upper bounds, ascending, with the implicit +Inf appended
        self.bounds: Tuple[float, ...] = tuple(bounds) + (math.inf,)
        #: label key -> [per-bucket non-cumulative counts, sum, count]
        self._series: Dict[Tuple[str, ...], list] = {}

    def _series_for(self, key: Tuple[str, ...]) -> list:
        series = self._series.get(key)
        if series is None:
            series = [[0] * len(self.bounds), 0.0, 0]
            self._series[key] = series
        return series

    def observe(self, value: float, **labels) -> None:
        series = self._series_for(self._key(labels))
        counts, _total, _n = series
        # first bound >= value (linear scan; bucket lists are short)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
                break
        series[1] += value
        series[2] += 1

    def count(self, **labels) -> int:
        series = self._series.get(self._key(labels))
        return series[2] if series else 0

    def percentile(self, q: float, **labels) -> Optional[float]:
        """Bucket-resolution quantile estimate (``0 < q <= 1``).

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``q`` of the observations — the classic
        Prometheus-style estimate, biased up by at most one bucket
        width.  The open ``+Inf`` bucket reports the largest finite
        bound.  ``None`` with no observations.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"percentile wants 0 < q <= 1, got {q}")
        series = self._series.get(self._key(labels))
        if series is None or not series[2]:
            return None
        counts, _total, n = series
        threshold = q * n
        cumulative = 0
        for bound, count in zip(self.bounds, counts):
            cumulative += count
            if cumulative >= threshold:
                if math.isinf(bound):
                    break
                return bound
        finite = [b for b in self.bounds if not math.isinf(b)]
        return finite[-1] if finite else None

    def sum(self, **labels) -> float:
        series = self._series.get(self._key(labels))
        return series[1] if series else 0.0

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        # JSON view: one (labels, count) pair per series
        keys = self._series or ({(): None} if not self.labelnames else {})
        return [
            (self._label_dict(key), float(self._series[key][2])
             if key in self._series else 0.0)
            for key in sorted(keys)
        ]

    def to_prometheus(self) -> List[str]:
        lines = [f"# HELP {self.name} {escape_help(self.help)}",
                 f"# TYPE {self.name} {self.kind}"]
        keys = sorted(self._series) if self._series else (
            [()] if not self.labelnames else []
        )
        for key in keys:
            counts, total, n = self._series.get(
                key, [[0] * len(self.bounds), 0.0, 0]
            )
            labels = self._label_dict(key)
            cumulative = 0
            for bound, count in zip(self.bounds, counts):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _bucket_le(bound)
                lines.append(
                    f"{self.name}_bucket{format_labels(bucket_labels)} "
                    f"{cumulative}"
                )
            lines.append(f"{self.name}_sum{format_labels(labels)} "
                         f"{format_value(total)}")
            lines.append(f"{self.name}_count{format_labels(labels)} {n}")
        return lines

    def to_json_doc(self) -> dict:
        keys = sorted(self._series) if self._series else (
            [()] if not self.labelnames else []
        )
        series_docs = []
        for key in keys:
            counts, total, n = self._series.get(
                key, [[0] * len(self.bounds), 0.0, 0]
            )
            series_docs.append({
                "labels": self._label_dict(key),
                "count": n,
                "sum": total,
                "mean": (total / n) if n else None,
                "buckets": [
                    {"le": _bucket_le(bound), "count": count}
                    for bound, count in zip(self.bounds, counts)
                ],
            })
        return {"kind": self.kind, "help": self.help, "series": series_docs}


class MetricsRegistry:
    """Get-or-create registry of metric families with one export path."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, cls, name: str, help_text: str, labelnames,
                  **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, help_text, labelnames=labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  labelnames: Sequence[str] = ()) -> Histogram:
        return self._register(Histogram, name, help_text, labelnames,
                              buckets=buckets)

    def reset(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    # ------------------------------------------------------------------
    # absorbing the scattered telemetry
    # ------------------------------------------------------------------
    def absorb_plan_cache(self, stats_doc: dict,
                          prefix: str = "repro") -> None:
        """Fold a :class:`PlanCacheStats` ``as_dict()`` into the
        registry (counters for the totals, a gauge for the hit rate)."""
        lookups = self.counter(
            f"{prefix}_plan_cache_lookups_total",
            "Compile-tier plan-cache lookups by outcome",
            labelnames=("outcome",),
        )
        lookups.inc(stats_doc.get("hits", 0), outcome="hit")
        lookups.inc(stats_doc.get("misses", 0), outcome="miss")
        built = self.counter(
            f"{prefix}_plan_cache_built_total",
            "Plan-cache compile work by unit (segments, lines)",
            labelnames=("unit",),
        )
        built.inc(stats_doc.get("built_segments", 0), unit="segments")
        built.inc(stats_doc.get("built_lines", 0), unit="lines")
        self.counter(
            f"{prefix}_plan_cache_flushes_total",
            "Whole-cache flushes forced by the line-count bound",
        ).inc(stats_doc.get("flushes", 0))
        self.gauge(
            f"{prefix}_plan_cache_hit_rate",
            "Fraction of plan lookups served from the compile-tier cache",
        ).set(stats_doc.get("hit_rate", 0.0))

    def absorb_sweep_stats(self, stats_doc: dict,
                           prefix: str = "repro") -> None:
        """Fold a :class:`SweepStats` ``to_dict()`` into the registry."""
        points = self.counter(
            f"{prefix}_sweep_points_total",
            "Sweep-plan points by outcome (hit=cache replay, "
            "miss=simulated, corrupt=bad entry re-simulated)",
            labelnames=("outcome",),
        )
        points.inc(stats_doc.get("hits", 0), outcome="hit")
        points.inc(stats_doc.get("misses", 0), outcome="miss")
        points.inc(stats_doc.get("corrupt", 0), outcome="corrupt")
        self.gauge(
            f"{prefix}_sweep_cache_hit_rate",
            "Fraction of sweep points served from the result cache",
        ).set(stats_doc.get("hit_rate", 0.0))
        self.gauge(
            f"{prefix}_sweep_elapsed_seconds",
            "Wall time the sweep executor spent on the plan",
        ).set(stats_doc.get("elapsed_seconds", 0.0))

    # ------------------------------------------------------------------
    # cross-process delta transport (distributed telemetry plane)
    # ------------------------------------------------------------------
    def to_delta_doc(self) -> dict:
        """Plain-data snapshot of every family, suitable for pickling
        across a process boundary and replaying with
        :meth:`absorb_delta`.

        Sweep workers start from an empty registry, so their full
        snapshot *is* the delta their point produced.
        """
        families: Dict[str, dict] = {}
        for name, metric in sorted(self._metrics.items()):
            doc: dict = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
            }
            if isinstance(metric, Histogram):
                doc["bounds"] = [b for b in metric.bounds
                                 if not math.isinf(b)]
                doc["series"] = [
                    {"key": list(key), "counts": list(series[0]),
                     "sum": series[1], "count": series[2]}
                    for key, series in sorted(metric._series.items())
                ]
            else:
                doc["samples"] = [
                    {"key": list(key), "value": value}
                    for key, value in sorted(metric._samples.items())
                ]
            families[name] = doc
        return families

    def absorb_delta(self, doc: dict) -> None:
        """Merge a :meth:`to_delta_doc` snapshot from another process.

        Merge semantics by kind: counters **sum**, gauges take the
        incoming value (**last write wins** — workers report their own
        state, there is nothing meaningful to add), histograms merge
        **bucket-wise** (bounds must match exactly; mismatched bucket
        layouts cannot be combined without losing information, so that
        is an error rather than a silent approximation).  Families and
        series are created on demand.
        """
        for name in sorted(doc):
            family = doc[name]
            kind = family.get("kind")
            labelnames = tuple(family.get("labelnames", ()))
            help_text = family.get("help", "")
            if kind == "histogram":
                bounds = family.get("bounds") or list(DEFAULT_BUCKETS)
                metric = self.histogram(name, help_text, buckets=bounds,
                                        labelnames=labelnames)
                want = tuple(float(b) for b in bounds) + (math.inf,)
                if metric.bounds != want:
                    raise ValueError(
                        f"{name}: histogram bucket bounds differ "
                        f"(registry {metric.bounds}, delta {want}); "
                        f"refusing a lossy merge"
                    )
                for row in family.get("series", ()):
                    key = tuple(row["key"])
                    if len(key) != len(metric.labelnames):
                        raise ValueError(
                            f"{name}: series key {key} does not match "
                            f"labels {metric.labelnames}"
                        )
                    series = metric._series_for(key)
                    for i, count in enumerate(row["counts"]):
                        series[0][i] += count
                    series[1] += row["sum"]
                    series[2] += row["count"]
                continue
            if kind == "counter":
                metric = self.counter(name, help_text, labelnames)
            elif kind == "gauge":
                metric = self.gauge(name, help_text, labelnames)
            else:
                raise ValueError(
                    f"{name}: cannot absorb metric kind {kind!r}"
                )
            for row in family.get("samples", ()):
                key = tuple(row["key"])
                if len(key) != len(metric.labelnames):
                    raise ValueError(
                        f"{name}: sample key {key} does not match "
                        f"labels {metric.labelnames}"
                    )
                if kind == "counter":
                    metric._samples[key] = (
                        metric._samples.get(key, 0.0) + row["value"]
                    )
                else:
                    metric._samples[key] = float(row["value"])

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Full text exposition of every registered family."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].to_prometheus())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json_doc(self) -> dict:
        return {
            name: metric.to_json_doc()
            for name, metric in sorted(self._metrics.items())
        }


#: the process-wide registry (sweep executor and CLIs record here)
REGISTRY = MetricsRegistry()
