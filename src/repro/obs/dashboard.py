"""In-terminal live dashboard for sweep runs (``repro sweep --live``).

Renders a small, periodically refreshed status block from the process
metrics registry — the same series every other exposition path reads:

* points done / total with the live cache hit rate,
* per-point latency percentiles from ``repro_sweep_point_seconds``
  (bucket-resolution estimates; see :meth:`Histogram.percentile`),
* sweep process-pool queue depth,
* worker occupancy (in-flight futures vs. the job budget).

On a TTY the block redraws in place with ANSI cursor movement; on a
plain pipe it degrades to one summary line per refresh interval so logs
stay readable.  The dashboard is driven by the executor's ``on_point``
completion callback plus a final :meth:`close` — it never touches the
executor's hot loop between completions.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from .metrics import REGISTRY, MetricsRegistry

__all__ = ["SweepDashboard"]

#: minimum seconds between repaints (completions arrive in bursts)
_REFRESH_SECONDS = 0.1


class SweepDashboard:
    """Render sweep progress from the metrics registry.

    Wire it up as::

        dash = SweepDashboard(total=len(plan), jobs=jobs)
        run_plan(plan, jobs=jobs, on_point=dash.update, ...)
        dash.close()
    """

    def __init__(self, total: int, jobs: int = 1,
                 stream: Optional[TextIO] = None,
                 registry: Optional[MetricsRegistry] = None,
                 clock=time.monotonic) -> None:
        self.total = total
        self.jobs = jobs
        self.stream = stream if stream is not None else sys.stderr
        self.registry = registry if registry is not None else REGISTRY
        self._clock = clock
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._done = 0
        self._hits = 0
        self._started = clock()
        self._last_paint = 0.0
        self._painted_lines = 0
        self.closed = False

    # ------------------------------------------------------------------
    # executor callbacks
    # ------------------------------------------------------------------
    def update(self, done: int, total: int, point, status: str) -> None:
        """The executor's ``on_point`` hook."""
        self._done = done
        self.total = total
        if status == "hit":
            self._hits += 1
        now = self._clock()
        if now - self._last_paint >= _REFRESH_SECONDS or done >= total:
            self._last_paint = now
            self._paint()

    def close(self) -> None:
        """Final repaint; leaves the block on screen."""
        if self.closed:
            return
        self.closed = True
        self._paint(final=True)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _metric(self, name: str):
        return self.registry.get(name)

    def _queue_depth(self) -> float:
        gauge = self._metric("repro_sweep_executor_queue_depth")
        try:
            return gauge.value() if gauge is not None else 0.0
        except ValueError:
            return 0.0

    def _percentiles(self):
        histogram = self._metric("repro_sweep_point_seconds")
        if histogram is None:
            return None
        try:
            p50 = histogram.percentile(0.50)
            p90 = histogram.percentile(0.90)
            p99 = histogram.percentile(0.99)
        except (TypeError, ValueError):
            return None
        if p50 is None:
            return None
        return p50, p90, p99

    def lines(self) -> list:
        """The dashboard block as a list of plain-text lines."""
        done, total = self._done, self.total
        elapsed = max(self._clock() - self._started, 1e-9)
        bar_width = 28
        filled = int(bar_width * done / total) if total else bar_width
        bar = "#" * filled + "-" * (bar_width - filled)
        hit_rate = self._hits / done if done else 0.0
        depth = self._queue_depth()
        busy = min(depth, self.jobs)
        rows = [
            f"sweep [{bar}] {done}/{total} points "
            f"({done / total:.0%})" if total else
            f"sweep [{bar}] {done}/{total} points",
            f"  cache: {self._hits} hit(s), {done - self._hits} "
            f"simulated ({hit_rate:.0%} hit rate)",
        ]
        percentiles = self._percentiles()
        if percentiles is not None:
            p50, p90, p99 = percentiles
            rows.append(
                f"  point latency: p50<={p50:g}s p90<={p90:g}s "
                f"p99<={p99:g}s (bucket bounds)"
            )
        rows.append(
            f"  pool: queue depth {depth:g}, "
            f"~{busy:g}/{self.jobs} worker(s) busy, "
            f"{done / elapsed:.1f} point/s"
        )
        return rows

    def _paint(self, final: bool = False) -> None:
        rows = self.lines()
        try:
            if self._tty:
                if self._painted_lines:
                    # move to the top of the previous block and repaint
                    self.stream.write(f"\x1b[{self._painted_lines}F")
                self.stream.write(
                    "".join(f"\x1b[2K{row}\n" for row in rows))
                self._painted_lines = len(rows)
            else:
                if final or self._done >= self.total:
                    self.stream.write("\n".join(rows) + "\n")
                else:
                    self.stream.write(rows[0] + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            # a closed/broken stream must never kill the sweep
            pass
