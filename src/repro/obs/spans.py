"""Hierarchical host-time span profiler.

The machine-side trace bus stamps events in simulated cycles; this
profiler stamps them in **host nanoseconds** (``time.perf_counter_ns``),
answering the question the trace bus cannot: where does the *simulator
process* spend its wall-time?

Instrumentation sites use the module singleton :data:`SPANS` as a
callable context-manager factory::

    from repro.obs.spans import SPANS

    with SPANS("engine.compile"):
        plan = build_plan(...)

When the profiler is disabled (the default, and the state every normal
run is in) the call returns a shared no-op context manager: the whole
site costs one attribute load, one branch, and an empty ``with`` —
no span object is ever constructed.  ``benchmarks/
bench_s6_selfprofile.py`` pins this cost per call and bounds the
aggregate disabled overhead on the dgemm sweep benchmark; the committed
``BENCH_selfprofile.json`` keeps it gated below 5%.

When enabled, spans nest through an explicit stack, so every record
carries its depth and parent — enough to render a flame view.  Two
retention tiers keep memory bounded:

* every span folds into per-name **aggregates** (count, total time,
  child time — hence self time), unbounded only in distinct names;
* the first :attr:`SpanProfiler.max_records` spans are kept as
  individual :class:`SpanRecord` rows for the Chrome-trace flame
  export; beyond the cap only aggregates continue (``dropped`` counts
  the overflow, and the exports say so).

The profiler is deliberately single-threaded (the simulator is); sweep
worker processes inherit a fresh, disabled profiler.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

__all__ = ["SPANS", "SpanProfiler", "SpanRecord"]


class SpanRecord:
    """One finished span: name, host-time interval, tree position.

    ``tid`` is the flame-view track the span renders on: 0 is the
    parent process's "host wall-time" track; spans absorbed from sweep
    workers carry the worker's pid (see
    :meth:`SpanProfiler.absorb_remote`).
    """

    __slots__ = ("name", "start_ns", "dur_ns", "depth", "parent", "attrs",
                 "tid")

    def __init__(self, name: str, start_ns: int, depth: int,
                 parent: int, attrs: Optional[dict], tid: int = 0) -> None:
        self.name = name
        self.start_ns = start_ns
        self.dur_ns = 0
        self.depth = depth
        self.parent = parent  # index into the record list, -1 for roots
        self.attrs = attrs
        self.tid = tid

    def as_dict(self) -> dict:
        doc = {
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "depth": self.depth,
            "parent": self.parent,
        }
        if self.tid:
            doc["tid"] = self.tid
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc


class _NullSpan:
    """The shared disabled-path context manager (never records)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL = _NullSpan()


class _Span:
    """Enabled-path context manager; one per entered span."""

    __slots__ = ("_profiler", "_record", "_index")

    def __init__(self, profiler: "SpanProfiler", name: str,
                 attrs: Optional[dict]) -> None:
        self._profiler = profiler
        self._record = name if attrs is None else (name, attrs)
        self._index = -1

    def __enter__(self) -> "_Span":
        profiler = self._profiler
        rec = self._record
        name, attrs = (rec, None) if isinstance(rec, str) else rec
        self._index = profiler._open(name, attrs)
        return self

    def __exit__(self, *_exc) -> bool:
        self._profiler._close(self._index)
        return False


class SpanProfiler:
    """Collects hierarchical host-time spans; disabled by default."""

    def __init__(self, max_records: int = 1_000_000,
                 clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self.enabled = False
        self.max_records = max_records
        self._clock = clock
        self.reset()

    # ------------------------------------------------------------------
    # site API
    # ------------------------------------------------------------------
    def __call__(self, name: str, **attrs) -> object:
        """The instrumentation-site entry point (see module docstring)."""
        if not self.enabled:
            return _NULL
        return _Span(self, name, attrs or None)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected spans and aggregates (keeps enabled state)."""
        self.records: List[SpanRecord] = []
        self.dropped = 0
        #: name -> [count, total_ns, child_ns]
        self._agg: Dict[str, List[int]] = {}
        #: stack of (record_index, name, start_ns); record_index is -1
        #: for spans past the retention cap (aggregates still accrue)
        self._stack: List[tuple] = []
        #: child-time accumulator parallel to the stack (for self time)
        self._child_ns: List[int] = []
        #: flame-view track id -> display name for absorbed worker spans
        self._tracks: Dict[int, str] = {}
        #: causal links from parent dispatch to absorbed worker roots:
        #: dicts with id/track/submit_ns/start_ns
        self._links: List[dict] = []

    # ------------------------------------------------------------------
    # span bookkeeping (called by _Span)
    # ------------------------------------------------------------------
    def _open(self, name: str, attrs: Optional[dict]) -> int:
        start = self._clock()
        index = -1
        if len(self.records) < self.max_records:
            parent = self._stack[-1][0] if self._stack else -1
            record = SpanRecord(name, start, len(self._stack), parent, attrs)
            index = len(self.records)
            self.records.append(record)
        else:
            self.dropped += 1
        self._stack.append((index, name, start))
        self._child_ns.append(0)
        return index

    def _close(self, index: int) -> None:
        end = self._clock()
        _idx, name, start = self._stack.pop()
        child_ns = self._child_ns.pop()
        dur = end - start
        if index >= 0:
            self.records[index].dur_ns = dur
        agg = self._agg.get(name)
        if agg is None:
            self._agg[name] = [1, dur, child_ns]
        else:
            agg[0] += 1
            agg[1] += dur
            agg[2] += child_ns
        if self._child_ns:
            self._child_ns[-1] += dur

    # ------------------------------------------------------------------
    # absorbing worker telemetry (distributed plane, repro.obs.remote)
    # ------------------------------------------------------------------
    def absorb_remote(self, spans: dict, track: int, track_name: str,
                      link: Optional[dict] = None) -> int:
        """Merge a worker's captured span section into this profiler.

        ``spans`` is the ``"spans"`` section of a telemetry payload:
        ``records`` (parent indices relative to the section, ``-1`` for
        roots), per-name ``aggregates`` and a ``dropped`` count.  The
        records land on flame-view track ``track`` (the worker pid) and
        the aggregates fold into the unified hotspot table.  ``link``
        (``{"id": ..., "submit_ns": ...}``) attaches a causal flow
        arrow from the parent's dispatch instant to the section's first
        root span in the Chrome export.

        Returns the number of records absorbed.  Sections that do not
        fit under the retention cap are counted in :attr:`dropped`
        whole (partial absorption would corrupt the parent remapping),
        but their aggregates still merge.
        """
        rows = spans.get("records") or []
        offset = len(self.records)
        absorbed = 0
        if rows and offset + len(rows) <= self.max_records:
            for row in rows:
                parent = row["parent"]
                record = SpanRecord(
                    row["name"], row["start_ns"], row["depth"],
                    parent + offset if parent >= 0 else -1,
                    row.get("attrs"), tid=track,
                )
                record.dur_ns = row["dur_ns"]
                self.records.append(record)
            absorbed = len(rows)
        else:
            self.dropped += len(rows)
        self.dropped += spans.get("dropped", 0)
        for name, (count, total_ns, child_ns) in (
                spans.get("aggregates") or {}).items():
            agg = self._agg.get(name)
            if agg is None:
                self._agg[name] = [count, total_ns, child_ns]
            else:
                agg[0] += count
                agg[1] += total_ns
                agg[2] += child_ns
        self._tracks.setdefault(track, track_name)
        if link is not None and absorbed:
            for row_index, row in enumerate(rows):
                if row["parent"] < 0:
                    self._links.append({
                        "id": str(link.get("id", offset)),
                        "track": track,
                        "submit_ns": link.get("submit_ns"),
                        "start_ns": rows[row_index]["start_ns"],
                    })
                    break
        return absorbed

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _root_ns(self) -> int:
        """Root-span wall time (retained spans with no parent)."""
        return sum(r.dur_ns for r in self.records if r.parent == -1)

    def hotspots(self, top: Optional[int] = None) -> List[dict]:
        """Per-name aggregates sorted by *self* time, descending.

        Self time is total time minus time spent in child spans — the
        flame-graph notion of where the wall-clock actually burned.
        """
        rows = []
        for name, (count, total_ns, child_ns) in self._agg.items():
            self_ns = total_ns - child_ns
            rows.append({
                "name": name,
                "count": count,
                "total_s": total_ns / 1e9,
                "self_s": self_ns / 1e9,
                "mean_us": (total_ns / count) / 1e3 if count else 0.0,
            })
        rows.sort(key=lambda r: r["self_s"], reverse=True)
        if top is not None:
            rows = rows[:top]
        return rows

    def hotspot_table(self, top: int = 10) -> str:
        """Text table of the top-N hotspots (CLI output)."""
        rows = self.hotspots(top)
        header = (f"{'span':<28} {'count':>8} {'total [s]':>10} "
                  f"{'self [s]':>10} {'self %':>7} {'mean [us]':>10}")
        lines = [header, "-" * len(header)]
        wall = sum(r["self_s"] for r in self.hotspots(None)) or 1.0
        for r in rows:
            lines.append(
                f"{r['name']:<28} {r['count']:>8} {r['total_s']:>10.4f} "
                f"{r['self_s']:>10.4f} {100.0 * r['self_s'] / wall:>6.1f}% "
                f"{r['mean_us']:>10.2f}"
            )
        if self.dropped:
            lines.append(f"({self.dropped} span(s) past the retention cap "
                         f"are aggregated only)")
        return "\n".join(lines)

    def to_chrome_trace(self, process_name: str = "repro host") -> dict:
        """Chrome trace-event flame view of host wall-time.

        Every retained span becomes a complete (``X``) event;
        timestamps are microseconds relative to the earliest span, so
        the flame starts at t=0 in Perfetto.  Parent-process spans
        render on the "host wall-time" track (tid 0); spans absorbed
        from sweep workers land on one track per worker pid, with flow
        arrows from the parent's dispatch instant to each worker root.
        """
        events: List[dict] = [
            {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
             "args": {"name": process_name}},
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": 0,
             "args": {"name": "host wall-time"}},
        ]
        for track, name in sorted(self._tracks.items()):
            events.append({"ph": "M", "name": "thread_name", "pid": 0,
                           "tid": track, "args": {"name": name}})
        t0 = min((r.start_ns for r in self.records), default=0)
        for record in self.records:
            event = {
                "ph": "X",
                "name": record.name,
                "cat": "host",
                "pid": 0,
                "tid": record.tid,
                "ts": (record.start_ns - t0) / 1e3,
                "dur": record.dur_ns / 1e3,
            }
            if record.attrs:
                event["args"] = dict(record.attrs)
            events.append(event)
        for flow in self._links:
            submit_ns = flow.get("submit_ns")
            if submit_ns is None:
                submit_ns = flow["start_ns"]
            events.append({
                "ph": "s", "id": flow["id"], "name": "sweep.dispatch",
                "cat": "sweep", "pid": 0, "tid": 0,
                "ts": (submit_ns - t0) / 1e3,
            })
            events.append({
                "ph": "f", "bp": "e", "id": flow["id"],
                "name": "sweep.dispatch", "cat": "sweep", "pid": 0,
                "tid": flow["track"],
                "ts": (flow["start_ns"] - t0) / 1e3,
            })
        if self.dropped:
            events.append({
                "ph": "i", "name": f"retention cap: {self.dropped} "
                                   f"span(s) dropped",
                "cat": "host", "pid": 0, "tid": 0, "s": "g",
                "ts": (self.records[-1].start_ns + self.records[-1].dur_ns
                       - t0) / 1e3 if self.records else 0.0,
            })
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def to_json_doc(self) -> dict:
        """Machine-readable summary (hotspots + retention counters)."""
        doc = {
            "spans": len(self.records),
            "dropped": self.dropped,
            "root_seconds": self._root_ns() / 1e9,
            "hotspots": self.hotspots(None),
        }
        if self._tracks:
            doc["tracks"] = {str(tid): name
                             for tid, name in sorted(self._tracks.items())}
        return doc


#: the process-wide profiler every instrumentation site reads
SPANS = SpanProfiler()
