"""Execution-port throughput model of one core.

Mirrors the structure that determines peak performance on the paper's
machines: Sandy Bridge issues one FP add (port 1) and one FP mul
(port 0) per cycle and has no FMA — its double-precision AVX peak is
8 flops/cycle from *balanced* add+mul code.  Haswell-class cores add two
FMA ports (16 flops/cycle).  The peak-performance microbenchmark adapts
to whichever structure the preset declares, exactly like the paper's
runtime-generated benchmark targets the host ISA.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from ..errors import ConfigurationError, IsaError

#: default instruction latencies in cycles
DEFAULT_LATENCIES = {
    "add": 3,
    "sub": 3,
    "mul": 5,
    "fma": 5,
    "div": 21,
    "max": 3,
    "min": 3,
}


@dataclass(frozen=True)
class PortModel:
    """Issue resources of one core.

    ``load_width_bits`` is the widest load one port moves per cycle:
    Sandy Bridge splits 256-bit loads into two 128-bit port-cycles,
    which halves its L1 bandwidth for AVX code — visible in the paper's
    cache-resident measurements.
    """

    name: str = "generic"
    fp_add_ports: int = 1
    fp_mul_ports: int = 1
    fma_ports: int = 0
    div_recip_throughput: float = 14.0  # cycles per div instruction
    load_ports: int = 2
    store_ports: int = 1
    load_width_bits: int = 128
    store_width_bits: int = 128
    issue_width: int = 4
    max_simd_width: int = 256
    latencies: Tuple[Tuple[str, int], ...] = tuple(sorted(DEFAULT_LATENCIES.items()))

    def __post_init__(self) -> None:
        if self.fp_add_ports < 0 or self.fp_mul_ports < 0 or self.fma_ports < 0:
            raise ConfigurationError("port counts must be non-negative")
        if self.fma_ports == 0 and (self.fp_add_ports == 0 or self.fp_mul_ports == 0):
            raise ConfigurationError("a core needs FP add+mul ports or FMA ports")
        if self.load_ports <= 0 or self.store_ports <= 0:
            raise ConfigurationError("need positive load/store ports")
        if self.max_simd_width not in (64, 128, 256, 512):
            raise ConfigurationError(f"bad max SIMD width {self.max_simd_width}")

    # ------------------------------------------------------------------
    # capabilities
    # ------------------------------------------------------------------
    @property
    def has_fma(self) -> bool:
        return self.fma_ports > 0

    def supports_width(self, width_bits: int) -> bool:
        return width_bits <= self.max_simd_width

    def latency(self, op: str) -> int:
        for name, cycles in self.latencies:
            if name == op:
                return cycles
        raise IsaError(f"no latency defined for op {op!r}")

    # ------------------------------------------------------------------
    # peak throughput
    # ------------------------------------------------------------------
    def peak_flops_per_cycle(self, width_bits: int, precision: str = "f64") -> float:
        """Best-case counted flops per cycle at one SIMD width."""
        if not self.supports_width(width_bits):
            raise ConfigurationError(
                f"{self.name} does not support {width_bits}-bit SIMD"
            )
        lanes = width_bits // (8 if precision == "f64" else 4) // 8
        if self.has_fma:
            return 2.0 * lanes * self.fma_ports
        return float(lanes) * (self.fp_add_ports + self.fp_mul_ports)

    # ------------------------------------------------------------------
    # issue-cost accounting
    # ------------------------------------------------------------------
    def fp_issue_cycles(self, op_counts: Mapping[Tuple[str, int], float]) -> float:
        """Cycles to issue a mix of FP ops, keyed by ``(op, width)``.

        Adds and muls occupy distinct ports and overlap; FMA-capable
        cores can also route adds/muls to the FMA ports.  ``div`` is
        unpipelined and serialises.
        """
        adds = muls = fmas = 0.0
        div_cycles = 0.0
        total = 0.0
        for (op, width), count in op_counts.items():
            if not self.supports_width(width):
                raise ConfigurationError(
                    f"{self.name}: {width}-bit {op} not supported"
                )
            total += count
            if op in ("add", "sub", "max", "min"):
                adds += count
            elif op == "mul":
                muls += count
            elif op == "fma":
                if not self.has_fma:
                    raise ConfigurationError(f"{self.name} has no FMA ports")
                fmas += count
            elif op == "div":
                div_cycles += count * self.div_recip_throughput
            else:
                raise IsaError(f"unknown FP op {op!r}")
        if self.has_fma:
            # adds/muls/fmas all share the FMA-capable ports
            port_cycles = (adds + muls + fmas) / self.fma_ports
        else:
            port_cycles = max(
                adds / self.fp_add_ports if self.fp_add_ports else math.inf,
                muls / self.fp_mul_ports if self.fp_mul_ports else math.inf,
            )
        issue_cycles = total / self.issue_width
        return max(port_cycles, issue_cycles, 0.0) + div_cycles

    def mem_issue_cycles(self, load_widths: Mapping[int, float],
                         store_widths: Mapping[int, float]) -> float:
        """Cycles for the load/store ports to issue a mix of accesses.

        Accesses wider than a port's width take multiple port-cycles
        (the Sandy Bridge 256-bit-load split).
        """
        load_pc = sum(
            count * max(1, -(-width // self.load_width_bits))
            for width, count in load_widths.items()
        )
        store_pc = sum(
            count * max(1, -(-width // self.store_width_bits))
            for width, count in store_widths.items()
        )
        return max(load_pc / self.load_ports, store_pc / self.store_ports)


def sandy_bridge_ports() -> PortModel:
    """SNB-like: separate add/mul ports, no FMA, 128-bit load ports."""
    return PortModel(
        name="snb",
        fp_add_ports=1,
        fp_mul_ports=1,
        fma_ports=0,
        load_ports=2,
        store_ports=1,
        load_width_bits=128,
        store_width_bits=128,
        max_simd_width=256,
    )


def haswell_ports() -> PortModel:
    """HSW-like: two FMA ports, full-width 256-bit load/store ports."""
    return PortModel(
        name="hsw",
        fp_add_ports=1,
        fp_mul_ports=1,
        fma_ports=2,
        load_ports=2,
        store_ports=1,
        load_width_bits=256,
        store_width_bits=256,
        max_simd_width=256,
    )


def skylake_avx512_ports() -> PortModel:
    """SKX-like: two 512-bit FMA ports."""
    return PortModel(
        name="skx",
        fp_add_ports=1,
        fp_mul_ports=1,
        fma_ports=2,
        load_ports=2,
        store_ports=1,
        load_width_bits=512,
        store_width_bits=512,
        max_simd_width=512,
    )
