"""Core model: SIMD levels, execution-port throughput, frequency
governor, cycle-cost timing model, and the program interpreter."""

from .core import Core, ExecutionResult
from .frequency import FrequencyGovernor
from .port_model import (
    PortModel,
    haswell_ports,
    sandy_bridge_ports,
    skylake_avx512_ports,
)
from .simd import (
    ALL_LEVELS,
    AVX,
    AVX512,
    SCALAR,
    SSE,
    SimdLevel,
    level_by_name,
    level_by_width,
    levels_up_to,
)
from .timing import PhaseCost, TimingParams, phase_cycles, reissue_slots

__all__ = [
    "ALL_LEVELS",
    "AVX",
    "AVX512",
    "Core",
    "ExecutionResult",
    "FrequencyGovernor",
    "PhaseCost",
    "PortModel",
    "SCALAR",
    "SSE",
    "SimdLevel",
    "TimingParams",
    "haswell_ports",
    "level_by_name",
    "level_by_width",
    "levels_up_to",
    "phase_cycles",
    "reissue_slots",
    "sandy_bridge_ports",
    "skylake_avx512_ports",
]
