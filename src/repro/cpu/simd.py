"""SIMD capability levels of the simulated cores.

The paper draws one compute ceiling per ISA level (scalar, SSE, AVX) and
per thread count; these definitions give the machinery a single source
of truth for widths and names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SimdLevel:
    """One vector capability tier."""

    name: str
    width_bits: int

    @property
    def lanes_f64(self) -> int:
        return self.width_bits // 64

    @property
    def lanes_f32(self) -> int:
        return self.width_bits // 32

    def __str__(self) -> str:
        return self.name


SCALAR = SimdLevel("scalar", 64)
SSE = SimdLevel("sse", 128)
AVX = SimdLevel("avx", 256)
AVX512 = SimdLevel("avx512", 512)

ALL_LEVELS = (SCALAR, SSE, AVX, AVX512)
_BY_NAME = {level.name: level for level in ALL_LEVELS}
_BY_WIDTH = {level.width_bits: level for level in ALL_LEVELS}


def level_by_name(name: str) -> SimdLevel:
    """Look up a SIMD level by name."""
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown SIMD level {name!r}; known: {sorted(_BY_NAME)}"
        ) from exc


def level_by_width(width_bits: int) -> SimdLevel:
    """Look up a SIMD level by register width."""
    try:
        return _BY_WIDTH[width_bits]
    except KeyError as exc:
        raise ConfigurationError(f"no SIMD level of width {width_bits}") from exc


def levels_up_to(max_width_bits: int) -> List[SimdLevel]:
    """All levels a machine with ``max_width_bits`` registers supports."""
    levels = [lvl for lvl in ALL_LEVELS if lvl.width_bits <= max_width_bits]
    if not levels:
        raise ConfigurationError(f"max SIMD width {max_width_bits} too small")
    return levels
