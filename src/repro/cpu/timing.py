"""Cycle-cost model: turns exact functional event counts into runtime.

The model is the throughput/latency approximation documented in
DESIGN.md: a phase (one innermost-loop execution or straight-line block)
costs the *maximum* of its issue bound, its carried-dependency bound,
and each memory level's bandwidth bound — all of which overlap on an
out-of-order core — plus an exposed-latency term divided by the memory
level parallelism.  The max form is what makes measured kernels land on
``min(pi, I*beta)`` the way the paper's plots do, while cold caches,
prefetchers and NUMA shift the points mechanically.

The same event counts also drive the Sandy Bridge FP-counter
*overcount* artifact (:func:`reissue_slots`): FP µops waiting on cache
misses are re-dispatched every ``reissue_interval_cycles`` and each
re-dispatch bumps the FP event again, so cold-cache work measurements
inflate exactly as the paper's validation section reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Tuple

from ..memory.hierarchy import BatchStats, HierarchyConfig
from .port_model import PortModel


@dataclass(frozen=True)
class TimingParams:
    """Tunable microarchitectural constants of the cost model."""

    mlp: float = 8.0                    # outstanding-miss parallelism
    reissue_interval_cycles: int = 16   # FP µop re-dispatch period
    reissue_hide_cycles: int = 6        # latency hidden before replays start
                                        # (covers L1 hits: the scheduler
                                        # speculates L1-hit latency and
                                        # replays dependants on any L1 miss)
    max_reissue_per_miss: int = 4       # scheduler window bound


@dataclass(frozen=True)
class PhaseCost:
    """Cycle cost of one phase, with its contributing bounds."""

    fp_issue: float
    mem_issue: float
    chain: float
    l2_bandwidth: float
    l3_bandwidth: float
    dram_bandwidth: float
    exposed_latency: float

    @property
    def throughput_bound(self) -> float:
        return max(
            self.fp_issue,
            self.mem_issue,
            self.chain,
            self.l2_bandwidth,
            self.l3_bandwidth,
            self.dram_bandwidth,
        )

    @property
    def total(self) -> float:
        return self.throughput_bound + self.exposed_latency

    @property
    def dominant(self) -> str:
        """Name of the binding constraint (diagnostics/reports)."""
        bounds = {
            "fp_issue": self.fp_issue,
            "mem_issue": self.mem_issue,
            "dependency_chain": self.chain,
            "l2_bandwidth": self.l2_bandwidth,
            "l3_bandwidth": self.l3_bandwidth,
            "dram_bandwidth": self.dram_bandwidth,
        }
        return max(bounds, key=bounds.get)

    def as_dict(self) -> dict:
        """Flat cycle breakdown (trace events, JSON reports)."""
        return {
            "fp_issue": self.fp_issue,
            "mem_issue": self.mem_issue,
            "dependency_chain": self.chain,
            "l2_bandwidth": self.l2_bandwidth,
            "l3_bandwidth": self.l3_bandwidth,
            "dram_bandwidth": self.dram_bandwidth,
            "exposed_latency": self.exposed_latency,
        }


def phase_cycles(ports: PortModel,
                 config: HierarchyConfig,
                 fp_ops: Mapping[Tuple[str, int], float],
                 load_widths: Mapping[int, float],
                 store_widths: Mapping[int, float],
                 chain_cycles: float,
                 batch: BatchStats,
                 params: TimingParams,
                 dram_bytes_per_cycle: float,
                 remote_extra_latency: int = 0) -> PhaseCost:
    """Cost of one phase.

    ``fp_ops`` / ``load_widths`` / ``store_widths`` are dynamic counts for
    the whole phase; ``chain_cycles`` is the carried-dependency bound
    (max per-iteration chain latency times trip count); ``batch`` holds
    the functional memory events; ``dram_bytes_per_cycle`` is the
    share of DRAM bandwidth available to this core during the phase.
    """
    line = config.line_bytes
    fp_issue = ports.fp_issue_cycles(fp_ops) if fp_ops else 0.0
    mem_issue = ports.mem_issue_cycles(load_widths, store_widths)

    l2_bw = batch.l2_hits * line / config.l2.bytes_per_cycle
    l3_bw = batch.l3_hits * line / config.l3.bytes_per_cycle

    local_lines = batch.dram_lines_total - batch.remote_dram_lines
    remote_factor = config.numa.remote_bandwidth_factor
    effective_lines = local_lines + batch.remote_dram_lines / remote_factor
    dram_bw = effective_lines * line / dram_bytes_per_cycle

    remote_share = (
        batch.remote_dram_lines / batch.dram_reads
        if batch.dram_reads and batch.remote_dram_lines
        else 0.0
    )
    dram_latency = (
        config.dram.latency_cycles
        + remote_share * (config.numa.remote_latency_extra_cycles + remote_extra_latency)
    )
    exposed = (
        batch.l2_hits * config.l2.latency_cycles
        + batch.l3_hits * config.l3.latency_cycles
        + batch.dram_reads * dram_latency
        + batch.tlb_walk_cycles
    ) / params.mlp

    return PhaseCost(
        fp_issue=fp_issue,
        mem_issue=mem_issue,
        chain=chain_cycles,
        l2_bandwidth=l2_bw,
        l3_bandwidth=l3_bw,
        dram_bandwidth=dram_bw,
        exposed_latency=exposed,
    )


def reissue_slots(config: HierarchyConfig, batch: BatchStats,
                  params: TimingParams) -> int:
    """Number of FP re-dispatch opportunities a phase's misses create.

    Each slot re-counts the loop body's load-dependent FP instructions
    once in the core PMU — the mechanical source of the overcount the
    paper quantifies.
    """

    def per_line(latency: int) -> int:
        exposed = max(latency - params.reissue_hide_cycles, 0)
        if exposed == 0:
            return 0
        return min(
            params.max_reissue_per_miss,
            math.ceil(exposed / params.reissue_interval_cycles),
        )

    return (
        batch.l2_hits * per_line(config.l2.latency_cycles)
        + batch.l3_hits * per_line(config.l3.latency_cycles)
        + batch.dram_reads * per_line(config.dram.latency_cycles)
    )
