"""Core interpreter: executes ISA programs over the memory hierarchy.

The interpreter is structural: it does not compute numeric values, it
reproduces every *observable* the measurement methodology depends on —
the demand line-access stream (fed to the functional caches), the PMU
event increments (FP ops at issue, including reissue overcounts), and
the cycle cost (via :mod:`repro.cpu.timing`).

Innermost loops take a vectorised fast path: every memory instruction's
address sequence is affine in the induction variable, so the whole trip
sequence is evaluated with numpy, collapsed to its cache-line touch
stream, and fed to the core's port in one batch.  Loop bodies are
analysed once (FP mix, load-dependence taint, carried accumulator
chains) and the analysis is cached per loop object.

Canonical touch-stream semantics (mirrored by ``repro.oracle``):

* an affine site coalesces under the *monotone frontier* rule — within
  one flat-loop execution it emits, in iteration order, only the lines
  beyond the furthest line it has already touched (direction-aware for
  negative strides), skipping gap lines a stride jumps over entirely;
* a gather site coalesces *consecutive duplicates* of its per-iteration
  ``[first, end]`` line pair (its stream is data-dependent, so there is
  no monotone frontier to track);
* multi-site bodies interleave emissions in true iteration order, sites
  in body order within an iteration;
* straight-line memory instructions (and bodies of non-flat loops) emit
  their full ``[first .. end]`` line range on every execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine import AccessPlan, BatchDatapath, PlanCache, validate_engine
from ..engine.plan import OP_DEMAND_READ, OP_DEMAND_WRITE, PlanSegment
from ..errors import ExecutionError
from ..isa.instructions import (
    Flush,
    GatherLoad,
    Load,
    Loop,
    PrefetchHint,
    Store,
    VecOp,
)
from ..isa.program import Program
from ..memory.allocator import Allocation
from ..memory.hierarchy import BatchStats, CorePort, HierarchyConfig
from ..obs.spans import SPANS
from ..pmu.core_pmu import CorePmu
from ..trace.bus import TraceBus
from ..trace.events import PHASE, TraceEvent
from .port_model import PortModel
from .timing import PhaseCost, TimingParams, phase_cycles, reissue_slots


@dataclass
class ExecutionResult:
    """Everything one program execution produced on one core."""

    cycles: float = 0.0
    instructions: int = 0
    batch: BatchStats = field(default_factory=BatchStats)
    phases: List[PhaseCost] = field(default_factory=list)
    true_flops: int = 0

    def merge(self, other: "ExecutionResult") -> None:
        self.cycles += other.cycles
        self.instructions += other.instructions
        self.batch.merge(other.batch)
        self.phases.extend(other.phases)
        self.true_flops += other.true_flops


@dataclass
class _MemSite:
    """One memory instruction inside a loop body."""

    instr: object
    kind: str          # 'load' | 'store' | 'ntstore' | 'prefetch' | 'flush'
    width_bits: int
    site_id: int


@dataclass
class _LoopInfo:
    """Cached per-body analysis of a flat (innermost) loop."""

    fp_ops: Dict[Tuple[str, int], int]            # (op, width) -> per-iter count
    fp_events: Dict[Tuple[int, str, bool], int]   # (width, prec, is_fma) -> instrs
    dep_fp_events: Dict[Tuple[int, str, bool], int]
    chain_latency: int
    mem_sites: List[_MemSite]
    load_widths: Dict[int, int]
    store_widths: Dict[int, int]
    body_instructions: int
    flops_per_trip: int = 0
    # phase skeleton: whole-phase costs precomputed at analysis time
    # (trip counts are static), so executions skip the scaling work
    fp_ops_total: Dict[Tuple[str, int], int] = field(default_factory=dict)
    load_widths_total: Dict[int, int] = field(default_factory=dict)
    store_widths_total: Dict[int, int] = field(default_factory=dict)
    chain_cycles_total: float = 0.0
    fp_events_total: List[Tuple[Tuple[int, str, bool], int]] = field(
        default_factory=list
    )
    #: (event key, per-iter instrs, flops re-counted per reissue slot)
    dep_fp_terms: List[Tuple[Tuple[int, str, bool], int, int]] = field(
        default_factory=list
    )
    #: symbolic-tier structural key — loop id plus per-site
    #: (kind, width, buffer, referenced ivs); ``None`` when the body is
    #: not symbolically plannable (a gather site, or a negative stride
    #: over the loop's own induction variable)
    skey: Optional[tuple] = None
    #: this core's site ids in body order (part of the binding key: two
    #: structurally identical loops still train distinct stride sites)
    sid_tuple: Tuple[int, ...] = ()
    #: per-core memo of the interned SymbolicPlan for ``skey``
    symbolic: Optional[object] = None


class Core:
    """One simulated core: interpreter + PMU + port binding."""

    def __init__(self, core_id: int, ports: PortModel,
                 hierarchy_config: HierarchyConfig, port: CorePort,
                 pmu: CorePmu, timing: TimingParams,
                 engine: str = "fast") -> None:
        self.core_id = core_id
        self.ports = ports
        self.config = hierarchy_config
        self.port = port
        self.pmu = pmu
        self.timing = timing
        self.engine = validate_engine(engine)
        # trace bus shared with the port's hierarchy (and the machine)
        self.bus: TraceBus = port.bus
        self._line_shift = hierarchy_config.line_bytes.bit_length() - 1
        self._loop_info: Dict[int, Tuple[Loop, _LoopInfo]] = {}
        self._tables: Dict[str, object] = {}
        self._next_site_id = core_id << 20  # site ids unique per core
        #: compile-tier state (used only by the fast engine)
        self.plan_cache = PlanCache()
        self._datapath = BatchDatapath(port)

    @property
    def plan_stats(self):
        """Compile-tier telemetry (hits/misses/built lines)."""
        return self.plan_cache.stats

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def execute(self, program: Program, buffer_map: Dict[str, Allocation],
                dram_bytes_per_cycle: float) -> ExecutionResult:
        """Run ``program`` with buffers mapped per ``buffer_map``.

        ``dram_bytes_per_cycle`` is this core's share of DRAM bandwidth
        for the run (the machine computes it from active-core contention).
        """
        for name in program.buffers:
            if name not in buffer_map:
                raise ExecutionError(f"buffer {name!r} not mapped")
        result = ExecutionResult()
        self._tables = program.tables
        if self.bus.enabled:
            # this core's phases start at the machine's current TSC
            self.bus.cursor = self.bus.now
        self._exec_nodes(program.body, {}, buffer_map, dram_bytes_per_cycle, result)
        counts = program.static_counts()
        result.true_flops = counts.flops
        self.pmu.add("cycles", int(result.cycles))
        self.pmu.add("instructions", result.instructions)
        batch = result.batch
        self.pmu.add("l1_accesses", batch.accesses)
        self.pmu.add("l1_replacement", max(batch.accesses - batch.l1_hits, 0))
        self.pmu.add(
            "l2_lines_in",
            batch.l3_hits + batch.dram_reads + batch.hw_prefetch_issued,
        )
        self.pmu.add("llc_misses", batch.dram_reads)
        self.pmu.add("dtlb_walks", batch.tlb_misses)
        return result

    # ------------------------------------------------------------------
    # tree walk
    # ------------------------------------------------------------------
    def _exec_nodes(self, nodes, ivs, buffers, dram_bpc, result) -> None:
        for node in nodes:
            if isinstance(node, Loop):
                if node.trips == 0:
                    continue
                if any(isinstance(child, Loop) for child in node.body):
                    for trip in range(node.trips):
                        ivs[node.loop_id] = trip
                        self._exec_nodes(node.body, ivs, buffers, dram_bpc, result)
                    del ivs[node.loop_id]
                else:
                    self._exec_flat_loop(node, ivs, buffers, dram_bpc, result)
            else:
                self._exec_single(node, ivs, buffers, dram_bpc, result)

    # ------------------------------------------------------------------
    # fast path: flat innermost loop
    # ------------------------------------------------------------------
    def _exec_flat_loop(self, loop: Loop, ivs, buffers, dram_bpc, result) -> None:
        info = self._analyze(loop)
        trips = loop.trips

        # true FP event increments (whole-phase counts precomputed)
        for (width, prec, is_fma), total in info.fp_events_total:
            self.pmu.add_fp(width, prec, total, is_fma)

        # functional memory traffic.  The fast engine replays a cached
        # access plan through the batched datapath; the reference engine
        # dispatches the identical emission stream one port call at a
        # time (single-site bodies stream their whole trip range in one
        # emission; multi-site bodies interleave in iteration order so
        # cross-site locality within an iteration is preserved).
        if info.mem_sites and self.engine == "fast":
            batch = self._datapath.execute_plan(
                self._plan_for(info, loop, ivs, buffers)
            )
        else:
            batch = BatchStats()
            for site, lines, node in self._iter_emissions(
                info, loop, ivs, buffers
            ):
                batch.merge(self._dispatch_site(site, lines, node))

        # cycle cost of the phase
        cost = phase_cycles(
            self.ports, self.config, info.fp_ops_total,
            info.load_widths_total, info.store_widths_total,
            chain_cycles=info.chain_cycles_total,
            batch=batch, params=self.timing,
            dram_bytes_per_cycle=dram_bpc,
        )

        # the reissue overcount artifact: each slot re-counts the body's
        # load-dependent FP instructions once
        slots = 0
        reissue_flops = 0
        if info.dep_fp_terms:
            slots = reissue_slots(self.config, batch, self.timing)
            if slots:
                for (width, prec, is_fma), instrs, term in info.dep_fp_terms:
                    self.pmu.add_fp(width, prec, instrs * slots, is_fma)
                    reissue_flops += term * slots

        result.cycles += cost.total
        result.instructions += info.body_instructions * trips
        result.batch.merge(batch)
        result.phases.append(cost)

        bus = self.bus
        if bus.enabled:
            bus.emit(TraceEvent(
                PHASE, f"loop:{loop.loop_id}", bus.cursor,
                core=self.core_id, dur=cost.total,
                args={
                    "trips": trips,
                    "dominant": cost.dominant,
                    "bounds": cost.as_dict(),
                    "batch": batch.as_dict(),
                    "dram_bpc": dram_bpc,
                    "mlp": self.timing.mlp,
                    "reissue_slots": slots,
                    "reissue_flops": reissue_flops,
                    "instructions": info.body_instructions * trips,
                    "flops": info.flops_per_trip * trips,
                },
            ))
            bus.cursor += cost.total

    def _dispatch_site(self, site: _MemSite, line_list, node: int) -> BatchStats:
        """Route one site's line batch to the right port operation."""
        if site.kind == "prefetch":
            return self.port.software_prefetch(line_list, node=node)
        if site.kind == "flush":
            return self.port.flush_lines(line_list, node=node)
        return self.port.access_lines(
            line_list,
            is_write=(site.kind in ("store", "ntstore")),
            nt=(site.kind == "ntstore"),
            node=node,
            stream_id=site.site_id,
        )

    def _site_base_stride(self, site: _MemSite, loop_id: str, ivs,
                          buffers) -> Tuple[int, int, int]:
        """(absolute base, stride w.r.t. the loop iv, home node)."""
        addr = site.instr.addr
        alloc = buffers[addr.buffer]
        base = alloc.base + addr.offset
        stride = 0
        for lid, s in addr.strides:
            if lid == loop_id:
                stride = s
            else:
                base += ivs[lid] * s
        return base, stride, alloc.node

    def _iter_emissions(self, info: _LoopInfo, loop: Loop, ivs, buffers):
        """Yield one flat-loop execution's ``(site, lines, node)`` stream.

        This is the canonical emission order both engines share: the
        reference engine dispatches each emission as one port call; the
        fast engine captures the stream into an
        :class:`~repro.engine.plan.AccessPlan` (see ``docs/ENGINE.md``).
        A single site streams its whole trip range as one emission;
        multi-site bodies interleave per :meth:`_iter_interleaved`.
        """
        sites = info.mem_sites
        if not sites:
            return
        if len(sites) == 1:
            site = sites[0]
            lines, node = self._site_lines(
                site, loop.loop_id, loop.trips, ivs, buffers
            )
            yield site, lines, node
        else:
            yield from self._iter_interleaved(info, loop, ivs, buffers)

    def _plan_for(self, info: _LoopInfo, loop: Loop, ivs,
                  buffers) -> AccessPlan:
        """Cached access plan for this loop in this address context.

        Symbolically plannable loops resolve through the two-tier
        cache: the structure interns once per process (see
        :data:`repro.engine.plan.SYMBOLIC_REGISTRY`), and each concrete
        binding — trip count, site ids, per-site (base, stride, home) —
        memoises its materialisation in the per-core bound tier, so a
        plan compiled at one problem size rebinds at any other.
        Gathers, negative own-loop strides, and machines whose datapath
        needs segment-granular plans take :meth:`_plan_concrete`.
        """
        cache = self.plan_cache
        sym = info.symbolic
        if sym is None:
            if info.skey is None or not self._datapath._symbolic_ok:
                return self._plan_concrete(info, loop, ivs, buffers)
            sym = cache.resolve_symbolic(info.skey)
            info.symbolic = sym
        else:
            cache.note_symbolic_hit()
        loop_id = loop.loop_id
        binding = tuple(
            self._site_base_stride(site, loop_id, ivs, buffers)
            for site in info.mem_sites
        )
        bkey = (sym.plan_id, loop.trips, info.sid_tuple, binding)
        plan = cache.get_bound(bkey)
        if plan is None:
            port = self.port
            descs = [
                (site.kind, site.site_id, base, stride,
                 site.width_bits // 8, node)
                for site, (base, stride, node)
                in zip(info.mem_sites, binding)
            ]
            with SPANS("engine.compile"):
                plan = sym.bind(
                    descs, loop.trips, self._line_shift,
                    port._page_shift, port.node,
                    packed=self._datapath._use_c,
                )
            cache.put_bound(bkey, plan)
        return plan

    def _plan_concrete(self, info: _LoopInfo, loop: Loop, ivs,
                       buffers) -> AccessPlan:
        """Capture-keyed fallback for non-symbolic loops.

        The key pins everything the emission stream depends on: the
        loop body (by identity, strongly referenced), the outer
        induction-variable values each site's address reads, every
        referenced buffer's base/home, and gather index tables (by
        identity, strongly referenced and assumed immutable).
        """
        loop_id = loop.loop_id
        key: list = [id(loop)]
        pinned: list = []
        for site in info.mem_sites:
            instr = site.instr
            if site.kind == "gather":
                alloc = buffers[instr.buffer]
                table = self._tables[instr.index_addr.buffer]
                pinned.append(table)
                key.append((alloc.base, alloc.node, id(table)))
                strides = instr.index_addr.strides
            else:
                addr = instr.addr
                alloc = buffers[addr.buffer]
                key.append((alloc.base, alloc.node))
                strides = addr.strides
            for lid, _stride in strides:
                if lid != loop_id:
                    key.append(ivs[lid])
        key_t = tuple(key)
        plan = self.plan_cache.get(key_t)
        if plan is None:
            with SPANS("engine.compile"):
                plan = self._build_plan(info, loop, ivs, buffers)
            self.plan_cache.put(key_t, loop, tuple(pinned), plan)
        return plan

    def _build_plan(self, info: _LoopInfo, loop: Loop, ivs,
                    buffers) -> AccessPlan:
        """Lower one flat loop to an :class:`AccessPlan`.

        All-affine multi-site bodies (the interleaved-walker case,
        where per-burst Python cost dominates compile time) lower
        through the vectorized :meth:`AccessPlan.from_affine_sites`
        when the inlined datapath will execute the plan; gathers,
        single-site bodies, negative strides, and non-inline machines
        capture the walker's emission stream directly.
        """
        sites = info.mem_sites
        if len(sites) >= 2 and loop.trips > 0 and self._datapath._inline:
            descs = []
            for site in sites:
                if site.kind == "gather":
                    descs = None
                    break
                base, stride, node = self._site_base_stride(
                    site, loop.loop_id, ivs, buffers
                )
                if stride < 0:
                    descs = None
                    break
                descs.append((site.kind, site.site_id, base, stride,
                              site.width_bits // 8, node))
            if descs is not None:
                return AccessPlan.from_affine_sites(
                    descs, loop.trips, self._line_shift,
                    self.port._page_shift, self.port.node,
                )
        return AccessPlan.from_emissions(
            self._iter_emissions(info, loop, ivs, buffers),
            page_shift=self.port._page_shift,
            own_node=self.port.node,
        )

    def _iter_interleaved(self, info: _LoopInfo, loop: Loop, ivs, buffers):
        """Walk a multi-site loop in iteration order at line granularity.

        Each affine site emits under the monotone frontier rule and each
        gather site under consecutive-duplicate coalescing, with sites
        visited in body order within an iteration.  Iterations where no
        affine site can cross a line boundary are skipped in closed
        form, so the walk costs O(lines emitted + gather trips), not
        O(trips) — while emitting exactly the iteration-order stream.
        """
        trips = loop.trips
        shift = self._line_shift
        sites = []
        has_gather = False
        for site in info.mem_sites:
            if site.kind == "gather":
                positions, node = self._gather_positions(
                    site, loop.loop_id, trips, ivs, buffers
                )
                width = site.width_bits // 8
                # base/stride unused for gathers; positions precomputed
                sites.append([site, positions, None, node, width, -1])
                has_gather = True
                continue
            base, stride, node = self._site_base_stride(
                site, loop.loop_id, ivs, buffers
            )
            if stride < 0:
                raise ExecutionError(
                    "negative loop strides are not supported in loop bodies "
                    "with multiple memory instructions"
                )
            width = site.width_bits // 8
            sites.append([site, base, stride, node, width, -1])
        t = 0
        while t < trips:
            for record in sites:
                site, base, stride, node, width, last = record
                if stride is None:  # gather: positions precomputed
                    positions = base
                    pos = int(positions[min(t, positions.size - 1)])
                    first = pos >> shift
                    end = (pos + width - 1) >> shift
                    if first == end:
                        lines = [] if first == last else [first]
                    elif first == last:
                        lines = [end]
                    else:
                        lines = [first, end]
                    if not lines:
                        continue
                    record[5] = lines[-1]
                    yield site, lines, node
                    continue
                pos = base + t * stride
                first = pos >> shift
                end = (pos + width - 1) >> shift
                if end <= last:
                    continue
                lo = first if first > last else last + 1
                if lo == end:
                    lines = [end]
                else:
                    lines = list(range(lo, end + 1))
                record[5] = end
                yield site, lines, node
            if has_gather:
                # gather streams are data-dependent: visit every trip
                t += 1
                continue
            # skip ahead to the next iteration at which some affine
            # site's [start..end] window reaches a line past its frontier
            nxt = trips
            for record in sites:
                stride = record[2]
                if not stride:
                    continue
                base, width, last = record[1], record[4], record[5]
                need = ((last + 1) << shift) - base - width + 1
                t_cross = -(-need // stride)
                if t_cross < nxt:
                    nxt = t_cross
            t = max(nxt, t + 1)

    def _gather_positions(self, site: _MemSite, loop_id: str, trips: int,
                          ivs, buffers):
        """(absolute byte positions array, home node) for a gather."""
        instr = site.instr
        alloc = buffers[instr.buffer]
        table = self._tables[instr.index_addr.buffer]
        idx0 = instr.index_addr.offset
        stride = 0
        for lid, st in instr.index_addr.strides:
            if lid == loop_id:
                stride = st
            else:
                idx0 += ivs[lid] * st
        if stride == 0:
            # one position per trip: a two-line gather re-touches both
            # lines every iteration under consecutive-dedup semantics
            indices = np.full(trips, idx0, dtype=np.int64)
        else:
            indices = idx0 + np.arange(trips, dtype=np.int64) * stride
        return alloc.base + table[indices], alloc.node

    def _site_lines(self, site: _MemSite, loop_id: str, trips: int,
                    ivs, buffers) -> Tuple[list, int]:
        if site.kind == "gather":
            positions, node = self._gather_positions(
                site, loop_id, trips, ivs, buffers
            )
            shift = self._line_shift
            width_bytes = site.width_bits // 8
            start = positions >> shift
            end = (positions + (width_bytes - 1)) >> shift
            if np.array_equal(start, end):
                lines = start
            else:
                lines = np.column_stack((start, end)).ravel()
            if lines.size > 1:
                keep = np.empty(lines.size, dtype=bool)
                keep[0] = True
                np.not_equal(lines[1:], lines[:-1], out=keep[1:])
                lines = lines[keep]
            return lines.tolist(), node
        base, stride, node = self._site_base_stride(site, loop_id, ivs, buffers)
        width_bytes = site.width_bits // 8
        shift = self._line_shift
        if stride == 0:
            first = base >> shift
            last = (base + width_bytes - 1) >> shift
            return list(range(first, last + 1)), node
        positions = base + np.arange(trips, dtype=np.int64) * stride
        start = positions >> shift
        end = (positions + (width_bytes - 1)) >> shift
        lines: List[int] = []
        if stride > 0:
            # ascending frontier: each crossing iteration emits the lines
            # between the frontier and its window end, skipping gap lines
            # the window never covers
            mask = np.empty(trips, dtype=bool)
            mask[0] = True
            np.greater(end[1:], end[:-1], out=mask[1:])
            frontier = -1
            for t in np.flatnonzero(mask):
                hi = int(end[t])
                lo = int(start[t])
                if lo <= frontier:
                    lo = frontier + 1
                if lo > hi:
                    continue
                lines.extend(range(lo, hi + 1))
                frontier = hi
        else:
            # descending frontier (only legal for single-site bodies):
            # new lines appear below the lowest line touched so far
            mask = np.empty(trips, dtype=bool)
            mask[0] = True
            np.less(start[1:], start[:-1], out=mask[1:])
            floor_line = None
            for t in np.flatnonzero(mask):
                lo = int(start[t])
                hi = int(end[t])
                if floor_line is not None and hi >= floor_line:
                    hi = floor_line - 1
                if lo > hi:
                    continue
                lines.extend(range(lo, hi + 1))
                floor_line = lo
        return lines, node

    def _single_line_stats(self, line: int, is_write: bool, home):
        """One-line cached plan for straight-line accesses (fast engine).

        The L1-hit fast path (``BatchDatapath.execute_single``) defers
        any single that misses L1 or would trigger prefetch fills; those
        land here and replay a cached one-segment plan through the same
        inlined datapath the flat loops use, instead of the per-line
        reference dispatch.  Keys share the loop plan cache (and its
        memory budget); the leading tag cannot collide with loop keys,
        which start with ``id(loop)``.
        """
        port = self.port
        rhome = port.node if home is None else home
        key = ("single", line, is_write, rhome)
        plan = self.plan_cache.get(key)
        if plan is None:
            pg = line >> port._page_shift
            seg = PlanSegment(
                "store" if is_write else "load", [line], home, 0,
                op=OP_DEMAND_WRITE if is_write else OP_DEMAND_READ,
                rhome=rhome, remote=rhome != port.node,
                first_page=pg, last_page=pg,
            )
            plan = AccessPlan(segments=[seg], total_lines=1, runs=[seg],
                              home0=rhome, remote0=seg.remote)
            self.plan_cache.put(key, None, (), plan)
        return self._datapath.execute_plan(plan)

    # ------------------------------------------------------------------
    # slow path: straight-line instruction
    # ------------------------------------------------------------------
    def _exec_single(self, node, ivs, buffers, dram_bpc, result) -> None:
        result.instructions += 1
        if isinstance(node, VecOp):
            if node.flops:
                self.pmu.add_fp(node.width_bits, node.precision, 1,
                                node.op == "fma")
            cost = self.ports.fp_issue_cycles({(node.op, node.width_bits): 1})
            result.cycles += cost
            bus = self.bus
            if bus.enabled:
                # a retired-op batch with a cycle stamp: without it the
                # timeline sampler could not attribute straight-line
                # flops (or their issue cycles) to a window
                bus.emit(TraceEvent(
                    PHASE, f"instr:{node.op}", bus.cursor,
                    core=self.core_id, dur=cost,
                    args={
                        "trips": 1,
                        "dominant": "fp_issue",
                        "bounds": {"fp_issue": cost},
                        "batch": {},
                        "dram_bpc": dram_bpc,
                        "mlp": self.timing.mlp,
                        "reissue_slots": 0,
                        "reissue_flops": 0,
                        "instructions": 1,
                        "flops": node.flops,
                    },
                ))
                bus.cursor += cost
            return
        if isinstance(node, GatherLoad):
            alloc = buffers[node.buffer]
            table = self._tables[node.index_addr.buffer]
            base = alloc.base + int(table[node.index_addr.evaluate(ivs)])
            shift = self._line_shift
            first = base >> shift
            last = (base + node.bytes - 1) >> shift
            stats = None
            if first == last and self.engine == "fast":
                dp = self._datapath
                if dp._use_c:
                    stats = dp.execute_single_c(first, False, alloc.node)
                elif dp._inline:
                    stats = dp.execute_single(first, False, alloc.node)
                    if stats is None:
                        stats = self._single_line_stats(first, False,
                                                        alloc.node)
            if stats is None:
                stats = self.port.access_lines(
                    list(range(first, last + 1)), is_write=False,
                    node=alloc.node
                )
            cost = phase_cycles(
                self.ports, self.config, {}, {node.width_bits: 1}, {},
                chain_cycles=0.0, batch=stats, params=self.timing,
                dram_bytes_per_cycle=dram_bpc,
            )
            result.cycles += cost.total
            result.batch.merge(stats)
            result.phases.append(cost)
            self._emit_single_phase("gather", cost, stats, dram_bpc)
            return
        addr = node.addr
        alloc = buffers[addr.buffer]
        base = alloc.base + addr.offset + sum(
            ivs[lid] * s for lid, s in addr.strides
        )
        width_bytes = getattr(node, "width_bits", 64) // 8
        shift = self._line_shift
        first = base >> shift
        last = (base + max(width_bytes - 1, 0)) >> shift
        lines = list(range(first, last + 1))
        if isinstance(node, PrefetchHint):
            stats = self.port.software_prefetch(lines, node=alloc.node)
        elif isinstance(node, Flush):
            stats = self.port.flush_lines(lines, node=alloc.node)
        elif isinstance(node, Load) or (
                isinstance(node, Store) and not node.nt):
            is_write = isinstance(node, Store)
            stats = None
            if first == last and self.engine == "fast":
                dp = self._datapath
                if dp._use_c:
                    stats = dp.execute_single_c(first, is_write, alloc.node)
                elif dp._inline:
                    stats = dp.execute_single(first, is_write, alloc.node)
                    if stats is None:
                        stats = self._single_line_stats(first, is_write,
                                                        alloc.node)
            if stats is None:
                stats = self.port.access_lines(lines, is_write=is_write,
                                               node=alloc.node)
        elif isinstance(node, Store):
            stats = self.port.access_lines(lines, is_write=True, nt=True,
                                           node=alloc.node)
        else:
            raise ExecutionError(f"cannot execute node {node!r}")
        cost = phase_cycles(
            self.ports, self.config,
            {},
            {node.width_bits: 1} if isinstance(node, Load) else {},
            {node.width_bits: 1} if isinstance(node, Store) else {},
            chain_cycles=0.0, batch=stats, params=self.timing,
            dram_bytes_per_cycle=dram_bpc,
        )
        result.cycles += cost.total
        result.batch.merge(stats)
        result.phases.append(cost)
        self._emit_single_phase(type(node).__name__.lower(), cost, stats,
                                dram_bpc)

    def _emit_single_phase(self, label: str, cost: PhaseCost,
                           stats: BatchStats, dram_bpc: float) -> None:
        """Trace one straight-line memory instruction as a tiny phase."""
        bus = self.bus
        if not bus.enabled:
            return
        bus.emit(TraceEvent(
            PHASE, f"instr:{label}", bus.cursor,
            core=self.core_id, dur=cost.total,
            args={
                "trips": 1,
                "dominant": cost.dominant,
                "bounds": cost.as_dict(),
                "batch": stats.as_dict(),
                "dram_bpc": dram_bpc,
                "mlp": self.timing.mlp,
                "reissue_slots": 0,
                "reissue_flops": 0,
                "instructions": 1,
                "flops": 0,
            },
        ))
        bus.cursor += cost.total

    # ------------------------------------------------------------------
    # body analysis (cached)
    # ------------------------------------------------------------------
    def _analyze(self, loop: Loop) -> _LoopInfo:
        # keyed by id() for speed; the cached tuple holds a strong
        # reference to the loop so its id can never be recycled
        cached = self._loop_info.get(id(loop))
        if cached is not None:
            return cached[1]
        fp_ops: Dict[Tuple[str, int], int] = {}
        fp_events: Dict[Tuple[int, str, bool], int] = {}
        dep_fp_events: Dict[Tuple[int, str, bool], int] = {}
        chains: Dict[str, int] = {}
        mem_sites: List[_MemSite] = []
        load_widths: Dict[int, int] = {}
        store_widths: Dict[int, int] = {}
        tainted = set()
        flops_per_trip = 0

        for instr in loop.body:
            if isinstance(instr, VecOp):
                key = (instr.op, instr.width_bits)
                fp_ops[key] = fp_ops.get(key, 0) + 1
                flops_per_trip += instr.flops
                if instr.flops:
                    ekey = (instr.width_bits, instr.precision, instr.op == "fma")
                    fp_events[ekey] = fp_events.get(ekey, 0) + 1
                    if any(src.name in tainted for src in instr.srcs):
                        dep_fp_events[ekey] = dep_fp_events.get(ekey, 0) + 1
                        tainted.add(instr.dst.name)
                if instr.dst in instr.srcs:
                    chains[instr.dst.name] = (
                        chains.get(instr.dst.name, 0) + self.ports.latency(instr.op)
                    )
            elif isinstance(instr, Load):
                tainted.add(instr.dst.name)
                load_widths[instr.width_bits] = (
                    load_widths.get(instr.width_bits, 0) + 1
                )
                mem_sites.append(self._site(instr, "load", instr.width_bits))
            elif isinstance(instr, GatherLoad):
                tainted.add(instr.dst.name)
                load_widths[instr.width_bits] = (
                    load_widths.get(instr.width_bits, 0) + 1
                )
                mem_sites.append(self._site(instr, "gather",
                                            instr.width_bits))
            elif isinstance(instr, Store):
                kind = "ntstore" if instr.nt else "store"
                store_widths[instr.width_bits] = (
                    store_widths.get(instr.width_bits, 0) + 1
                )
                mem_sites.append(self._site(instr, kind, instr.width_bits))
            elif isinstance(instr, PrefetchHint):
                mem_sites.append(self._site(instr, "prefetch", 64))
            elif isinstance(instr, Flush):
                mem_sites.append(self._site(instr, "flush", 64))
            else:
                raise ExecutionError(f"unexpected node in flat loop: {instr!r}")

        # symbolic-tier structural key: loop/kernel identity only, no
        # size-dependent values (trips, strides, bases) — the dgemm
        # kernel at n=64 and n=160 must produce the same key
        skey = None
        if mem_sites and loop.trips > 0:
            parts: Optional[list] = []
            for site in mem_sites:
                if site.kind == "gather":
                    parts = None
                    break
                addr = site.instr.addr
                own = 0
                for lid, s in addr.strides:
                    if lid == loop.loop_id:
                        own = s
                if own < 0:
                    parts = None
                    break
                parts.append((site.kind, site.width_bits, addr.buffer,
                              tuple(lid for lid, _s in addr.strides)))
            if parts is not None:
                skey = (loop.loop_id, tuple(parts))

        # phase skeleton: trip counts are static per loop object, so the
        # whole-phase scaling (seed code redid this every execution) is
        # folded into the analysis cache
        trips = loop.trips
        chain_latency = max(chains.values(), default=0)
        dep_fp_terms = []
        for (width, prec, is_fma), instrs in dep_fp_events.items():
            lanes = width // (64 if prec == "f64" else 32)
            dep_fp_terms.append((
                (width, prec, is_fma), instrs,
                instrs * lanes * (2 if is_fma else 1),
            ))
        info = _LoopInfo(
            fp_ops=fp_ops,
            fp_events=fp_events,
            dep_fp_events=dep_fp_events,
            chain_latency=chain_latency,
            mem_sites=mem_sites,
            load_widths=load_widths,
            store_widths=store_widths,
            body_instructions=len(loop.body),
            flops_per_trip=flops_per_trip,
            fp_ops_total={k: c * trips for k, c in fp_ops.items()},
            load_widths_total={w: c * trips for w, c in load_widths.items()},
            store_widths_total={w: c * trips for w, c in store_widths.items()},
            chain_cycles_total=float(chain_latency * trips),
            fp_events_total=[
                (key, instrs * trips) for key, instrs in fp_events.items()
            ],
            dep_fp_terms=dep_fp_terms,
            skey=skey,
            sid_tuple=tuple(s.site_id for s in mem_sites),
        )
        self._loop_info[id(loop)] = (loop, info)
        return info

    def _site(self, instr, kind: str, width_bits: int) -> _MemSite:
        site = _MemSite(instr, kind, width_bits, self._next_site_id)
        self._next_site_id += 1
        return site
