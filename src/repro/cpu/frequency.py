"""Core frequency governor with a Turbo Boost model.

The paper disables Turbo Boost for every experiment because a clock that
depends on the number of active cores (and drifts thermally) makes both
the measured roofs and the kernel points irreproducible.  The governor
models exactly that hazard: with turbo enabled the frequency is a
function of active-core count, so experiment F11 can demonstrate *why*
the paper pins the clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError


@dataclass
class FrequencyGovernor:
    """Clock source for all cores of a machine.

    ``turbo_steps[k-1]`` is the frequency with ``k`` active cores; with
    more active cores than steps, the last entry applies.
    """

    base_hz: float
    turbo_steps: Tuple[float, ...] = ()
    turbo_enabled: bool = False

    def __post_init__(self) -> None:
        if self.base_hz <= 0:
            raise ConfigurationError("base frequency must be positive")
        if any(step < self.base_hz for step in self.turbo_steps):
            raise ConfigurationError("turbo steps cannot be below base frequency")

    def frequency(self, active_cores: int = 1) -> float:
        """Clock in Hz given how many cores are busy."""
        if active_cores <= 0:
            raise ConfigurationError("active core count must be positive")
        if not self.turbo_enabled or not self.turbo_steps:
            return self.base_hz
        idx = min(active_cores, len(self.turbo_steps)) - 1
        return self.turbo_steps[idx]

    def disable_turbo(self) -> None:
        """The paper's configuration: fixed base clock."""
        self.turbo_enabled = False

    def enable_turbo(self) -> None:
        self.turbo_enabled = True

    def cycles_to_seconds(self, cycles: float, active_cores: int = 1) -> float:
        """Convert a cycle count to wall time at the operative clock."""
        return cycles / self.frequency(active_cores)
