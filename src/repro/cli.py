"""Command-line interface: ``python -m repro`` / ``repro-roofline``.

Subcommands:

* ``list``        — show machines, kernels, and experiments
* ``roofline``    — build and print a machine's measured roofline
* ``measure``     — measure one kernel and print its W/Q/T and point
* ``profile``     — measure one kernel with tracing: phase-level cycle
  attribution, bound breakdown, Chrome-trace / metrics export
* ``timeline``    — measure one kernel with windowed sampling: per-window
  bandwidth/hit-rate/IPC series and the roofline trajectory, exported
  as SVG/CSV/Chrome-trace artifacts under ``artifacts/timeline/``
* ``sweep``       — run a measurement grid (a named figure grid or an
  explicit kernel x size list) through the parallel sweep engine with
  content-addressed result caching
* ``ert``         — ERT-style ceiling discovery: sweep the parameterised
  microbenchmark over per-level working sets and flop chains, print the
  measured L1/L2/L3/DRAM bandwidth ceilings and compute roof
* ``analyze``     — the flagship: discover the machine's ceilings, sweep
  one kernel, and place it on every band of the hierarchical roofline
  (ASCII plot, per-level intensity table, SVG/JSON artifacts)
* ``experiment``  — run experiments and write EXPERIMENTS-style output
* ``conformance`` — differential-fuzz the fast interpreter against the
  reference oracle and check every kernel's measured W/Q against
  analytic closed forms; exits nonzero and writes a JSONL divergence
  report under ``artifacts/`` on any mismatch
* ``serve``       — roofline as a service: an asyncio HTTP/JSON server
  (``POST /measure|/analyze|/sweep``, job polling, NDJSON progress
  streams, Prometheus ``/metrics``) with request coalescing through
  the sweep cache and graceful drain on SIGTERM (docs/SERVICE.md)
* ``worker``      — one sweep worker process connecting back to a
  socket-backend listener (``--connect HOST:PORT``); normally spawned
  by the backend, started manually for external fleets
* ``cache``       — sweep-cache maintenance: ``cache gc --max-bytes
  2G --max-age 30d`` bounds the on-disk result cache (oldest first)

``measure``, ``roofline``, and ``sweep`` accept ``--json`` for
machine-readable output; ``profile`` and ``sweep`` add ``--trace-out``
(Chrome trace-event JSON, loadable in Perfetto) and ``--metrics-out``
(Prometheus text format).  The global ``--jobs N`` / ``--no-cache`` /
``--cache-dir`` flags (also accepted after ``sweep``/``experiment``)
control how measurement grids execute: ``--jobs`` fans points over a
process pool (``$REPRO_SWEEP_JOBS`` then ``$REPRO_JOBS`` when the flag
is absent), ``--no-cache`` forces re-simulation of every point, and
``--backend serial|pool|socket`` picks where points execute — the
three are bit-identical (docs/SWEEP.md).

Parallel sweeps collect distributed telemetry by default (see
:mod:`repro.obs.remote`): ``sweep --flame-out`` exports the merged
host+workers flame view, ``sweep --live`` renders an in-terminal
dashboard, and ``--telemetry``/``--no-telemetry`` override the
collection default.  When a point raises or a worker dies, the error
message names the flight-recorder dump under ``artifacts/flightrec/``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .errors import ReproError
from .experiments import ExperimentConfig, experiment_ids, run_experiments
from .experiments.report import render_report, write_artifacts
from .kernels import kernel_names, make_kernel
from .machine.presets import PRESETS, make_machine
from .machine.ref import MachineRef
from .measure import explain_kernel, measure_kernel
from .roofline import KernelPoint, analyze_point, ascii_plot, build_roofline
from .roofline.ert import DEFAULT_FLOP_COUNTS, LEVELS, discover_ceilings
from .roofline.export import to_json as roofline_to_json
from .roofline.hierarchical import HierarchicalRoofline
from .roofline.hierarchical import analyze as hierarchical_analyze
from .roofline.plot_svg import save_svg, svg_plot
from .sweep import (
    GRIDS,
    SweepCache,
    SweepPlan,
    SweepStats,
    make_grid,
    measurement_to_payload,
    run_plan,
)
from .trace import (
    RooflineTrajectory,
    TimelineConfig,
    TraceCollector,
    measurement_to_dict,
    timeline_from_events,
    to_chrome_trace,
    to_prometheus,
)
from .trace.bus import ListSink, TraceBus
from .units import format_bandwidth, format_bytes, format_flops, format_time


def _cmd_list(_args) -> int:
    print("machines: ", ", ".join(sorted(PRESETS)))
    print("kernels:  ", ", ".join(kernel_names()))
    print("experiments:", ", ".join(experiment_ids()))
    return 0


def _cmd_roofline(args) -> int:
    machine = make_machine(args.machine, scale=args.scale)
    cores = machine.topology.first_cores(args.threads)
    model = build_roofline(machine, cores=cores,
                           include_thread_scaling=args.threads > 1)
    if args.json:
        print(roofline_to_json(model))
        return 0
    print(ascii_plot(model))
    return 0


def _cmd_measure(args) -> int:
    machine = make_machine(args.machine, scale=args.scale,
                           engine=args.engine)
    kernel = make_kernel(args.kernel)
    cores = machine.topology.first_cores(args.threads)
    m = measure_kernel(machine, kernel, args.n, protocol=args.protocol,
                       cores=cores, reps=args.reps)
    if args.json:
        print(json.dumps(measurement_to_dict(m), indent=2))
        return 0
    print(f"kernel    : {kernel.describe()}")
    print(f"machine   : {machine.spec.name}, {args.threads} thread(s), "
          f"{args.protocol} caches")
    print(f"W counted : {m.work_flops:.0f} flops "
          f"(true {m.true_flops}, x{m.work_overcount:.2f})")
    print(f"Q measured: {format_bytes(m.traffic_bytes)} "
          f"(compulsory {format_bytes(m.compulsory_bytes)}, "
          f"x{m.traffic_ratio:.2f})")
    print(f"T runtime : {format_time(m.runtime_seconds)}")
    print(f"P         : {format_flops(m.performance)}")
    print(f"I         : {m.intensity:.4f} flops/byte")
    if args.plot:
        model = build_roofline(machine, cores=cores)
        point = KernelPoint.from_measurement(m)
        print()
        print(ascii_plot(model, points=[point]))
        print(analyze_point(model, point).summary())
    return 0


def _cmd_profile(args) -> int:
    machine = make_machine(args.machine, scale=args.scale,
                           engine=args.engine)
    kernel = make_kernel(args.kernel)
    cores = machine.topology.first_cores(args.threads)
    collector = TraceCollector(machine)
    m = measure_kernel(machine, kernel, args.n, protocol=args.protocol,
                       cores=cores, reps=args.reps, trace=collector)
    if args.trace_out:
        doc = to_chrome_trace(
            collector.events,
            frequency_hz=collector.frequency_hz or machine.spec.base_hz,
            machine_name=machine.spec.name,
        )
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(collector.summary()))
    if args.json:
        print(json.dumps(measurement_to_dict(m), indent=2))
    else:
        summary = collector.summary()
        print(f"kernel    : {kernel.describe()}")
        print(f"machine   : {machine.spec.name}, {args.threads} thread(s), "
              f"{args.protocol} caches")
        print(f"W counted : {m.work_flops:.0f} flops "
              f"(true {m.true_flops}, x{m.work_overcount:.2f})")
        print(f"Q measured: {format_bytes(m.traffic_bytes)} "
              f"(compulsory {format_bytes(m.compulsory_bytes)}, "
              f"x{m.traffic_ratio:.2f})")
        print(f"T runtime : {format_time(m.runtime_seconds)}")
        print(f"P         : {format_flops(m.performance)}")
        print(f"I         : {m.intensity:.4f} flops/byte")
        print()
        print(collector.phase_table())
        print()
        print(collector.bound_attribution())
        reissue = summary["reissue"]
        if reissue["slots"]:
            print(f"reissue   : {reissue['slots']} slots re-counted "
                  f"{reissue['overcounted_flops']} flops")
        engines = summary["prefetch_engines"]
        if engines:
            parts = ", ".join(
                f"{kind}: {stats['issued']} issued"
                f" ({100.0 * stats['accuracy']:.0f}% useful)"
                for kind, stats in sorted(engines.items())
            )
            print(f"prefetch  : {parts}")
    if args.trace_out:
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return 0


#: convenience spellings for the timeline CLI — the registry names the
#: dgemm/dgemv variants explicitly, but "the dgemm" of the paper's
#: figures is the tiled one (and dgemv the row-major walk)
_KERNEL_ALIASES = {"dgemm": "dgemm-tiled", "dgemv": "dgemv-row"}


def _default_timeline_n(name: str) -> int:
    """A problem size big enough to span many 10k-cycle windows."""
    if name.startswith("dgemm"):
        return 96
    if name.startswith("dgemv"):
        return 768
    if name == "fft" or name.startswith("spmv") or name == "stencil3":
        return 8192
    return 65536


def _cmd_timeline(args) -> int:
    # validate the window before paying for a measurement
    config = TimelineConfig(args.window)
    kernel_name = _KERNEL_ALIASES.get(args.kernel, args.kernel)
    machine = make_machine(args.machine, scale=args.scale,
                           engine=args.engine)
    kernel = make_kernel(kernel_name)
    n = args.n if args.n is not None else _default_timeline_n(kernel_name)
    cores = machine.topology.first_cores(args.threads)
    # collect the raw event stream (so the Chrome export keeps its phase
    # spans) and window it afterwards
    collector = TraceCollector(machine)
    m = measure_kernel(machine, kernel, n, protocol=args.protocol,
                       cores=cores, reps=args.reps, trace=collector)
    timeline = timeline_from_events(collector.events, config,
                                    machine=machine)
    label = f"{kernel_name} n={n} ({args.protocol})"
    trajectory = RooflineTrajectory.from_timeline(timeline, label=label)

    want_svg, want_csv, want_chrome = args.svg, args.csv, args.chrome
    if not (want_svg or want_csv or want_chrome):
        want_svg = want_csv = want_chrome = True
    os.makedirs(args.out_dir, exist_ok=True)
    stem = os.path.join(
        args.out_dir,
        f"{kernel_name}_n{n}_{machine.spec.name}_w{args.window:g}",
    )
    written = {}
    if want_svg:
        model = build_roofline(machine, cores=cores,
                               include_thread_scaling=args.threads > 1)
        svg = svg_plot(model, timeline=trajectory,
                       title=f"Roofline trajectory: {label} "
                             f"on {machine.spec.name}")
        written["svg"] = stem + ".svg"
        with open(written["svg"], "w", encoding="utf-8") as handle:
            handle.write(svg)
    if want_csv:
        written["csv"] = stem + ".csv"
        with open(written["csv"], "w", encoding="utf-8") as handle:
            handle.write(timeline.to_csv())
        written["trajectory_csv"] = stem + ".trajectory.csv"
        with open(written["trajectory_csv"], "w", encoding="utf-8") as handle:
            handle.write(trajectory.to_csv())
    if want_chrome:
        doc = to_chrome_trace(collector.events,
                              frequency_hz=machine.spec.base_hz,
                              machine_name=machine.spec.name,
                              timeline=timeline)
        written["chrome"] = stem + ".trace.json"
        with open(written["chrome"], "w", encoding="utf-8") as handle:
            json.dump(doc, handle)

    if args.json:
        print(json.dumps({
            "measurement": measurement_to_dict(m),
            "timeline": timeline.to_json_doc(),
            "trajectory": trajectory.to_json_doc(),
            "artifacts": written,
        }, indent=2))
    else:
        print(f"kernel    : {kernel.describe()}")
        print(f"machine   : {machine.spec.name}, {args.threads} thread(s), "
              f"{args.protocol} caches")
        print(f"window    : {args.window:g} cycles x {len(timeline)} "
              f"window(s) over {timeline.span:.0f} measured cycles")
        print(f"P         : {format_flops(m.performance)}   "
              f"I: {m.intensity:.4f} flops/byte")
        print()
        print(timeline.window_table())
        if trajectory.points:
            model = build_roofline(machine, cores=cores,
                                   include_thread_scaling=args.threads > 1)
            print()
            print(ascii_plot(model, timeline=trajectory))
    for kind, path in sorted(written.items()):
        print(f"{kind} written to {path}", file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    machine = make_machine(args.machine, scale=args.scale)
    kernel = make_kernel(args.kernel)
    report = explain_kernel(machine, kernel, args.n, protocol=args.protocol)
    print(report.render())
    return 0


def _sweep_machine_ref(machine: str, scale: float,
                       engine: str = "fast") -> MachineRef:
    """CLI machine selection as a picklable ref (tiny takes no scale)."""
    if machine == "tiny":
        return MachineRef.of("tiny", engine=engine)
    return MachineRef.of(machine, scale=scale, engine=engine)


def _cmd_sweep(args) -> int:
    from .obs.dashboard import SweepDashboard
    from .obs.spans import SPANS
    from .sweep.executor import resolve_jobs

    ref = _sweep_machine_ref(args.machine, args.scale, args.engine)
    if args.grid:
        plan = make_grid(args.grid, ref, quick=args.quick, reps=args.reps)
    else:
        if not args.kernel or not args.sizes:
            print("error: sweep needs either --grid or KERNEL --sizes N,..",
                  file=sys.stderr)
            return 2
        sizes = [int(s) for s in args.sizes.split(",") if s]
        cores = tuple(ref.build().topology.first_cores(args.threads))
        plan = SweepPlan()
        for protocol in args.protocol.split(","):
            plan.add_sweep(ref, args.kernel, sizes, protocol=protocol,
                           reps=args.reps, cores=cores)

    cache = None if args.no_cache else SweepCache(args.cache_dir)
    bus = TraceBus()
    sink = ListSink()
    bus.attach(sink)

    def progress(done: int, total: int, point, status: str) -> None:
        if not args.json and not args.live:
            print(f"[{done}/{total}] {status:7s} {point.label()}")

    dashboard = None
    if args.live:
        dashboard = SweepDashboard(total=len(plan),
                                   jobs=resolve_jobs(args.jobs))
    try:
        run = run_plan(plan, jobs=args.jobs, cache=cache, bus=bus,
                       progress=progress, telemetry=args.telemetry,
                       on_point=dashboard.update if dashboard else None,
                       backend=args.backend)
    finally:
        if dashboard is not None:
            dashboard.close()
    if args.trace_out:
        doc = to_chrome_trace(sink.events, frequency_hz=1.0,
                              machine_name=f"sweep {ref.describe()}")
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.flame_out:
        # the merged host+workers flame: parent spans on tid 0, worker
        # spans (absorbed by the telemetry merge) on per-pid tracks
        with open(args.flame_out, "w", encoding="utf-8") as handle:
            json.dump(SPANS.to_chrome_trace(
                process_name=f"sweep {ref.describe()}"), handle)
        print(f"flame written to {args.flame_out}", file=sys.stderr)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus({
                "sweep": run.stats.to_dict(),
                "plan_cache": run.plan_cache,
                "workers": run.telemetry.get("workers", []),
            }))
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if args.json:
        print(json.dumps({
            "machine": ref.key_doc(),
            "backend": run.backend,
            "stats": run.stats.to_dict(),
            "plan_cache": run.plan_cache,
            "telemetry": run.telemetry,
            "keys": run.keys,
            "measurements": [measurement_to_payload(m)
                             for m in run.measurements],
        }, indent=2))
        return 0
    print()
    print(f"{'kernel':<14} {'n':>9} {'proto':<5} {'threads':>7} "
          f"{'I [F/B]':>9} {'P [Gflop/s]':>12}")
    for m in run.measurements:
        print(f"{m.kernel:<14} {m.n:>9} {m.protocol:<5} {m.threads:>7} "
              f"{m.intensity:>9.4f} {m.performance / 1e9:>12.3f}")
    print()
    print(f"cache: {run.stats.describe()}")
    pc = run.plan_cache
    if pc.get("hits", 0) or pc.get("misses", 0):
        print(f"plans: {pc['hits']} hit / {pc['misses']} built "
              f"({pc['hit_rate']:.0%} reuse, "
              f"{pc['built_lines']} lines lowered)")
    workers = run.telemetry.get("workers", [])
    if workers:
        parts = ", ".join(
            f"pid {w['pid']}: {w['points']} pt / {w['busy_seconds']:.2f}s"
            + (f" ({w['utilization']:.0%} busy)"
               if "utilization" in w else "")
            for w in workers
        )
        print(f"workers: {parts}")
    return 0


def _cmd_experiment(args) -> int:
    stats = SweepStats()
    config = ExperimentConfig(scale=args.scale, quick=args.quick,
                              reps=args.reps, jobs=args.jobs,
                              cache=not args.no_cache,
                              cache_dir=args.cache_dir,
                              backend=args.backend, stats=stats)
    ids = args.ids or None
    results = run_experiments(ids, config)
    report = render_report(results, config)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    if args.artifacts:
        written = write_artifacts(results, args.artifacts)
        print(f"{len(written)} artifact(s) written to {args.artifacts}")
    if stats.points:
        print(f"sweep cache: {stats.describe()}")
    return 0 if all(r.passed for r in results) else 1


def _cmd_conformance(args) -> int:
    import os
    import random

    from .oracle import (
        minimize_program,
        random_program,
        render_program,
        run_cross_engine,
        run_differential,
    )
    from .oracle.analytic import check_kernel, oracle_n

    # which differential checks to run per fuzz program: the fast
    # machine vs the textbook reference model ("oracle"), the fast
    # engine vs the per-line reference engine ("engine"), or both
    checks = []
    if args.diff in ("oracle", "both"):
        checks.append(("differential", run_differential))
    if args.diff in ("engine", "both"):
        checks.append(("cross_engine", run_cross_engine))

    report_path = args.report or os.path.join(
        "artifacts", "conformance", "report.jsonl"
    )
    records = []
    divergent = 0
    for i in range(args.n):
        # independent stream per program: failure i reproduces alone
        rng = random.Random(args.seed * 1_000_003 + i)
        program = random_program(rng)
        mask = rng.randint(0, 15)
        program_diverged = False
        for kind, run_diff in checks:
            outcome = run_diff(program, prefetch_mask=mask)
            if outcome.ok:
                continue
            program_diverged = True

            def still_diverges(p, _mask=mask, _run=run_diff):
                return not _run(p, prefetch_mask=_mask).ok

            minimized = minimize_program(program, still_diverges)
            min_outcome = run_diff(minimized, prefetch_mask=mask)
            records.append({
                "kind": kind,
                "seed": args.seed,
                "index": i,
                "prefetch_mask": mask,
                "divergences": [d.as_dict() for d in outcome.divergences],
                "minimized_divergences": [
                    d.as_dict() for d in min_outcome.divergences
                ],
                "minimized_program": render_program(minimized),
                "program": render_program(program),
            })
            print(f"DIVERGENCE ({kind}) at index {i} (mask {mask}): "
                  f"{outcome.divergences[0]}")
        divergent += program_diverged
        if (i + 1) % 500 == 0:
            print(f"  {i + 1}/{args.n} programs, {divergent} divergent")

    kernel_problems = 0
    if args.kernels != "none":
        names = (kernel_names() if args.kernels == "all"
                 else [k.strip() for k in args.kernels.split(",")])
        for name in names:
            problems = check_kernel(name)
            if problems:
                kernel_problems += len(problems)
                records.append({
                    "kind": "analytic",
                    "kernel": name,
                    "n": oracle_n(name),
                    "problems": problems,
                })
                for p in problems:
                    print(f"ANALYTIC MISMATCH: {p}")
        print(f"  {len(names)} kernels checked, "
              f"{kernel_problems} analytic mismatch(es)")

    summary = {
        "kind": "summary",
        "programs": args.n,
        "seed": args.seed,
        "diff": args.diff,
        "divergent_programs": divergent,
        "analytic_mismatches": kernel_problems,
    }
    os.makedirs(os.path.dirname(report_path), exist_ok=True)
    with open(report_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(summary) + "\n")
        for record in records:
            handle.write(json.dumps(record) + "\n")

    failed = divergent or kernel_problems
    print(f"conformance: {args.n} programs, {divergent} divergent; "
          f"kernel oracles: {kernel_problems} mismatch(es); "
          f"report: {report_path}")
    return 1 if failed else 0


def _cmd_selfprofile(args) -> int:
    """Run one kernel sweep under the host-side span profiler."""
    from .obs import REGISTRY, SPANS

    kernel_name = _KERNEL_ALIASES.get(args.kernel, args.kernel)
    ref = _sweep_machine_ref(args.machine, args.scale, args.engine)
    cores = tuple(ref.build().topology.first_cores(args.threads))
    sizes = ([int(s) for s in args.sizes.split(",") if s]
             if args.sizes else [args.n])
    plan = SweepPlan()
    plan.add_sweep(ref, kernel_name, sizes, protocol=args.protocol,
                   reps=args.reps, cores=cores)
    # caching is off by default: a cache hit would replay stored bytes
    # and the profile would show sweep.cache.probe and nothing else
    cache = SweepCache(args.cache_dir) if args.cache else None

    SPANS.reset()
    REGISTRY.reset()
    SPANS.enable()
    try:
        # serial on purpose — pool workers inherit fresh, disabled
        # profilers, so a parallel run would profile only the submit loop
        run = run_plan(plan, jobs=1, cache=cache)
    finally:
        SPANS.disable()

    os.makedirs(args.out_dir, exist_ok=True)
    stem = os.path.join(
        args.out_dir,
        f"{kernel_name}_n{'-'.join(str(s) for s in sizes)}_{args.machine}",
    )
    flame_path = stem + ".trace.json"
    with open(flame_path, "w", encoding="utf-8") as handle:
        json.dump(SPANS.to_chrome_trace(
            process_name=f"repro selfprofile {kernel_name}"
        ), handle)
    metrics_path = stem + ".metrics.prom"
    with open(metrics_path, "w", encoding="utf-8") as handle:
        handle.write(REGISTRY.to_prometheus())

    dropped = SPANS.dropped
    if args.json:
        print(json.dumps({
            "kernel": kernel_name,
            "sizes": sizes,
            "machine": ref.key_doc(),
            "stats": run.stats.to_dict(),
            "plan_cache": run.plan_cache,
            "dropped": dropped,
            "profile": SPANS.to_json_doc(),
            "metrics": REGISTRY.to_json_doc(),
            "artifacts": {"flame": flame_path, "metrics": metrics_path},
        }, indent=2))
    else:
        print(f"kernel    : {kernel_name} "
              f"n={','.join(str(s) for s in sizes)} ({args.protocol})")
        print(f"machine   : {ref.describe()}, {args.threads} thread(s), "
              f"engine={args.engine}")
        print(f"host time : {run.stats.elapsed_seconds:.3f} s over "
              f"{run.stats.points} point(s)")
        print(f"spans     : {len(SPANS.records)} retained, "
              f"{dropped} dropped past the retention cap")
        pc = run.plan_cache
        if pc.get("hits", 0) or pc.get("misses", 0):
            print(f"plans     : {pc['hits']} hit / {pc['misses']} built "
                  f"({pc['hit_rate']:.0%} reuse)")
        print()
        print(SPANS.hotspot_table(args.top))
    if dropped:
        print(f"warning: {dropped} span(s) exceeded the retention cap — "
              f"the flame view is truncated (aggregates stay complete)",
              file=sys.stderr)
    print(f"flame trace written to {flame_path}", file=sys.stderr)
    print(f"metrics written to {metrics_path}", file=sys.stderr)
    SPANS.reset()
    return 0


def _parse_flop_counts(text: str) -> List[int]:
    counts = [int(s) for s in text.split(",") if s]
    return counts or list(DEFAULT_FLOP_COUNTS)


def _print_ceiling_table(ceilings) -> None:
    print(f"machine : {ceilings.machine.describe()}")
    print(f"compute : {ceilings.compute_label()}")
    print()
    print(f"{'level':<5} {'bandwidth':>14} {'n':>9} {'flops/elem':>10} "
          f"{'working set':>12}")
    for c in ceilings.ordered():
        print(f"{c.level:<5} {format_bandwidth(c.bytes_per_second):>14} "
              f"{c.n:>9} {c.flops_per_elem:>10} "
              f"{format_bytes(c.working_set_bytes):>12}")


def _cmd_ert(args) -> int:
    ref = _sweep_machine_ref(args.machine, args.scale, args.engine)
    cache = None if args.no_cache else SweepCache(args.cache_dir)
    ceilings = discover_ceilings(
        ref, flop_counts=_parse_flop_counts(args.flops),
        sweeps=args.sweeps, reps=args.reps,
        jobs=args.jobs, cache=cache, backend=args.backend,
    )
    roofline = HierarchicalRoofline.from_ceilings(ceilings)
    if args.json:
        print(json.dumps({
            "machine": ceilings.machine.key_doc(),
            "hierarchical": roofline.to_dict(),
            "grid_points": len(ceilings.measurements),
            "stats": (ceilings.sweep_stats.to_dict()
                      if ceilings.sweep_stats is not None else None),
        }, indent=2))
        return 0
    _print_ceiling_table(ceilings)
    if args.plot:
        print()
        print(ascii_plot(roofline.to_model()))
    if args.svg:
        save_svg(svg_plot(roofline.to_model(),
                          title=f"ERT ceilings: {roofline.name}"),
                 args.svg)
        print(f"\nsvg written to {args.svg}", file=sys.stderr)
    return 0


def _cmd_analyze(args) -> int:
    kernel_name = _KERNEL_ALIASES.get(args.kernel, args.kernel)
    sizes = [int(s) for s in args.sizes.split(",") if s]
    if not sizes:
        print("error: analyze needs --sizes N,N,..", file=sys.stderr)
        return 2
    ref = _sweep_machine_ref(args.machine, args.scale, args.engine)
    cache = None if args.no_cache else SweepCache(args.cache_dir)
    result = hierarchical_analyze(
        kernel_name, sizes, machine=ref, protocol=args.protocol,
        reps=args.reps, flop_counts=_parse_flop_counts(args.flops),
        jobs=args.jobs, cache=cache, backend=args.backend,
    )
    if args.json:
        print(json.dumps(result.to_json_doc(), indent=2))
        return 0
    _print_ceiling_table(result.ceilings)
    print()
    print(result.ascii())
    print()
    intensities = result.intensities()
    print(f"{'n':>9} {'P [Gflop/s]':>12} "
          + " ".join(f"{'I@' + level + ' [F/B]':>12}" for level in LEVELS))
    for i, m in enumerate(result.measurements):
        print(f"{m.n:>9} {m.performance / 1e9:>12.3f} "
              + " ".join(f"{intensities[level][i]:>12.4f}"
                         for level in LEVELS))
    if args.svg or args.json_out:
        os.makedirs(args.out_dir, exist_ok=True)
    stem = f"{kernel_name}_{args.machine}"
    if args.svg:
        path = os.path.join(args.out_dir, f"{stem}.svg")
        save_svg(result.svg(), path)
        print(f"\nsvg written to {path}", file=sys.stderr)
    if args.json_out:
        path = os.path.join(args.out_dir, f"{stem}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(result.to_json_doc(), handle, indent=2)
        print(f"analysis json written to {path}", file=sys.stderr)
    return 0


def _cmd_benchgate(args) -> int:
    """Diff fresh bench numbers against committed baselines."""
    from .obs.benchgate import BenchGateError, run_gate

    baselines = args.baseline or [
        path for path in ("BENCH_engine.json", "BENCH_timeline.json",
                          "BENCH_selfprofile.json", "BENCH_ert.json",
                          "BENCH_disttrace.json")
        if os.path.exists(path)
    ]
    if not baselines:
        print("error: no --baseline given and no BENCH_*.json found "
              "in the current directory", file=sys.stderr)
        return 2
    if args.current and len(baselines) != 1:
        print("error: --current compares against exactly one --baseline",
              file=sys.stderr)
        return 2

    failures = 0
    for baseline_path in baselines:
        print(f"== {baseline_path}")
        try:
            results = run_gate(
                baseline_path,
                current_path=args.current,
                tolerance_scale=args.tolerance,
                slowdown=args.inject_slowdown,
                repeats=args.repeats,
            )
        except BenchGateError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for result in results:
            print(f"  {result.describe()}")
        failures += sum(1 for r in results if not r.ok)
    if failures:
        print(f"benchgate: {failures} regression(s)", file=sys.stderr)
        return 1
    print("benchgate: all gates passed")
    return 0


def _cmd_worker(args) -> int:
    """Join a socket sweep as one worker process."""
    from .sweep.worker import worker_main

    return worker_main(args.connect, heartbeat=args.heartbeat)


def _cmd_serve(args) -> int:
    """Run the roofline HTTP service until SIGTERM/SIGINT."""
    import asyncio

    from .serve import RooflineServer

    server = RooflineServer(
        host=args.host, port=args.port, jobs=args.jobs,
        backend=args.backend, cache_dir=args.cache_dir,
        no_cache=args.no_cache, threads=args.threads,
    )

    async def _run() -> None:
        await server.start()
        host, port = server.address
        print(f"repro serve listening on http://{host}:{port} "
              f"(backend={args.backend or 'auto'}, "
              f"jobs={args.jobs or 'auto'})", file=sys.stderr)
        sys.stderr.flush()
        await server.serve_forever()
        print("repro serve drained cleanly", file=sys.stderr)

    asyncio.run(_run())
    return 0


_SIZE_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}
_AGE_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def _parse_size(text: str) -> int:
    """'500M' / '2g' / '1048576' -> bytes."""
    text = text.strip().lower()
    scale = _SIZE_SUFFIXES.get(text[-1:], None)
    digits = text[:-1] if scale else text
    try:
        return int(float(digits) * (scale or 1))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad size {text!r}; use bytes or a K/M/G suffix")


def _parse_age(text: str) -> float:
    """'7d' / '12h' / '45m' / '3600' -> seconds."""
    text = text.strip().lower()
    scale = _AGE_SUFFIXES.get(text[-1:], None)
    digits = text[:-1] if scale else text
    try:
        return float(digits) * (scale or 1.0)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad age {text!r}; use seconds or an s/m/h/d suffix")


def _cmd_cache(args) -> int:
    """Sweep-cache maintenance (currently: gc)."""
    cache = SweepCache(args.cache_dir)
    if args.cache_command == "gc":
        if args.max_bytes is None and args.max_age is None:
            print("error: cache gc needs --max-bytes and/or --max-age",
                  file=sys.stderr)
            return 2
        summary = cache.gc(max_bytes=args.max_bytes,
                           max_age_seconds=args.max_age)
        if args.json:
            print(json.dumps({"root": cache.root, **summary}, indent=2))
        else:
            print(f"cache gc: {cache.root}")
            print(f"  scanned  : {summary['scanned']} entr(y/ies)")
            print(f"  removed  : {summary['removed']} "
                  f"({format_bytes(summary['reclaimed_bytes'])} "
                  f"reclaimed)")
            print(f"  kept     : {format_bytes(summary['kept_bytes'])}")
        return 0
    print(f"error: unknown cache command {args.cache_command!r}",
          file=sys.stderr)
    return 2


def _add_sweep_flags(parser: argparse.ArgumentParser,
                     suppress: bool = False) -> None:
    """Jobs/cache flags, shared by the main parser and subparsers.

    Subparsers re-declare them with ``SUPPRESS`` defaults so a bare
    ``repro --jobs 4 sweep ...`` is not clobbered by the subparser's
    own default, while ``repro sweep --jobs 4 ...`` still works.
    """
    kw = {"default": argparse.SUPPRESS} if suppress else {}
    parser.add_argument(
        "--jobs", type=int, **(kw or {"default": None}),
        help="fan measurement points over N worker processes "
             "(default: $REPRO_SWEEP_JOBS, then $REPRO_JOBS, else serial)")
    parser.add_argument(
        "--backend", choices=("serial", "pool", "socket"),
        **(kw or {"default": None}),
        help="sweep execution backend: in-process (serial), local "
             "process pool (pool), or socket worker fleet (socket); "
             "default picks serial/pool from --jobs.  Results are "
             "bit-identical and cache-compatible across backends.")
    parser.add_argument(
        "--no-cache", action="store_true", **(kw or {"default": False}),
        help="bypass the sweep result cache (re-simulate every point)")
    parser.add_argument(
        "--cache-dir", **(kw or {"default": None}),
        help="sweep cache directory (default: artifacts/sweepcache or "
             "$REPRO_SWEEP_CACHE)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-roofline",
        description="Measured roofline models on a simulated machine "
                    "(ISPASS 2014 reproduction)",
    )
    _add_sweep_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list machines, kernels, experiments")

    p_roof = sub.add_parser("roofline", help="print a measured roofline")
    p_roof.add_argument("--machine", default="snb-ep")
    p_roof.add_argument("--scale", type=float, default=0.125)
    p_roof.add_argument("--threads", type=int, default=1)
    p_roof.add_argument("--json", action="store_true",
                        help="emit the model as JSON instead of a plot")

    p_meas = sub.add_parser("measure", help="measure one kernel")
    p_meas.add_argument("kernel", choices=kernel_names())
    p_meas.add_argument("n", type=int)
    p_meas.add_argument("--machine", default="snb-ep")
    p_meas.add_argument("--scale", type=float, default=0.125)
    p_meas.add_argument("--threads", type=int, default=1)
    p_meas.add_argument("--protocol", choices=("cold", "warm"),
                        default="cold")
    p_meas.add_argument("--reps", type=int, default=2)
    p_meas.add_argument("--plot", action="store_true")
    p_meas.add_argument("--engine", choices=("fast", "reference"),
                     default="fast",
                     help="execution engine: batched two-tier (fast, default) or per-line dispatch (reference); equivalence-gated")
    p_meas.add_argument("--json", action="store_true",
                        help="emit the measurement as JSON")

    p_prof = sub.add_parser(
        "profile",
        help="measure one kernel with tracing and phase attribution",
    )
    p_prof.add_argument("kernel", choices=kernel_names())
    p_prof.add_argument("n", type=int, nargs="?", default=4096)
    p_prof.add_argument("--machine", default="snb-ep")
    p_prof.add_argument("--scale", type=float, default=0.125)
    p_prof.add_argument("--threads", type=int, default=1)
    p_prof.add_argument("--protocol", choices=("cold", "warm"),
                        default="cold")
    p_prof.add_argument("--reps", type=int, default=1)
    p_prof.add_argument("--engine", choices=("fast", "reference"),
                     default="fast",
                     help="execution engine: batched two-tier (fast, default) or per-line dispatch (reference); equivalence-gated")
    p_prof.add_argument("--trace-out",
                        help="write Chrome trace-event JSON here "
                             "(open in Perfetto / chrome://tracing)")
    p_prof.add_argument("--metrics-out",
                        help="write Prometheus-format metrics here")
    p_prof.add_argument("--json", action="store_true",
                        help="emit the measurement (incl. trace summary) "
                             "as JSON")

    p_tl = sub.add_parser(
        "timeline",
        help="measure one kernel with windowed sampling and export the "
             "roofline trajectory",
    )
    p_tl.add_argument("--kernel", default="daxpy",
                      choices=kernel_names() + sorted(_KERNEL_ALIASES),
                      help="kernel to profile (dgemm/dgemv resolve to the "
                           "paper's tiled/row variants)")
    p_tl.add_argument("--n", type=int, default=None,
                      help="problem size (default: per-kernel size that "
                           "spans many windows)")
    p_tl.add_argument("--machine", default="snb-ep")
    p_tl.add_argument("--scale", type=float, default=0.125)
    p_tl.add_argument("--threads", type=int, default=1)
    p_tl.add_argument("--protocol", choices=("cold", "warm"),
                      default="cold")
    p_tl.add_argument("--reps", type=int, default=1)
    p_tl.add_argument("--engine", choices=("fast", "reference"),
                   default="fast",
                   help="execution engine: batched two-tier (fast, default) or per-line dispatch (reference); equivalence-gated")
    p_tl.add_argument("--window", type=float, default=10_000.0,
                      help="window width in cycles (default 10000)")
    p_tl.add_argument("--out-dir", default=os.path.join(
                          "artifacts", "timeline"),
                      help="artifact directory "
                           "(default artifacts/timeline)")
    p_tl.add_argument("--svg", action="store_true",
                      help="write the roofline-trajectory SVG")
    p_tl.add_argument("--csv", action="store_true",
                      help="write per-window and trajectory CSVs")
    p_tl.add_argument("--chrome", action="store_true",
                      help="write Chrome trace-event JSON with timeline "
                           "counter tracks")
    p_tl.add_argument("--json", action="store_true",
                      help="emit measurement + timeline + trajectory "
                           "as JSON")

    p_expl = sub.add_parser("explain", help="attribute a kernel's cycles")
    p_expl.add_argument("kernel", choices=kernel_names())
    p_expl.add_argument("n", type=int)
    p_expl.add_argument("--machine", default="snb-ep")
    p_expl.add_argument("--scale", type=float, default=0.125)
    p_expl.add_argument("--protocol", choices=("cold", "warm"),
                        default="warm")

    p_sweep = sub.add_parser(
        "sweep",
        help="run a measurement grid through the parallel sweep engine",
    )
    p_sweep.add_argument("kernel", nargs="?", choices=kernel_names(),
                         help="kernel to sweep (alternative to --grid)")
    p_sweep.add_argument("--grid", choices=sorted(GRIDS),
                         help="named figure grid (f4=daxpy, f5=dgemv, "
                              "f6=dgemm, f7=fft)")
    p_sweep.add_argument("--sizes",
                         help="comma-separated problem sizes "
                              "(with KERNEL form)")
    p_sweep.add_argument("--machine", default="snb-ep",
                         choices=sorted(PRESETS))
    p_sweep.add_argument("--scale", type=float, default=0.125)
    p_sweep.add_argument("--protocol", default="cold",
                         help="cache protocol(s), comma-separated "
                              "(cold, warm)")
    p_sweep.add_argument("--reps", type=int, default=2)
    p_sweep.add_argument("--threads", type=int, default=1)
    p_sweep.add_argument("--engine", choices=("fast", "reference"),
                      default="fast",
                      help="execution engine: batched two-tier (fast, default) or per-line dispatch (reference); equivalence-gated")
    p_sweep.add_argument("--quick", action="store_true",
                         help="trim grid sizes (named grids only)")
    p_sweep.add_argument("--json", action="store_true",
                         help="emit stats, keys, and measurement payloads "
                              "as JSON")
    p_sweep.add_argument("--trace-out",
                         help="write Chrome trace-event JSON of the sweep")
    p_sweep.add_argument("--flame-out",
                         help="write the merged host+workers span flame "
                              "(Chrome trace-event JSON) here")
    p_sweep.add_argument("--metrics-out",
                         help="write Prometheus-format sweep metrics here")
    p_sweep.add_argument("--live", action="store_true",
                         help="render a live in-terminal dashboard "
                              "(progress, hit rate, latency percentiles, "
                              "queue depth, worker occupancy)")
    telemetry = p_sweep.add_mutually_exclusive_group()
    telemetry.add_argument("--telemetry", dest="telemetry",
                           action="store_true", default=None,
                           help="force distributed-telemetry collection "
                                "(default: on for parallel runs only)")
    telemetry.add_argument("--no-telemetry", dest="telemetry",
                           action="store_false",
                           help="disable distributed-telemetry collection "
                                "even for parallel runs")
    _add_sweep_flags(p_sweep, suppress=True)

    p_ert = sub.add_parser(
        "ert",
        help="discover a machine's bandwidth ceilings and compute roof "
             "with the ERT microbenchmark grid",
    )
    p_ert.add_argument("--machine", default="snb",
                       choices=sorted(PRESETS))
    p_ert.add_argument("--scale", type=float, default=0.125)
    p_ert.add_argument("--engine", choices=("fast", "reference"),
                       default="fast",
                       help="execution engine for the grid")
    p_ert.add_argument("--flops", default=",".join(
                           str(c) for c in DEFAULT_FLOP_COUNTS),
                       help="comma-separated flops-per-element grid "
                            "(default %(default)s)")
    p_ert.add_argument("--sweeps", type=int, default=2,
                       help="passes over the working set per run "
                            "(default 2; >1 keeps warm sets resident)")
    p_ert.add_argument("--reps", type=int, default=2)
    p_ert.add_argument("--plot", action="store_true",
                       help="print the discovered hierarchy as an "
                            "ASCII roofline")
    p_ert.add_argument("--svg", metavar="PATH",
                       help="write the discovered hierarchy as an SVG")
    p_ert.add_argument("--json", action="store_true",
                       help="emit ceilings + sweep stats as JSON")
    _add_sweep_flags(p_ert, suppress=True)

    p_an = sub.add_parser(
        "analyze",
        help="hierarchical roofline: discover ceilings, sweep one "
             "kernel, and place it on every level's band",
    )
    p_an.add_argument("kernel",
                      choices=kernel_names() + sorted(_KERNEL_ALIASES),
                      help="kernel to analyse (dgemm/dgemv resolve to "
                           "the paper's tiled/row variants)")
    p_an.add_argument("--sizes", required=True,
                      help="comma-separated problem sizes")
    p_an.add_argument("--machine", default="snb",
                      choices=sorted(PRESETS))
    p_an.add_argument("--scale", type=float, default=0.125)
    p_an.add_argument("--engine", choices=("fast", "reference"),
                      default="fast",
                      help="execution engine for both sweeps")
    p_an.add_argument("--protocol", choices=("cold", "warm"),
                      default="cold")
    p_an.add_argument("--reps", type=int, default=2)
    p_an.add_argument("--flops", default=",".join(
                          str(c) for c in DEFAULT_FLOP_COUNTS),
                      help="flops-per-element grid for ceiling discovery")
    p_an.add_argument("--svg", action="store_true",
                      help="write the hierarchical plot under --out-dir")
    p_an.add_argument("--json-out", action="store_true",
                      help="write the analysis JSON doc under --out-dir")
    p_an.add_argument("--out-dir", default=os.path.join(
                          "artifacts", "analyze"),
                      help="artifact directory (default artifacts/analyze)")
    p_an.add_argument("--json", action="store_true",
                      help="emit the full analysis as JSON on stdout")
    _add_sweep_flags(p_an, suppress=True)

    p_conf = sub.add_parser(
        "conformance",
        help="fuzz the fast interpreter against the reference oracle "
             "and check kernel W/Q against closed forms",
    )
    p_conf.add_argument("--n", type=int, default=200,
                        help="number of random programs (default 200)")
    p_conf.add_argument("--seed", type=int, default=0,
                        help="base seed for the program stream")
    p_conf.add_argument("--kernels", default="all",
                        help="comma-separated kernels for the analytic "
                             "W/Q oracle, 'all', or 'none'")
    p_conf.add_argument("--diff", choices=("oracle", "engine", "both"),
                        default="both",
                        help="which differential checks to fuzz: machine "
                             "vs reference model (oracle), fast vs "
                             "reference engine (engine), or both")
    p_conf.add_argument("--report",
                        help="JSONL divergence report path (default "
                             "artifacts/conformance/report.jsonl)")

    p_self = sub.add_parser(
        "selfprofile",
        help="profile the simulator itself: run a kernel sweep under "
             "the host-side span profiler and export a flame trace, "
             "hotspot table, and metrics snapshot",
    )
    p_self.add_argument("kernel",
                        choices=kernel_names() + sorted(_KERNEL_ALIASES),
                        help="kernel to run (dgemm/dgemv resolve to the "
                             "paper's tiled/row variants)")
    p_self.add_argument("--n", type=int, default=512,
                        help="problem size (default 512)")
    p_self.add_argument("--sizes",
                        help="comma-separated sizes (overrides --n; "
                             "profiles a multi-point sweep)")
    p_self.add_argument("--machine", default="tiny",
                        choices=sorted(PRESETS),
                        help="machine preset (default tiny, so the "
                             "profile turns around quickly)")
    p_self.add_argument("--scale", type=float, default=0.125)
    p_self.add_argument("--threads", type=int, default=1)
    p_self.add_argument("--protocol", choices=("cold", "warm"),
                        default="cold")
    p_self.add_argument("--reps", type=int, default=1)
    p_self.add_argument("--engine", choices=("fast", "reference"),
                        default="fast",
                        help="execution engine to profile (the reference "
                             "engine additionally exercises the per-batch "
                             "mem.* demand spans)")
    p_self.add_argument("--top", type=int, default=10,
                        help="hotspot-table rows (default 10)")
    p_self.add_argument("--cache", action="store_true",
                        help="use the sweep result cache (off by default "
                             "so the engine actually runs under the "
                             "profiler)")
    p_self.add_argument("--cache-dir", default=None,
                        help="sweep cache directory (with --cache)")
    p_self.add_argument("--out-dir",
                        default=os.path.join("artifacts", "selfprofile"),
                        help="artifact directory "
                             "(default artifacts/selfprofile)")
    p_self.add_argument("--json", action="store_true",
                        help="emit profile + metrics + stats as JSON")

    p_gate = sub.add_parser(
        "benchgate",
        help="compare bench numbers against committed BENCH_*.json "
             "baselines; exits nonzero on regression",
    )
    p_gate.add_argument("--baseline", action="append",
                        help="baseline doc(s) to gate (default: every "
                             "committed BENCH_*.json in the cwd)")
    p_gate.add_argument("--current",
                        help="pre-measured current doc (as written by the "
                             "matching benchmarks/bench_*.py); default is "
                             "to re-measure in-process")
    p_gate.add_argument("--tolerance", type=float, default=1.0,
                        help="scale factor on all relative tolerances "
                             "(default 1.0)")
    p_gate.add_argument("--inject-slowdown", type=float, default=None,
                        help="synthetically slow the current doc by this "
                             "factor (gate self-test; 2.0 must fail)")
    p_gate.add_argument("--repeats", type=int, default=None,
                        help="repeats for in-process re-measurement")

    p_worker = sub.add_parser(
        "worker",
        help="join a socket sweep as a worker process (normally "
             "spawned by the socket backend, but can be started by "
             "hand to build an external fleet)",
    )
    p_worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="the sweep parent's listener address")
    p_worker.add_argument("--heartbeat", type=float, default=0.5,
                          help="heartbeat period in seconds (default "
                               "0.5; 0 disables)")

    p_serve = sub.add_parser(
        "serve",
        help="run the roofline HTTP/JSON service (POST /measure, "
             "/analyze, /sweep; GET /jobs/<id>, /metrics, /healthz); "
             "drains gracefully on SIGTERM",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="bind port (default 8787; 0 = ephemeral)")
    p_serve.add_argument("--threads", type=int, default=4,
                         help="job executor threads (default 4)")
    _add_sweep_flags(p_serve, suppress=True)

    p_cache = sub.add_parser(
        "cache",
        help="sweep result cache maintenance",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_gc = cache_sub.add_parser(
        "gc",
        help="prune the cache by age and/or total size "
             "(oldest entries evicted first)",
    )
    p_gc.add_argument("--max-bytes", type=_parse_size, default=None,
                      metavar="SIZE",
                      help="size budget for the cache (bytes, or with a "
                           "K/M/G suffix); oldest entries beyond it are "
                           "removed")
    p_gc.add_argument("--max-age", type=_parse_age, default=None,
                      metavar="AGE",
                      help="drop entries older than this (seconds, or "
                           "with an s/m/h/d suffix, e.g. 7d)")
    p_gc.add_argument("--json", action="store_true",
                      help="emit the gc summary as JSON")
    p_gc.add_argument("--cache-dir", default=None,
                      help="cache directory (default: "
                           "artifacts/sweepcache or $REPRO_SWEEP_CACHE)")

    p_exp = sub.add_parser("experiment", help="run paper experiments")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default all)")
    p_exp.add_argument("--scale", type=float, default=0.125)
    p_exp.add_argument("--quick", action="store_true")
    p_exp.add_argument("--reps", type=int, default=2)
    p_exp.add_argument("--output", help="write markdown report here")
    p_exp.add_argument("--artifacts", help="directory for SVG/CSV artifacts")
    _add_sweep_flags(p_exp, suppress=True)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "roofline": _cmd_roofline,
        "measure": _cmd_measure,
        "profile": _cmd_profile,
        "timeline": _cmd_timeline,
        "explain": _cmd_explain,
        "sweep": _cmd_sweep,
        "ert": _cmd_ert,
        "analyze": _cmd_analyze,
        "experiment": _cmd_experiment,
        "conformance": _cmd_conformance,
        "selfprofile": _cmd_selfprofile,
        "benchgate": _cmd_benchgate,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "cache": _cmd_cache,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
