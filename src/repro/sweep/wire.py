"""Length-prefixed frame protocol between sweep parent and workers.

One frame = a 5-byte header (``kind`` uint8 + ``length`` uint32,
big-endian) followed by ``length`` body bytes.  Two body encodings:

* ``KIND_JSON`` — control messages (hello, heartbeat, shutdown) as
  UTF-8 JSON objects with a ``"type"`` field;
* ``KIND_PICKLE`` — work and result tuples.  Work units are picklable
  by design (:class:`~repro.machine.ref.MachineRef` +
  :class:`~repro.sweep.plan.SweepPoint` + ``TraceContext``), and the
  result payload is the same plain-dict document every other execution
  path produces.

Message vocabulary (the whole protocol):

====================  =========  =====================================
direction             encoding   body
====================  =========  =====================================
worker → parent       JSON       ``{"type": "hello", "pid", "version"}``
worker → parent       JSON       ``{"type": "heartbeat", "pid"}``
parent → worker       JSON       ``{"type": "shutdown"}``
parent → worker       pickle     ``("work", seq, point, ctx)``
worker → parent       pickle     ``("result", seq, payload)``
worker → parent       pickle     ``("error", seq, exc_type, message)``
====================  =========  =====================================

``seq`` is the parent's dispatch sequence number, echoed back so
results can be matched to work after a requeue.  Pickle frames never
cross a trust boundary here — the parent spawns (or the operator
starts) every worker, the listener binds loopback by default, and the
stream starts with a JSON hello carrying :data:`WIRE_VERSION` so
mismatched peers fail fast instead of mis-deserialising.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
from typing import Optional, Tuple

from ..errors import SweepError

__all__ = [
    "FrameReader",
    "KIND_JSON",
    "KIND_PICKLE",
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "decode_frame",
    "encode_json",
    "encode_pickle",
    "recv_frame",
    "send_json",
    "send_pickle",
]

#: bump on any incompatible protocol change; checked in the hello
WIRE_VERSION = 1

KIND_JSON = 1
KIND_PICKLE = 2

_HEADER = struct.Struct("!BI")

#: sanity cap on a single frame (a sweep payload is a few KiB; a
#: multi-GiB length prefix means a corrupt or hostile stream)
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_json(doc: dict) -> bytes:
    body = json.dumps(doc, sort_keys=True).encode("utf-8")
    return _HEADER.pack(KIND_JSON, len(body)) + body


def encode_pickle(obj) -> bytes:
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(KIND_PICKLE, len(body)) + body


def send_json(sock: socket.socket, doc: dict) -> None:
    sock.sendall(encode_json(doc))


def send_pickle(sock: socket.socket, obj) -> None:
    sock.sendall(encode_pickle(obj))


def decode_frame(kind: int, body: bytes):
    """Decode one complete frame body into a Python object."""
    if kind == KIND_JSON:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise SweepError(f"undecodable JSON frame: {exc}") from exc
        if not isinstance(doc, dict):
            raise SweepError(f"JSON frame must be an object, got "
                             f"{type(doc).__name__}")
        return doc
    if kind == KIND_PICKLE:
        try:
            return pickle.loads(body)
        except Exception as exc:
            raise SweepError(f"undecodable pickle frame: {exc}") from exc
    raise SweepError(f"unknown frame kind {kind}")


class FrameReader:
    """Incremental frame parser over a byte stream.

    Feed it whatever ``recv`` returned; it buffers partial frames and
    yields complete ``(kind, object)`` pairs.  Used by the parent's
    selector loop, where reads arrive in arbitrary fragments.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list:
        self._buffer.extend(data)
        frames = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            kind, length = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise SweepError(
                    f"frame of {length} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte cap (corrupt stream?)"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            frames.append((kind, decode_frame(kind, body)))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = bytearray()
    while len(chunks) < n:
        data = sock.recv(n - len(chunks))
        if not data:
            return None
        chunks.extend(data)
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> Optional[Tuple[int, object]]:
    """Blocking read of one frame; ``None`` on a clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    kind, length = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise SweepError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap (corrupt stream?)"
        )
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise SweepError("stream truncated mid-frame")
    return kind, decode_frame(kind, body)
