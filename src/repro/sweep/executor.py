"""Sweep executor: fan measurement points out, memoise results.

The executor takes a :class:`~repro.sweep.plan.SweepPlan` and produces
one :class:`~repro.measure.runner.Measurement` per point, in plan
order, via three interchangeable paths:

* **cache hit** — the point's content-addressed key is present on disk
  and checksum-verified; the stored payload is replayed;
* **backend miss** — the point is handed to a
  :class:`~repro.sweep.backends.SweepBackend` (in-process serial, a
  local process pool, or ``repro worker`` processes over sockets),
  which rebuilds a fresh machine from the point's :class:`MachineRef`
  recipe and simulates there.  Machines are never shipped across
  processes — only the recipe and the resulting payload are.

Every path funnels through the same serialised payload
(:mod:`repro.sweep.serialize`), so cached runs and all three backends
are bit-identical by construction — the determinism suite in
``tests/sweep/`` asserts it point by point and
``tests/sweep/test_backends.py`` checksums backend parity.

Execution emits ``sweep``-kind events on a :class:`repro.trace.TraceBus`
(timestamps in seconds on the host clock) so per-point progress and
cache hit/miss counts flow through the same observability layer as
simulation traces: export with ``to_chrome_trace(..., frequency_hz=1.0)``
or fold :meth:`SweepStats.to_dict` into a Prometheus exposition.

The executor is also the anchor of the *distributed* telemetry plane
(:mod:`repro.obs.remote`): each dispatched point carries a
:class:`~repro.obs.remote.TraceContext`, workers send back a compact
``telemetry`` payload section (span tree, metrics delta, trace-event
sample) that is merged into the parent profiler/registry after the run,
and every process keeps an always-on flight-recorder ring that dumps to
``artifacts/flightrec/`` when a point raises or a worker dies.  The
telemetry section is popped from the payload before it reaches the
result cache, so measurement checksums are identical with telemetry on,
off, serial, parallel, or replayed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from ..errors import SweepError, SweepPointError
from ..measure.runner import Measurement, measure_kernel
from ..obs import remote
from ..obs.metrics import REGISTRY
from ..obs.spans import SPANS
from ..trace.bus import RingSink, TraceBus
from ..trace.events import MARK, SWEEP, TraceEvent
from .cache import CORRUPT, HIT, SweepCache, point_key
from .plan import SweepPlan, SweepPoint
from .serialize import measurement_to_payload, payload_to_measurement

#: environment default for ``jobs`` when the caller passes ``None``
JOBS_ENV = "REPRO_SWEEP_JOBS"

#: generic fallback honoured when :data:`JOBS_ENV` is unset — the
#: sweep-specific variable wins so a sweep can be tuned independently
#: of other parallel tooling sharing the shell
JOBS_FALLBACK_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit value, else $REPRO_SWEEP_JOBS, else $REPRO_JOBS, else 1.

    An explicit ``jobs`` (a CLI flag, say) always wins; the environment
    is only consulted when the caller passes ``None``.
    """
    if jobs is None:
        for name in (JOBS_ENV, JOBS_FALLBACK_ENV):
            env = os.environ.get(name, "").strip()
            if not env:
                continue
            try:
                jobs = int(env)
            except ValueError as exc:
                raise SweepError(f"bad {name}={env!r}: {exc}") from exc
            break
        else:
            return 1
    if jobs < 1:
        raise SweepError(f"jobs must be >= 1, got {jobs}")
    return jobs


def simulate_point(point: SweepPoint,
                   ctx: Optional[remote.TraceContext] = None) -> dict:
    """Measure one point on a fresh machine; returns the payload.

    Module-level so the process pool can import it by name; the
    arguments and the return value are plain picklable data.

    Besides the measurement fields, the payload carries the machine's
    compile-tier telemetry under ``"plan_cache"`` (summed over the
    point's cores).  Because every point gets a *fresh* machine in both
    the serial and parallel paths, the numbers are deterministic and
    participate in the payload checksum like everything else.

    With a collecting :class:`~repro.obs.remote.TraceContext` the
    payload additionally carries a ``"telemetry"`` section (span tree,
    worker metrics delta, bounded trace-event sample).  The caller pops
    it before the payload reaches the result cache, so it never enters
    the checksum.  The flight recorder notes breadcrumbs regardless of
    telemetry state, and any exception dumps the ring with the failing
    point's repr before re-raising as
    :class:`~repro.errors.SweepPointError`.
    """
    label = f"{point.kernel}:{point.n}"
    remote.FLIGHT.note("point", "begin", point=label,
                       run=ctx.run_id if ctx else None,
                       index=ctx.point_index if ctx else None)
    try:
        remote.maybe_fault(label)
        collect = ctx is not None and ctx.collect
        capture = remote.SpanSectionCapture() if collect else None
        sink: Optional[RingSink] = None
        busy_start = time.perf_counter_ns()
        if capture is not None:
            capture.__enter__()
        try:
            machine = point.machine.build()
            if collect and ctx.event_sample > 0:
                sink = RingSink(ctx.event_sample)
                machine.trace.attach(sink)
            with SPANS("sweep.point", kernel=point.kernel, n=point.n):
                measurement = measure_kernel(
                    machine, point.build_kernel(), point.n,
                    protocol=point.protocol, cores=point.cores,
                    reps=point.reps, width_bits=point.width_bits,
                )
        finally:
            if capture is not None:
                capture.__exit__(None, None, None)
        busy_ns = time.perf_counter_ns() - busy_start
        payload = measurement_to_payload(measurement)
        payload["plan_cache"] = _harvest_plan_cache(machine, point.cores)
        if collect:
            payload["telemetry"] = remote.build_point_telemetry(
                ctx, capture.section, busy_ns,
                events_total=sink.total if sink else 0,
                event_sample=[e.to_dict() for e in sink.events]
                if sink else [],
            )
        remote.FLIGHT.note("point", "end", point=label, busy_ns=busy_ns)
        return payload
    except Exception as exc:
        dump = remote.FLIGHT.dump(
            "point-exception", point=repr(point),
            directory=ctx.flightrec_dir if ctx else None,
            error=f"{type(exc).__name__}: {exc}",
        )
        raise SweepPointError(
            f"sweep point {label} failed: {type(exc).__name__}: {exc} "
            f"[point: {point!r}] [flight-recorder dump: {dump}]"
        ) from exc


def merge_plan_cache(docs) -> dict:
    """Sum keyed ``plan_cache`` counter docs (missing/None skipped) and
    derive the combined hit rate.  The single summing helper behind
    both the per-machine harvest and the cross-point aggregate."""
    total = {"hits": 0, "misses": 0, "built_segments": 0,
             "built_lines": 0, "flushes": 0}
    for doc in docs:
        if not doc:
            continue
        for key in total:
            total[key] += doc.get(key, 0)
    lookups = total["hits"] + total["misses"]
    total["hit_rate"] = total["hits"] / lookups if lookups else 0.0
    return total


def _harvest_plan_cache(machine, cores) -> dict:
    """Sum compile-tier counters over the point's cores."""
    return merge_plan_cache(
        machine.core(core_id).plan_stats.as_dict() for core_id in cores
    )


@dataclass
class SweepStats:
    """Cache and execution counters for one or more plan runs."""

    points: int = 0
    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    elapsed_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.points if self.points else 0.0

    def merge(self, other: "SweepStats") -> None:
        self.points += other.points
        self.hits += other.hits
        self.misses += other.misses
        self.corrupt += other.corrupt
        self.elapsed_seconds += other.elapsed_seconds

    def to_dict(self) -> dict:
        return {
            "points": self.points,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def describe(self) -> str:
        return (f"{self.points} point(s): {self.hits} cached, "
                f"{self.misses} simulated"
                + (f", {self.corrupt} corrupt entr(y/ies) re-simulated"
                   if self.corrupt else "")
                + (f" ({self.hit_rate:.0%} hit rate)" if self.points else ""))


@dataclass
class SweepRun:
    """Measurements in plan order plus the run's cache statistics.

    ``plan_cache`` aggregates the compile-tier telemetry carried in
    every payload (cached replays included, since the harvest happened
    when the point was first simulated).  ``telemetry`` is the merged
    distributed-telemetry summary (worker table, per-point status
    including replayed-from-cache marks, bounded trace-event sample) —
    purely observational, never part of any measurement checksum.
    """

    measurements: List[Measurement]
    stats: SweepStats
    keys: List[str] = field(default_factory=list)
    plan_cache: dict = field(default_factory=dict)
    telemetry: dict = field(default_factory=dict)
    #: name of the backend that simulated the misses ("cached" when
    #: every point replayed from the cache) — observational only, never
    #: part of any checksum
    backend: str = "cached"


def run_plan(plan: SweepPlan, jobs: Optional[int] = None,
             cache: Optional[SweepCache] = None,
             bus: Optional[TraceBus] = None,
             progress: Optional[Callable[[int, int, SweepPoint, str], None]]
             = None,
             stats: Optional[SweepStats] = None,
             telemetry: Optional[bool] = None,
             on_point: Optional[Callable[[int, int, SweepPoint, str], None]]
             = None,
             backend: Optional[Union[str, "SweepBackend"]] = None
             ) -> SweepRun:
    """Execute a plan: replay cached points, simulate the rest.

    ``cache=None`` disables memoisation entirely.  ``bus`` receives one
    ``sweep`` event per point and a closing ``mark``; ``progress`` is
    called as ``(done, total, point, status)`` after each point.
    ``stats`` lets callers accumulate counters across several plans
    (the experiment runner does); a fresh one is used when omitted.

    ``backend`` picks the execution backend for cache misses: a
    :class:`~repro.sweep.backends.SweepBackend` instance (borrowed —
    the caller closes it; the service layer reuses one across
    requests), a name from
    :data:`~repro.sweep.backends.BACKEND_NAMES` (constructed for this
    run and closed after), or ``None`` for the classic behaviour —
    serial when ``jobs`` is 1 or only one point misses, a local
    process pool otherwise.  Results are bit-identical and
    cache-compatible whichever backend runs them.

    ``telemetry`` switches distributed telemetry collection: ``None``
    (default) enables it exactly when execution leaves the calling
    process — serial runs keep the span-capture cost off their hot
    path unless asked.
    ``on_point`` is called as ``(done, total, point, status)`` the
    moment each point *completes* (cache hits during the probe,
    simulated points as their results land, in completion order) —
    unlike ``progress``, which fires in plan order after everything is
    done.  The live dashboard hangs off ``on_point``.
    """
    from .backends import SweepBackend, WorkItem, make_backend
    from .backends.localpool import LocalPoolBackend
    from .backends.serial import SerialBackend

    jobs = resolve_jobs(jobs)
    if telemetry is not None:
        collect = bool(telemetry)
    elif backend is None:
        collect = jobs > 1
    elif isinstance(backend, str):
        collect = backend != "serial"
    else:
        collect = backend.parallel
    run_id = remote.new_run_id()
    run_stats = SweepStats()
    started = time.perf_counter()
    points = list(plan)
    keys = [point_key(p) for p in points]
    payloads: List[Optional[dict]] = [None] * len(points)
    status: List[str] = [""] * len(points)
    sections: List[Optional[dict]] = [None] * len(points)
    submit_ns: List[Optional[int]] = [None] * len(points)

    completed = 0

    def _notify(point: SweepPoint, outcome: str) -> None:
        nonlocal completed
        completed += 1
        if on_point is not None:
            on_point(completed, len(points), point, outcome)

    point_seconds = REGISTRY.histogram(
        "repro_sweep_point_seconds",
        "Wall time to produce one sweep point (cache replays excluded)",
    )

    pending: List[int] = []
    with SPANS("sweep.cache.probe"):
        for idx, key in enumerate(keys):
            if cache is None:
                status[idx] = "miss"
                pending.append(idx)
                continue
            payload, outcome = cache.lookup(key)
            if outcome == HIT:
                payloads[idx] = payload
                status[idx] = HIT
                _notify(points[idx], HIT)
            else:
                if outcome == CORRUPT:
                    run_stats.corrupt += 1
                status[idx] = outcome
                pending.append(idx)

    backend_name = "cached"
    if pending:
        owned: Optional[SweepBackend] = None
        if backend is None:
            if jobs == 1 or len(pending) == 1:
                owned = SerialBackend()
            else:
                owned = LocalPoolBackend(min(jobs, len(pending)))
            active = owned
        elif isinstance(backend, str):
            owned = make_backend(backend, jobs=jobs)
            active = owned
        else:
            active = backend
        backend_name = active.name
        backend_stats = active.stats
        items = [
            WorkItem(index=idx, point=points[idx],
                     ctx=remote.TraceContext(run_id=run_id,
                                             point_index=idx,
                                             collect=collect))
            for idx in pending
        ]
        try:
            with SPANS("sweep.run", points=len(pending),
                       backend=active.name):
                for result in active.submit(items):
                    payloads[result.index] = result.payload
                    submit_ns[result.index] = result.submit_ns
                    point_seconds.observe(result.elapsed_seconds)
                    _notify(points[result.index], status[result.index])
        finally:
            if owned is not None:
                owned.close()
        # Telemetry never reaches the content-addressed cache: pop it
        # here so stored payloads (and their checksums) are identical
        # with collection on or off.
        for idx in pending:
            if payloads[idx] is not None:
                sections[idx] = payloads[idx].pop("telemetry", None)
        if cache is not None:
            with SPANS("sweep.store"):
                for idx in pending:
                    cache.store(keys[idx], payloads[idx])

    run_stats.points = len(points)
    run_stats.hits = sum(1 for s in status if s == HIT)
    run_stats.misses = len(pending)
    run_stats.elapsed_seconds = time.perf_counter() - started
    REGISTRY.absorb_sweep_stats(run_stats.to_dict())
    plan_cache = merge_plan_cache(p.get("plan_cache") for p in payloads if p)
    REGISTRY.absorb_plan_cache(plan_cache)
    telemetry_doc = remote.merge_run_telemetry(
        run_id, sections, status, [p.label() for p in points], submit_ns,
        elapsed_seconds=run_stats.elapsed_seconds, collected=collect,
    )
    if pending:
        # counters (dispatched/requeued/worker deaths), cumulative over
        # the backend's lifetime when the caller lent us a shared one
        telemetry_doc["backend"] = backend_stats()

    measurements: List[Measurement] = []
    done = 0
    for idx, (point, payload) in enumerate(zip(points, payloads)):
        measurements.append(payload_to_measurement(payload))
        done += 1
        if bus is not None:
            bus.emit(TraceEvent(
                SWEEP, point.label(), ts=time.perf_counter() - started,
                args={"status": status[idx], "key": keys[idx][:12],
                      "kernel": point.kernel, "n": point.n,
                      "protocol": point.protocol,
                      "threads": len(point.cores)},
            ))
        if progress is not None:
            progress(done, len(points), point, status[idx])
    if bus is not None:
        bus.emit(TraceEvent(
            MARK, "sweep:done", ts=time.perf_counter() - started,
            args=run_stats.to_dict(),
        ))
    if stats is not None:
        stats.merge(run_stats)
    return SweepRun(measurements=measurements, stats=run_stats, keys=keys,
                    plan_cache=plan_cache, telemetry=telemetry_doc,
                    backend=backend_name)
