"""Parallel sweep engine with content-addressed result caching.

Measurement grids — the (kernel x size x protocol x machine) sweeps
behind every roofline figure — are described declaratively as
:class:`SweepPlan` objects, executed serially or over a process pool,
and memoised point-by-point in an on-disk cache keyed by the full
content of each point's inputs.  Serial, parallel, and cache-replayed
runs return bit-identical measurements; ``tests/sweep/`` enforces it.
"""

from .cache import VERSION_SALT, SweepCache, default_cache_dir, point_key
from .executor import (
    JOBS_ENV,
    SweepRun,
    SweepStats,
    resolve_jobs,
    run_plan,
    simulate_point,
)
from .grids import GRIDS, make_grid
from .plan import SweepPlan, SweepPoint
from .serialize import measurement_to_payload, payload_to_measurement

__all__ = [
    "GRIDS",
    "JOBS_ENV",
    "SweepCache",
    "SweepPlan",
    "SweepPoint",
    "SweepRun",
    "SweepStats",
    "VERSION_SALT",
    "default_cache_dir",
    "make_grid",
    "measurement_to_payload",
    "payload_to_measurement",
    "point_key",
    "resolve_jobs",
    "run_plan",
    "simulate_point",
]
