"""Parallel sweep engine with content-addressed result caching.

Measurement grids — the (kernel x size x protocol x machine) sweeps
behind every roofline figure — are described declaratively as
:class:`SweepPlan` objects, executed through a pluggable
:class:`~repro.sweep.backends.SweepBackend` (in-process serial, a
local process pool, or ``repro worker`` processes over sockets), and
memoised point-by-point in an on-disk cache keyed by the full content
of each point's inputs.  Every backend and cache-replayed run returns
bit-identical measurements; ``tests/sweep/`` enforces it.
"""

from .backends import (
    BACKEND_NAMES,
    LocalPoolBackend,
    PointResult,
    SerialBackend,
    SocketWorkerBackend,
    SweepBackend,
    WorkItem,
    make_backend,
)
from .cache import VERSION_SALT, SweepCache, default_cache_dir, point_key
from .executor import (
    JOBS_ENV,
    JOBS_FALLBACK_ENV,
    SweepRun,
    SweepStats,
    resolve_jobs,
    run_plan,
    simulate_point,
)
from .grids import GRIDS, make_grid
from .plan import SweepPlan, SweepPoint
from .serialize import measurement_to_payload, payload_to_measurement

__all__ = [
    "BACKEND_NAMES",
    "GRIDS",
    "JOBS_ENV",
    "JOBS_FALLBACK_ENV",
    "LocalPoolBackend",
    "PointResult",
    "SerialBackend",
    "SocketWorkerBackend",
    "SweepBackend",
    "SweepCache",
    "SweepPlan",
    "SweepPoint",
    "SweepRun",
    "SweepStats",
    "VERSION_SALT",
    "WorkItem",
    "default_cache_dir",
    "make_backend",
    "make_grid",
    "measurement_to_payload",
    "payload_to_measurement",
    "point_key",
    "resolve_jobs",
    "run_plan",
    "simulate_point",
]
