"""Pluggable sweep execution backends.

Three implementations of the :class:`~repro.sweep.backends.base.
SweepBackend` protocol:

========  ============================  ===============================
name      class                         runs points
========  ============================  ===============================
serial    :class:`SerialBackend`        in-process, one at a time
pool      :class:`LocalPoolBackend`     local ``ProcessPoolExecutor``
socket    :class:`SocketWorkerBackend`  ``repro worker`` processes over
                                        length-prefixed socket frames
========  ============================  ===============================

All three funnel points through the same ``simulate_point`` →
serialised-payload path, so results are bit-identical and share one
content-addressed cache.  :func:`make_backend` maps a CLI spelling to
an instance.
"""

from __future__ import annotations

from typing import Optional

from ...errors import SweepError
from .base import BackendStats, PointResult, SweepBackend, WorkItem
from .localpool import LocalPoolBackend
from .serial import SerialBackend
from .socketworker import SocketWorkerBackend

__all__ = [
    "BACKEND_NAMES",
    "BackendStats",
    "LocalPoolBackend",
    "PointResult",
    "SerialBackend",
    "SocketWorkerBackend",
    "SweepBackend",
    "WorkItem",
    "make_backend",
]

#: CLI spellings, in help-text order
BACKEND_NAMES = ("serial", "pool", "socket")


def make_backend(name: str, jobs: int = 1, **options) -> SweepBackend:
    """Build a backend from its CLI spelling.

    ``jobs`` sizes the worker fleet for the parallel backends (pool
    workers / spawned socket workers) and is ignored by ``serial``.
    Extra keyword ``options`` go to the backend constructor (e.g.
    ``point_timeout`` for ``socket``).
    """
    if name == "serial":
        return SerialBackend()
    if name == "pool":
        return LocalPoolBackend(jobs=max(jobs, 1))
    if name == "socket":
        options.setdefault("workers", max(jobs, 1))
        return SocketWorkerBackend(**options)
    raise SweepError(
        f"unknown sweep backend {name!r}; expected one of "
        f"{', '.join(BACKEND_NAMES)}"
    )
