"""Local process-pool backend: the executor's classic parallel path.

Fans work items over a ``ProcessPoolExecutor`` with a bounded backlog
(:data:`BACKLOG_PER_WORKER` in-flight futures per worker, so huge plans
don't pickle the whole grid into the queue up front).  All the
distributed-telemetry plumbing from the monolithic executor is
preserved: each dispatch notes a flight-recorder breadcrumb and records
its ``submit_ns`` for the flame view's causal flow links, the
queue-depth gauge tracks in-flight futures, and a worker death dumps
the parent's flight-recorder ring with the reprs of every in-flight
point before raising :class:`~repro.errors.SweepError`.

The pool is created lazily on the first ``submit`` and kept alive
until ``close`` — repeated submits (the service layer) reuse warm
workers instead of paying process start-up per request.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterator, Optional, Sequence

from ...errors import SweepError
from ...obs import remote
from ...obs.metrics import REGISTRY
from ..executor import simulate_point
from .base import PointResult, SweepBackend, WorkItem

__all__ = ["LocalPoolBackend"]

#: cap on in-flight futures per worker
BACKLOG_PER_WORKER = 4

#: gauge name shared with the live dashboard (kept from the
#: pre-backend executor so existing dashboards/tests keep reading it)
QUEUE_DEPTH_GAUGE = "repro_sweep_executor_queue_depth"


def _queue_depth_gauge():
    return REGISTRY.gauge(
        QUEUE_DEPTH_GAUGE,
        "Futures in flight in the sweep process pool",
    )


class LocalPoolBackend(SweepBackend):
    """Fan items over a persistent local ``ProcessPoolExecutor``."""

    name = "pool"
    parallel = True

    def __init__(self, jobs: int) -> None:
        super().__init__()
        if jobs < 1:
            raise SweepError(f"pool backend needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self.closed:
                raise SweepError("pool backend already closed")
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            self._stats.workers_spawned += self.jobs
        return self._pool

    def submit(self, items: Sequence[WorkItem]) -> Iterator[PointResult]:
        pool = self._ensure_pool()
        depth = _queue_depth_gauge()
        backlog = min(self.jobs, max(len(items), 1)) * BACKLOG_PER_WORKER
        queue = iter(items)
        in_flight: Dict[object, WorkItem] = {}
        submitted: Dict[object, float] = {}
        dispatch_ns: Dict[object, int] = {}

        def dispatch(item: WorkItem) -> None:
            future = pool.submit(simulate_point, item.point, item.ctx)
            dispatch_ns[future] = time.perf_counter_ns()
            remote.FLIGHT.note(
                "dispatch", f"{item.point.kernel}:{item.point.n}",
                index=item.index, run=item.ctx.run_id,
            )
            in_flight[future] = item
            submitted[future] = time.perf_counter()
            self._stats.dispatched += 1
            depth.set(len(in_flight))

        def broken_pool(first: WorkItem) -> SweepError:
            self._stats.worker_deaths += 1
            inflight = {first.index: first}
            inflight.update((i.index, i) for i in in_flight.values())
            ordered = [inflight[idx] for idx in sorted(inflight)]
            labels = [f"{i.point.kernel}:{i.point.n}" for i in ordered]
            dump = remote.FLIGHT.dump(
                "worker-death", point=repr(first.point),
                in_flight=[repr(i.point) for i in ordered],
            )
            return SweepError(
                f"sweep worker died; in-flight point(s): "
                f"{', '.join(labels)} [flight-recorder dump: {dump}]"
            )

        try:
            for item in queue:
                dispatch(item)
                if len(in_flight) >= backlog:
                    break
            while in_flight:
                finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in finished:
                    item = in_flight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        # the pool is unusable now; a fresh one is
                        # created on the next submit
                        self._pool = None
                        raise broken_pool(item) from None
                    self._stats.completed += 1
                    yield PointResult(
                        index=item.index, payload=payload,
                        submit_ns=dispatch_ns.pop(future),
                        elapsed_seconds=(time.perf_counter()
                                         - submitted.pop(future)),
                    )
                depth.set(len(in_flight))
                for item in queue:
                    dispatch(item)
                    if len(in_flight) >= backlog:
                        break
        except BaseException:
            for future in in_flight:
                future.cancel()
            raise
        finally:
            depth.set(0)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()

    def __repr__(self) -> str:
        return f"LocalPoolBackend(jobs={self.jobs})"
