"""Socket worker backend: ship work units to ``repro worker`` processes.

The parent binds a loopback listener and either spawns its own worker
fleet (``python -m repro worker --connect host:port``) or waits for
externally started workers to register.  Work units — picklable
:class:`~repro.machine.ref.MachineRef` + :class:`~repro.sweep.plan.
SweepPoint` + :class:`~repro.obs.remote.TraceContext` — travel as
length-prefixed pickle frames (:mod:`repro.sweep.wire`); results come
back as the same serialised payload every other backend produces, so
socket execution is bit-identical to serial and local-pool runs.

Liveness, the part a process pool gives you for free:

* every worker runs a heartbeat thread; the parent declares a worker
  dead when its stream goes quiet past ``heartbeat_timeout`` (or the
  connection drops — a SIGKILLed worker is an instant EOF);
* ``point_timeout`` bounds any single point; a worker stuck past it is
  killed and replaced;
* a dead worker's in-flight point is **requeued** to another worker,
  up to ``max_requeues`` attempts per point.  Replacement workers are
  spawned with the :data:`~repro.obs.remote.KILL_ENV` /
  :data:`~repro.obs.remote.CRASH_ENV` fault hooks stripped from their
  environment, so an injected fault fires once instead of killing
  every replacement in turn (the requeue test leans on this).

Unlike the pool backend — where one worker death poisons the pool and
fails the run — a socket sweep survives worker loss as long as one
worker remains and no point exhausts its requeue budget.
"""

from __future__ import annotations

import os
import selectors
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...errors import SweepError, SweepPointError
from ...obs import remote
from ..wire import (
    KIND_JSON,
    KIND_PICKLE,
    WIRE_VERSION,
    FrameReader,
    send_json,
    send_pickle,
)
from .base import PointResult, SweepBackend, WorkItem
from .localpool import _queue_depth_gauge

__all__ = ["SocketWorkerBackend"]

#: environment variables never inherited by *replacement* workers —
#: fault hooks are one-shot by policy (see the module docstring)
_REPLACEMENT_STRIP_ENV = (remote.CRASH_ENV, remote.KILL_ENV)

#: default worker-side heartbeat period (seconds)
DEFAULT_HEARTBEAT_SECONDS = 0.5

#: parent-side silence budget before a worker is declared dead
DEFAULT_HEARTBEAT_TIMEOUT = 30.0


@dataclass
class _WorkerLink:
    """Parent-side state for one connected worker."""

    sock: socket.socket
    reader: FrameReader = field(default_factory=FrameReader)
    pid: Optional[int] = None
    proc: Optional[subprocess.Popen] = None
    item: Optional[WorkItem] = None
    seq: int = -1
    submit_ns: int = 0
    submitted: float = 0.0
    last_seen: float = field(default_factory=time.monotonic)
    hello: bool = False

    @property
    def idle(self) -> bool:
        return self.hello and self.item is None

    def label(self) -> str:
        return f"worker pid {self.pid}" if self.pid else "worker (no hello)"


class SocketWorkerBackend(SweepBackend):
    """Dispatch points to ``repro worker`` processes over sockets."""

    name = "socket"
    parallel = True

    def __init__(self, workers: int = 2, host: str = "127.0.0.1",
                 port: int = 0, spawn: bool = True,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 point_timeout: Optional[float] = None,
                 max_requeues: int = 2,
                 accept_timeout: float = 30.0,
                 worker_heartbeat: float = DEFAULT_HEARTBEAT_SECONDS) -> None:
        super().__init__()
        if spawn and workers < 1:
            raise SweepError(
                f"socket backend needs workers >= 1 when spawning, "
                f"got {workers}"
            )
        self.workers = workers
        self.spawn = spawn
        self.heartbeat_timeout = heartbeat_timeout
        self.point_timeout = point_timeout
        self.max_requeues = max_requeues
        self.accept_timeout = accept_timeout
        self.worker_heartbeat = worker_heartbeat
        self._links: List[_WorkerLink] = []
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(max(workers, 8))
        self._address = self._listener.getsockname()[:2]
        self._selector.register(self._listener, selectors.EVENT_READ,
                                "listener")
        self._seq = 0
        if self.spawn:
            for _ in range(workers):
                self._spawn_worker(clean=False)

    # ------------------------------------------------------------------
    # fleet management
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` external workers connect to."""
        return self._address

    def _worker_env(self, clean: bool) -> dict:
        env = dict(os.environ)
        # make sure the child can import repro even when the parent was
        # launched with a cwd-relative PYTHONPATH
        package_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        paths = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        if package_root not in paths:
            env["PYTHONPATH"] = os.pathsep.join([package_root] + paths)
        if clean:
            for name in _REPLACEMENT_STRIP_ENV:
                env.pop(name, None)
        return env

    def _spawn_worker(self, clean: bool) -> None:
        host, port = self.address
        command = [sys.executable, "-m", "repro", "worker",
                   "--connect", f"{host}:{port}",
                   "--heartbeat", f"{self.worker_heartbeat:g}"]
        proc = subprocess.Popen(command, env=self._worker_env(clean))
        self._stats.workers_spawned += 1
        remote.FLIGHT.note("worker", "spawn", pid=proc.pid,
                           replacement=clean)
        self._pending_procs = getattr(self, "_pending_procs", [])
        self._pending_procs.append(proc)

    def _accept(self) -> None:
        sock, _addr = self._listener.accept()
        sock.settimeout(10.0)
        link = _WorkerLink(sock=sock)
        self._links.append(link)
        self._selector.register(sock, selectors.EVENT_READ, link)

    def _adopt_proc(self, link: _WorkerLink) -> None:
        """Match a hello'd link to the subprocess we spawned for it."""
        for proc in getattr(self, "_pending_procs", []):
            if proc.pid == link.pid:
                link.proc = proc
                self._pending_procs.remove(proc)
                return

    def _drop_worker(self, link: _WorkerLink, reason: str) -> None:
        try:
            self._selector.unregister(link.sock)
        except (KeyError, ValueError):
            pass
        try:
            link.sock.close()
        except OSError:
            pass
        if link.proc is not None and link.proc.poll() is None:
            link.proc.terminate()
            try:
                link.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                link.proc.kill()
                link.proc.wait()
        if link in self._links:
            self._links.remove(link)
        remote.FLIGHT.note("worker", "drop", pid=link.pid, reason=reason)

    def live_workers(self) -> int:
        return sum(1 for link in self._links if link.hello)

    def _reap_spawn_failures(self) -> None:
        """Fail fast when a spawned worker exits before saying hello.

        Without this, a worker that can't even import repro (bad
        PYTHONPATH, broken install) would leave the dispatch loop
        waiting for a registration that never comes.
        """
        for proc in list(getattr(self, "_pending_procs", [])):
            code = proc.poll()
            if code is None:
                continue
            self._pending_procs.remove(proc)
            raise SweepError(
                f"spawned worker pid {proc.pid} exited with code {code} "
                f"before registering; check that `repro worker` can run "
                f"in this environment"
            )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def submit(self, items: Sequence[WorkItem]) -> Iterator[PointResult]:
        if self.closed:
            raise SweepError("socket backend already closed")
        pending: List[WorkItem] = list(items)
        requeues: Dict[int, int] = {}
        done = 0
        total = len(pending)
        depth = _queue_depth_gauge()
        waited = 0.0
        try:
            while done < total:
                self._dispatch_idle(pending)
                in_flight = sum(1 for link in self._links
                                if link.item is not None)
                depth.set(in_flight)
                if not self._links and not self.spawn:
                    if waited >= self.accept_timeout:
                        raise SweepError(
                            f"no worker registered within "
                            f"{self.accept_timeout:g}s on "
                            f"{self.address[0]}:{self.address[1]}; start "
                            f"one with: repro worker --connect "
                            f"{self.address[0]}:{self.address[1]}"
                        )
                self._reap_spawn_failures()
                events = self._selector.select(timeout=0.1)
                waited += 0.1 if not events else 0.0
                for key, _mask in events:
                    if key.data == "listener":
                        self._accept()
                        continue
                    link: _WorkerLink = key.data
                    for result in self._drain_link(link, pending, requeues):
                        done += 1
                        yield result
                for result in self._reap_timeouts(pending, requeues):
                    done += 1
                    yield result
        finally:
            depth.set(0)

    def _dispatch_idle(self, pending: List[WorkItem]) -> None:
        for link in list(self._links):
            if not pending:
                return
            if not link.idle:
                continue
            item = pending.pop(0)
            self._seq += 1
            link.item = item
            link.seq = self._seq
            link.submit_ns = time.perf_counter_ns()
            link.submitted = time.perf_counter()
            link.last_seen = time.monotonic()
            try:
                send_pickle(link.sock, ("work", link.seq, item.point,
                                        item.ctx))
            except OSError:
                # send failure == death; requeue via the common path
                link.item = None
                pending.insert(0, item)
                self._worker_died(link, item, pending, {}, "send-failed",
                                  requeue=False)
                continue
            self._stats.dispatched += 1
            remote.FLIGHT.note(
                "dispatch", f"{item.point.kernel}:{item.point.n}",
                index=item.index, run=item.ctx.run_id, seq=link.seq,
                worker=link.pid,
            )

    def _drain_link(self, link: _WorkerLink, pending: List[WorkItem],
                    requeues: Dict[int, int]) -> List[PointResult]:
        try:
            data = link.sock.recv(1 << 16)
        except (ConnectionResetError, OSError):
            data = b""
        if not data:
            self._worker_died(link, link.item, pending, requeues,
                              "connection-lost")
            return []
        link.last_seen = time.monotonic()
        results: List[PointResult] = []
        for kind, message in link.reader.feed(data):
            if kind == KIND_JSON:
                self._handle_control(link, message)
            else:
                result = self._handle_pickle(link, message, requeues)
                if result is not None:
                    results.append(result)
        return results

    def _handle_control(self, link: _WorkerLink, message: dict) -> None:
        mtype = message.get("type")
        if mtype == "hello":
            version = message.get("version")
            if version != WIRE_VERSION:
                self._drop_worker(link, f"wire version {version} != "
                                        f"{WIRE_VERSION}")
                raise SweepError(
                    f"worker speaks wire version {version}, parent "
                    f"speaks {WIRE_VERSION}; upgrade one of them"
                )
            link.pid = int(message.get("pid", 0)) or None
            link.hello = True
            self._adopt_proc(link)
        elif mtype == "heartbeat":
            pass  # last_seen already refreshed by the read itself
        else:
            self._drop_worker(link, f"unknown control {mtype!r}")

    def _handle_pickle(self, link: _WorkerLink, message,
                       requeues: Dict[int, int]) -> Optional[PointResult]:
        if (not isinstance(message, tuple) or len(message) < 2
                or message[0] not in ("result", "error")):
            self._drop_worker(link, "malformed frame")
            raise SweepError(f"malformed worker frame from {link.label()}")
        tag, seq = message[0], message[1]
        if link.item is None or seq != link.seq:
            # a stale echo from a worker whose point was requeued after
            # a timeout; the point already ran (or will run) elsewhere
            remote.FLIGHT.note("worker", "stale-frame", pid=link.pid,
                              seq=seq)
            return None
        item = link.item
        link.item = None
        if tag == "error":
            _tag, _seq, exc_type, text = message
            raise SweepPointError(
                f"{text} [via {link.label()}, {exc_type}]"
            )
        payload = message[2]
        if not isinstance(payload, dict):
            raise SweepError(
                f"worker returned {type(payload).__name__}, expected a "
                f"payload dict"
            )
        self._stats.completed += 1
        return PointResult(
            index=item.index, payload=payload,
            submit_ns=link.submit_ns,
            elapsed_seconds=time.perf_counter() - link.submitted,
            worker=link.pid,
            requeues=requeues.get(item.index, 0),
        )

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _worker_died(self, link: _WorkerLink, item: Optional[WorkItem],
                     pending: List[WorkItem], requeues: Dict[int, int],
                     reason: str, requeue: bool = True) -> None:
        self._stats.worker_deaths += 1
        self._drop_worker(link, reason)
        if item is not None and requeue:
            count = requeues.get(item.index, 0) + 1
            requeues[item.index] = count
            label = f"{item.point.kernel}:{item.point.n}"
            if count > self.max_requeues:
                dump = remote.FLIGHT.dump(
                    "worker-death", point=repr(item.point),
                    requeues=count - 1, cause=reason,
                )
                raise SweepError(
                    f"sweep point {label} killed {count} worker(s) "
                    f"({reason}); giving up after {self.max_requeues} "
                    f"requeue(s) [flight-recorder dump: {dump}]"
                )
            self._stats.requeued += 1
            remote.FLIGHT.note("requeue", label, attempt=count,
                              reason=reason, worker=link.pid)
            pending.insert(0, item)
        if self.spawn and not self.closed:
            # replacements never inherit the one-shot fault hooks
            self._spawn_worker(clean=True)

    def _reap_timeouts(self, pending: List[WorkItem],
                       requeues: Dict[int, int]) -> List[PointResult]:
        now = time.monotonic()
        for link in list(self._links):
            if not link.hello:
                continue
            quiet = now - link.last_seen
            if quiet > self.heartbeat_timeout:
                self._worker_died(link, link.item, pending, requeues,
                                  f"heartbeat silent {quiet:.1f}s")
                continue
            if (self.point_timeout is not None and link.item is not None
                    and time.perf_counter() - link.submitted
                    > self.point_timeout):
                self._worker_died(link, link.item, pending, requeues,
                                  f"point exceeded "
                                  f"{self.point_timeout:g}s timeout")
        return []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        doc = super().stats()
        doc["workers"] = self.live_workers()
        doc["address"] = "%s:%d" % self.address
        return doc

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for link in list(self._links):
            try:
                send_json(link.sock, {"type": "shutdown"})
            except OSError:
                pass
            self._drop_worker(link, "shutdown")
        for proc in getattr(self, "_pending_procs", []):
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        self._pending_procs = []
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()

    def __repr__(self) -> str:
        return (f"SocketWorkerBackend(workers={self.workers}, "
                f"address={'%s:%d' % self.address}, spawn={self.spawn})")
