"""The sweep execution backend protocol.

The executor used to hard-wire two dispatch paths (in-process serial
and a ``ProcessPoolExecutor`` fan-out) into ``run_plan``.  The backend
protocol extracts that choice behind three small types:

* :class:`WorkItem` — one pending point (plan index, the picklable
  :class:`~repro.sweep.plan.SweepPoint`, and its
  :class:`~repro.obs.remote.TraceContext`);
* :class:`PointResult` — one completed point: the serialised payload
  plus dispatch/latency observability fields;
* :class:`SweepBackend` — ``submit(items) -> iterator of PointResult``
  (completion order, not plan order), ``stats()``, ``close()``.

``run_plan`` speaks *only* to this protocol: it probes the cache,
hands the misses to the backend, and folds results back into plan
order.  Because every backend funnels points through the same
:func:`~repro.sweep.executor.simulate_point` → serialised-payload
path, serial, local-pool and socket-worker execution are bit-identical
by construction — ``tests/sweep/test_backends.py`` checksums it.

Backends are context managers and reusable: ``submit`` may be called
any number of times before ``close`` (the service layer keeps one
long-lived backend across requests).  A backend instance is *not*
safe for concurrent ``submit`` calls unless its class says otherwise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ...obs.remote import TraceContext
from ..plan import SweepPoint

__all__ = ["PointResult", "SweepBackend", "WorkItem"]


@dataclass(frozen=True)
class WorkItem:
    """One pending sweep point, addressed by its plan index."""

    index: int
    point: SweepPoint
    ctx: TraceContext


@dataclass
class PointResult:
    """One completed point: the payload plus dispatch observability.

    ``payload`` is exactly what :func:`simulate_point` returned —
    including the ``telemetry`` section when collection was on; the
    executor pops that before the payload can reach the result cache.
    ``submit_ns`` is the dispatch instant (``time.perf_counter_ns``,
    comparable across processes on Linux) feeding the causal flow
    links in the merged flame view; ``elapsed_seconds`` is
    submit-to-completion latency for the point-latency histogram.
    """

    index: int
    payload: dict
    submit_ns: int
    elapsed_seconds: float
    worker: Optional[int] = None
    requeues: int = 0


@dataclass
class BackendStats:
    """Counters every backend keeps; ``stats()`` returns the dict."""

    dispatched: int = 0
    completed: int = 0
    requeued: int = 0
    worker_deaths: int = 0
    workers_spawned: int = 0

    def to_dict(self) -> dict:
        return {
            "dispatched": self.dispatched,
            "completed": self.completed,
            "requeued": self.requeued,
            "worker_deaths": self.worker_deaths,
            "workers_spawned": self.workers_spawned,
        }


class SweepBackend(ABC):
    """Executes sweep work items and streams results back.

    Subclasses set ``name`` (the CLI spelling) and ``parallel``
    (whether points run outside the calling process — the executor
    uses it as the default for distributed-telemetry collection).
    """

    name: str = "?"
    parallel: bool = False

    def __init__(self) -> None:
        self._stats = BackendStats()
        self.closed = False

    @abstractmethod
    def submit(self, items: Sequence[WorkItem]) -> Iterator[PointResult]:
        """Execute ``items``; yield results in *completion* order.

        Exactly one result per item unless an item's simulation fails,
        in which case the iterator raises (``SweepPointError`` for a
        point failure, ``SweepError`` for an executor-level failure).
        """

    def stats(self) -> dict:
        """Backend counters (dispatch/completion/requeue totals)."""
        doc = {"backend": self.name, "parallel": self.parallel}
        doc.update(self._stats.to_dict())
        return doc

    def close(self) -> None:
        """Release workers/pools; idempotent."""
        self.closed = True

    def __enter__(self) -> "SweepBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
