"""In-process serial backend: simulate each point on the calling thread.

The reference implementation of the protocol and the baseline every
other backend must match bit-for-bit.  Points run in item order, so
completion order equals submission order here (the only backend with
that property — consumers must not rely on it).
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

from ..executor import simulate_point
from .base import PointResult, SweepBackend, WorkItem

__all__ = ["SerialBackend"]


class SerialBackend(SweepBackend):
    """Simulate every item in-process, one at a time."""

    name = "serial"
    parallel = False

    def submit(self, items: Sequence[WorkItem]) -> Iterator[PointResult]:
        for item in items:
            self._stats.dispatched += 1
            submit_ns = time.perf_counter_ns()
            t0 = time.perf_counter()
            payload = simulate_point(item.point, item.ctx)
            self._stats.completed += 1
            yield PointResult(
                index=item.index, payload=payload, submit_ns=submit_ns,
                elapsed_seconds=time.perf_counter() - t0,
            )
