"""The ``repro worker`` process: one socket, one point at a time.

A worker connects to a :class:`~repro.sweep.backends.socketworker.
SocketWorkerBackend` listener, introduces itself with a JSON hello
(pid + wire version), then loops: receive a ``("work", seq, point,
ctx)`` pickle frame, run :func:`~repro.sweep.executor.simulate_point`,
ship ``("result", seq, payload)`` back.  Point failures become
``("error", seq, exc_type, message)`` frames — the worker stays alive
so one bad point doesn't cost a process spawn.

A daemon thread sends ``{"type": "heartbeat"}`` every ``heartbeat``
seconds so the parent can tell a slow point from a hung process; the
socket is shared, so every send goes through one lock.  A clean exit
is a ``{"type": "shutdown"}`` frame or EOF from the parent.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Optional

from ..errors import ReproError, SweepError
from .wire import KIND_JSON, KIND_PICKLE, WIRE_VERSION, recv_frame, send_json, send_pickle

__all__ = ["worker_main"]

#: how long the worker keeps retrying the initial connect; covers the
#: parent still being inside its bind/listen window
CONNECT_RETRY_SECONDS = 10.0


def _connect(host: str, port: int) -> socket.socket:
    deadline = time.monotonic() + CONNECT_RETRY_SECONDS
    last: Optional[OSError] = None
    while time.monotonic() < deadline:
        try:
            return socket.create_connection((host, port), timeout=5.0)
        except OSError as exc:
            last = exc
            time.sleep(0.05)
    raise SweepError(f"worker could not connect to {host}:{port}: {last}")


def _heartbeat_loop(sock: socket.socket, lock: threading.Lock,
                    period: float, stop: threading.Event) -> None:
    doc = {"type": "heartbeat", "pid": os.getpid()}
    while not stop.wait(period):
        try:
            with lock:
                send_json(sock, doc)
        except OSError:
            return  # parent is gone; the main loop will notice too


def worker_main(connect: str, heartbeat: float = 0.5) -> int:
    """Run the worker loop; returns the process exit code."""
    # deferred so `repro worker --help` stays fast
    from .executor import simulate_point

    host, _, port_text = connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise SweepError(
            f"--connect wants host:port, got {connect!r}"
        )
    sock = _connect(host, int(port_text))
    sock.settimeout(None)
    send_lock = threading.Lock()
    stop = threading.Event()
    with send_lock:
        send_json(sock, {"type": "hello", "pid": os.getpid(),
                         "version": WIRE_VERSION})
    if heartbeat > 0:
        threading.Thread(
            target=_heartbeat_loop, args=(sock, send_lock, heartbeat, stop),
            name="repro-worker-heartbeat", daemon=True,
        ).start()
    try:
        while True:
            try:
                frame = recv_frame(sock)
            except OSError:
                return 0
            if frame is None:
                return 0  # parent hung up
            kind, message = frame
            if kind == KIND_JSON:
                if message.get("type") == "shutdown":
                    return 0
                continue  # unknown control frames are ignorable
            if kind != KIND_PICKLE:
                continue
            if (not isinstance(message, tuple) or len(message) != 4
                    or message[0] != "work"):
                raise SweepError(f"worker got malformed frame: "
                                 f"{message!r:.200}")
            _tag, seq, point, ctx = message
            try:
                payload = simulate_point(point, ctx)
            except ReproError as exc:
                with send_lock:
                    send_pickle(sock, ("error", seq,
                                       type(exc).__name__, str(exc)))
                continue
            with send_lock:
                send_pickle(sock, ("result", seq, payload))
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass
