"""Content-addressed on-disk cache for sweep measurements.

Every sweep point's full input — machine recipe, kernel identity and
arguments, size, protocol, repetitions, core set, SIMD width — is
hashed together with a simulator *version salt* into a SHA-256 key.
The key addresses a small JSON file under the cache root (sharded by
the first two hex digits, ``ab/abcdef....json``), holding the
measurement payload plus a checksum over its canonical encoding.

Integrity rules:

* entries are written atomically (temp file + ``os.replace``) so a
  crashed run can leave at worst a stray temp file, never a torn entry;
* every load re-verifies the checksum and the payload schema; a
  truncated, corrupted, or stale entry is treated as a *miss* (and
  counted as ``corrupt``), so the point is transparently re-simulated —
  bad bytes are never silently returned;
* :data:`VERSION_SALT` participates in every key.  Bump it whenever a
  simulator change alters measured values; old entries then simply stop
  being addressed, no invalidation pass required.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional, Tuple

from ..errors import SweepError
from .serialize import PAYLOAD_SCHEMA

#: simulator version salt — part of every cache key.  Bump on any
#: change that can move a measured W/Q/T value (timing model, cache
#: simulation, codegen, measurement protocol).
VERSION_SALT = "roofline-sim-2"

#: default cache location, relative to the working directory unless
#: overridden by the REPRO_SWEEP_CACHE environment variable
DEFAULT_CACHE_DIR = os.path.join("artifacts", "sweepcache")

#: lookup outcomes
HIT, MISS, CORRUPT = "hit", "miss", "corrupt"


def canonical_json(doc: dict) -> str:
    """Deterministic encoding: sorted keys, no whitespace."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def point_key(point, salt: str = VERSION_SALT) -> str:
    """SHA-256 hex key for one sweep point under ``salt``."""
    doc = {"salt": salt, "schema": PAYLOAD_SCHEMA, "point": point.key_doc()}
    try:
        encoded = canonical_json(doc)
    except (TypeError, ValueError) as exc:
        raise SweepError(
            f"sweep point is not canonically hashable: {exc}"
        ) from exc
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _checksum(payload: dict) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def default_cache_dir() -> str:
    return os.environ.get("REPRO_SWEEP_CACHE", DEFAULT_CACHE_DIR)


class SweepCache:
    """Filesystem-backed, checksum-verified measurement store."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()

    def path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Tuple[Optional[dict], str]:
        """``(payload, status)``: payload is ``None`` unless status=hit.

        Any defect — unreadable file, bad JSON, wrong envelope, key or
        checksum mismatch — downgrades to a miss so the caller
        re-simulates; a defective *existing* entry reports ``corrupt``.
        """
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None, MISS
        except (OSError, ValueError):
            return None, CORRUPT
        if not isinstance(entry, dict):
            return None, CORRUPT
        payload = entry.get("payload")
        if (entry.get("key") != key or not isinstance(payload, dict)
                or entry.get("checksum") != _checksum(payload)):
            return None, CORRUPT
        return payload, HIT

    def store(self, key: str, payload: dict) -> str:
        """Atomically persist one payload; returns the entry path."""
        path = self.path(key)
        entry = {
            "key": key,
            "salt": VERSION_SALT,
            "checksum": _checksum(payload),
            "payload": payload,
        }
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def entries(self):
        """Yield ``(path, size_bytes, mtime)`` for every cache entry."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                yield path, st.st_size, st.st_mtime

    def gc(self, max_bytes: Optional[int] = None,
           max_age_seconds: Optional[float] = None,
           now: Optional[float] = None) -> dict:
        """Prune the cache: drop stale entries, then the oldest past a
        size budget.

        ``max_age_seconds`` removes every entry older than that (by
        mtime; ``store`` rewrites an entry, refreshing it).  After the
        age pass, ``max_bytes`` evicts oldest-first until the remaining
        entries (plus stray ``.tmp`` droppings, which are always
        removed) fit the budget.  Either bound may be ``None``.

        Returns a summary: ``scanned`` / ``removed`` entry counts,
        bytes ``reclaimed``, bytes ``kept``.  Concurrently-vanishing
        files are skipped, so gc is safe to run beside live sweeps.
        """
        import time as _time
        now = _time.time() if now is None else now
        scanned = removed = reclaimed = 0
        survivors = []  # (mtime, size, path), age-pruned
        for path, size, mtime in self.entries():
            if path.endswith(".tmp"):
                removed += self._unlink(path)
                reclaimed += size
                continue
            scanned += 1
            if (max_age_seconds is not None
                    and now - mtime > max_age_seconds):
                removed += self._unlink(path)
                reclaimed += size
                continue
            survivors.append((mtime, size, path))
        kept = sum(size for _, size, _ in survivors)
        if max_bytes is not None and kept > max_bytes:
            survivors.sort()  # oldest first
            while survivors and kept > max_bytes:
                _mtime, size, path = survivors.pop(0)
                removed += self._unlink(path)
                reclaimed += size
                kept -= size
        self._prune_empty_shards()
        return {"scanned": scanned, "removed": removed,
                "reclaimed_bytes": reclaimed, "kept_bytes": kept}

    def _unlink(self, path: str) -> int:
        try:
            os.unlink(path)
            return 1
        except OSError:
            return 0

    def _prune_empty_shards(self) -> None:
        if not os.path.isdir(self.root):
            return
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir) and not os.listdir(shard_dir):
                try:
                    os.rmdir(shard_dir)
                except OSError:
                    pass

    def __repr__(self) -> str:
        return f"SweepCache({self.root!r})"
