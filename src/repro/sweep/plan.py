"""Declarative sweep plans: the measurement grid as data.

A roofline sweep is a grid of measurement points — (kernel x size x
protocol x machine-config x core-set) — and the paper's methodology
evaluates each point independently: fresh machine, two-run subtraction,
medians over repetitions.  :class:`SweepPoint` captures one point as
plain data; :class:`SweepPlan` is an ordered collection of points.

Because a point is pure data (the machine is a :class:`MachineRef`
recipe, the kernel a registry name + kwargs), plans pickle cleanly to
worker processes and hash stably into cache keys.  Point order is
execution-irrelevant — every point builds its own machine — but result
order always matches plan order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Tuple

from ..errors import SweepError
from ..kernels.registry import kernel_names, make_kernel
from ..machine.ref import KwargItems, MachineRef


@dataclass(frozen=True)
class SweepPoint:
    """One independent measurement: everything measure_kernel needs."""

    #: recipe for the platform this point is measured on
    machine: MachineRef
    #: kernel registry name (see :mod:`repro.kernels.registry`)
    kernel: str
    #: problem size (elements / matrix order, per the kernel's convention)
    n: int
    #: cache-state protocol applied before the measured run
    protocol: str = "cold"
    #: measurement repetitions summarised into the reported medians
    reps: int = 2
    #: core ids executing the kernel (static partitioning)
    cores: Tuple[int, ...] = (0,)
    #: extra keyword arguments for the kernel factory, sorted items
    kernel_args: KwargItems = ()
    #: SIMD width override passed to codegen (``None`` = machine max)
    width_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kernel not in kernel_names():
            raise SweepError(
                f"unknown kernel {self.kernel!r} in sweep point"
            )
        if self.n <= 0:
            raise SweepError(f"sweep point needs positive n, got {self.n}")
        if self.reps < 1:
            raise SweepError("sweep point needs at least one repetition")
        if not self.cores:
            raise SweepError("sweep point needs at least one core")

    def build_kernel(self):
        return make_kernel(self.kernel, **dict(self.kernel_args))

    def key_doc(self) -> dict:
        """Canonical JSON-able identity; the cache key hashes this."""
        return {
            "machine": self.machine.key_doc(),
            "kernel": self.kernel,
            "kernel_args": [[k, v] for k, v in self.kernel_args],
            "n": self.n,
            "protocol": self.protocol,
            "reps": self.reps,
            "cores": list(self.cores),
            "width_bits": self.width_bits,
        }

    def label(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.kernel_args)
        return (f"{self.kernel} n={self.n} ({self.protocol}, "
                f"{len(self.cores)}t{extra}) on {self.machine.describe()}")


class SweepPlan:
    """An ordered list of sweep points with grid-builder helpers."""

    def __init__(self, points: Iterable[SweepPoint] = ()) -> None:
        self.points: List[SweepPoint] = list(points)

    def add(self, point: SweepPoint) -> SweepPoint:
        self.points.append(point)
        return point

    def add_sweep(self, machine: MachineRef, kernel: str,
                  sizes: Iterable[int], protocol: str = "cold",
                  reps: int = 2, cores: Tuple[int, ...] = (0,),
                  kernel_args: Optional[dict] = None,
                  width_bits: Optional[int] = None) -> List[SweepPoint]:
        """Append one size sweep (a single roofline trajectory)."""
        args = tuple(sorted((kernel_args or {}).items()))
        added = [
            SweepPoint(machine=machine, kernel=kernel, n=n,
                       protocol=protocol, reps=reps, cores=tuple(cores),
                       kernel_args=args, width_bits=width_bits)
            for n in sizes
        ]
        self.points.extend(added)
        return added

    def extend(self, other: "SweepPlan") -> None:
        self.points.extend(other.points)

    def with_reps(self, reps: int) -> "SweepPlan":
        """A copy of the plan with every point's rep count replaced."""
        return SweepPlan(replace(p, reps=reps) for p in self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def __repr__(self) -> str:
        return f"SweepPlan({len(self.points)} points)"
