"""Named measurement grids: the paper's figure sweeps as SweepPlans.

The roofline experiments (F4-F7) each sweep one kernel family across
working-set sizes chosen relative to the machine's cache capacities.
This module holds both halves reusably:

* the *size selectors* (``daxpy_sizes`` & friends), shared with
  :mod:`repro.experiments.rooflines` so the ``repro sweep --grid f4``
  CLI and the F4 experiment enumerate the exact same grid;
* the *grid builders* (``GRIDS``), which turn a machine ref into the
  full plan (all protocols / variants of that figure).

Sizes depend only on a machine's static spec, so building a scratch
machine from the ref just to read cache capacities is cheap and has no
effect on measured points.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from ..errors import SweepError
from ..machine.machine import Machine
from ..machine.ref import MachineRef
from ..units import round_to
from .plan import SweepPlan

#: dgemm variants swept by the F6 figure, slowest first
DGEMM_VARIANTS = ("naive", "ikj", "tiled")


def daxpy_sizes(machine: Machine, quick: bool) -> List[int]:
    """F4 grid: working sets straddling L2, L3, and DRAM residency."""
    hier = machine.spec.hierarchy
    targets = [hier.l2.size_bytes // 2, hier.l3.size_bytes // 2,
               2 * hier.l3.size_bytes]
    if not quick:
        targets.insert(0, hier.l1.size_bytes // 2)
        targets.append(6 * hier.l3.size_bytes)
    return sorted({round_to(t // 16, 32) for t in targets})


def dgemv_sizes(machine: Machine, quick: bool) -> List[int]:
    """F5 grid: matrix orders whose footprint brackets the L3."""
    hier = machine.spec.hierarchy
    targets = [hier.l3.size_bytes // 2, 2 * hier.l3.size_bytes]
    if not quick:
        targets.insert(0, hier.l2.size_bytes)
    return sorted({round_to(int(math.sqrt(t / 8)), 8) for t in targets})


def dgemm_sizes(machine: Machine, quick: bool) -> List[int]:
    """F6 grid: small orders — dgemm is compute-bound, not capacity-probing."""
    return [32, 64] if quick else [32, 64, 96, 128]


def fft_sizes(machine: Machine, quick: bool) -> List[int]:
    """F7 grid: power-of-two transform lengths up to 2x L3 residency."""
    l3 = machine.spec.hierarchy.l3.size_bytes
    max_exp = int(math.log2(max(2 * l3 // 24, 1 << 10)))
    exps = range(8, min(max_exp, 12) + 1, 2) if quick else \
        range(8, max_exp + 1, 2)
    return [1 << e for e in exps]


def f4_daxpy_grid(ref: MachineRef, quick: bool = False,
                  reps: int = 2) -> SweepPlan:
    """The F4 figure's full grid: daxpy sizes, cold and warm."""
    sizes = daxpy_sizes(ref.build(), quick)
    plan = SweepPlan()
    for protocol in ("cold", "warm"):
        plan.add_sweep(ref, "daxpy", sizes, protocol=protocol, reps=reps)
    return plan


def f5_dgemv_grid(ref: MachineRef, quick: bool = False,
                  reps: int = 2) -> SweepPlan:
    """The F5 grid: dgemv row- and column-major, cold caches."""
    sizes = dgemv_sizes(ref.build(), quick)
    plan = SweepPlan()
    for kernel in ("dgemv-row", "dgemv-col"):
        plan.add_sweep(ref, kernel, sizes, protocol="cold", reps=reps)
    return plan


def f6_dgemm_grid(ref: MachineRef, quick: bool = False,
                  reps: int = 2) -> SweepPlan:
    """The F6 grid: dgemm variants, warm caches."""
    sizes = [n for n in dgemm_sizes(ref.build(), quick) if n % 32 == 0]
    plan = SweepPlan()
    for variant in DGEMM_VARIANTS:
        plan.add_sweep(ref, f"dgemm-{variant}", sizes, protocol="warm",
                       reps=reps)
    return plan


def f7_fft_grid(ref: MachineRef, quick: bool = False,
                reps: int = 2) -> SweepPlan:
    """The F7 grid: FFT, warm and cold."""
    sizes = fft_sizes(ref.build(), quick)
    plan = SweepPlan()
    for protocol in ("warm", "cold"):
        plan.add_sweep(ref, "fft", sizes, protocol=protocol, reps=reps)
    return plan


#: named grids accepted by ``repro sweep --grid``
GRIDS: Dict[str, Callable[..., SweepPlan]] = {
    "f4": f4_daxpy_grid,
    "f5": f5_dgemv_grid,
    "f6": f6_dgemm_grid,
    "f7": f7_fft_grid,
}


def make_grid(name: str, ref: MachineRef, quick: bool = False,
              reps: int = 2) -> SweepPlan:
    """Build a named grid's plan for ``ref``."""
    try:
        builder = GRIDS[name.lower()]
    except KeyError as exc:
        raise SweepError(
            f"unknown grid {name!r}; known: {sorted(GRIDS)}"
        ) from exc
    return builder(ref, quick=quick, reps=reps)
