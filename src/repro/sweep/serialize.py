"""Lossless Measurement <-> JSON payload conversion for the sweep cache.

Every result the sweep engine produces — whether simulated in-process,
simulated in a worker, or replayed from the on-disk cache — passes
through this module.  Funnelling all three paths through one serialised
form is what makes the determinism guarantee *checkable*: serial,
parallel and cached runs return measurements rebuilt from byte-wise
identical payloads.

Floats survive exactly: ``json`` emits ``repr``-based shortest
round-trip literals, so ``payload_to_measurement(measurement_to_payload
(m))`` reproduces every W/Q/T bit.  Traces are deliberately not
serialised — sweep points are measured with tracing off, and a cached
point has no trace to offer.
"""

from __future__ import annotations

from typing import Optional

from ..errors import MeasurementError
from ..measure.runner import Measurement
from ..measure.stats import Summary

#: payload schema version — bump on any field change so stale cache
#: entries fail structural validation instead of deserialising wrongly
#: (2: added per-level traffic ``level_bytes``)
PAYLOAD_SCHEMA = 2

_SUMMARY_FIELDS = ("median", "mean", "minimum", "maximum", "count")
_MEASUREMENT_FIELDS = (
    "kernel", "n", "threads", "protocol", "machine", "work_flops",
    "traffic_bytes", "llc_bytes", "runtime_seconds", "true_flops",
    "compulsory_bytes", "reps", "level_bytes",
)
_SUMMARY_KEYS = ("work_summary", "traffic_summary", "runtime_summary")


def _summary_to_doc(summary: Optional[Summary]) -> Optional[dict]:
    if summary is None:
        return None
    return {name: getattr(summary, name) for name in _SUMMARY_FIELDS}


def _summary_from_doc(doc: Optional[dict]) -> Optional[Summary]:
    if doc is None:
        return None
    return Summary(**{name: doc[name] for name in _SUMMARY_FIELDS})


def measurement_to_payload(m: Measurement) -> dict:
    """JSON-able document carrying every field of one Measurement."""
    doc = {"schema": PAYLOAD_SCHEMA}
    for name in _MEASUREMENT_FIELDS:
        doc[name] = getattr(m, name)
    for name in _SUMMARY_KEYS:
        doc[name] = _summary_to_doc(getattr(m, name))
    return doc


def payload_to_measurement(doc: dict) -> Measurement:
    """Rebuild a Measurement; raises MeasurementError on a bad payload."""
    if not isinstance(doc, dict) or doc.get("schema") != PAYLOAD_SCHEMA:
        raise MeasurementError(
            f"unsupported measurement payload schema: "
            f"{doc.get('schema') if isinstance(doc, dict) else type(doc)}"
        )
    try:
        fields = {name: doc[name] for name in _MEASUREMENT_FIELDS}
        summaries = {name: _summary_from_doc(doc[name])
                     for name in _SUMMARY_KEYS}
    except (KeyError, TypeError) as exc:
        raise MeasurementError(f"malformed measurement payload: {exc}") from exc
    return Measurement(trace=None, **fields, **summaries)
