"""Analytic W/Q oracles for the kernel registry.

Checks every registry kernel's *measured* work and traffic — obtained
through the full two-run measurement methodology — against values
derived from an independent model:

* an **oracle machine** whose every cache level is larger than the
  kernel footprints under test.  In that regime the expected counters
  have a closed form: a cold kernel's DRAM reads are exactly its
  first-touch lines (compulsory misses incl. RFO), nothing it dirties
  is ever written back inside the measured window, and a warm kernel
  hits L1 on everything except non-temporal stores;
* the :class:`~repro.oracle.refmem.InfiniteCacheMemory` driven by the
  :class:`~repro.oracle.reference.ReferenceInterpreter`, which
  reproduces those counters — including the documented cold-cache FP
  *overcount artifact* (reissued dependent ops, the paper's
  experiment F2) — without any of the fast path's machinery;
* literal closed-form traffic expressions for the streaming kernels
  (``CLOSED_FORM_Q_COLD``), pinned as numbers so a regression in
  either the model or the measurement stack cannot hide.

With prefetchers **off**, measured W and Q must equal the model
exactly.  With prefetchers **on**, exactness is deliberately not
required — prefetch traffic is genuinely nondeterministic-looking
(training state) — but W must stay between the true flop count and the
prefetch-off expectation, and Q must stay between the compulsory
expectation and a documented overfetch allowance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..kernels.base import CodegenCaps
from ..kernels.registry import kernel_names, make_kernel
from ..machine.machine import Machine
from ..machine.presets import oracle_test_machine
from ..measure.runner import measure_kernel
from ..memory.allocator import Allocation
from ..pmu.events import FP_EVENT_LANES_F64
from ..units import KIB
from .refmem import InfiniteCacheMemory
from .reference import ReferenceInterpreter

#: problem size per kernel, chosen so every footprint fits well inside
#: the oracle machine's caches (the regime where the model is exact)
ORACLE_SIZES: Dict[str, int] = {
    "daxpy": 256, "triad": 256, "triad-nt": 256, "dot": 256,
    "scale": 256, "sum": 256, "strided-sum": 256, "read": 256,
    "memset": 256, "memset-nt": 256, "memcpy": 256, "memcpy-nt": 256,
    "dgemv-row": 64, "dgemv-col": 64,
    "dgemm-naive": 16, "dgemm-ikj": 16, "dgemm-blocked": 16,
    "dgemm-tiled": 16,
    "fft": 64, "spmv": 64, "spmv-wide": 64, "stencil3": 256,
    "ert": 256,
}

#: closed-form measured cold traffic (prefetch off) for the streaming
#: kernels: 64-byte lines first-touched by the measured pass — reads
#: plus RFO plus non-temporal lines, no writebacks (caches hold all
#: dirtied lines for the whole window).  Byte counts, exact.
CLOSED_FORM_Q_COLD: Dict[str, Callable[[int], int]] = {
    "read": lambda n: 8 * n,             # stream a
    "sum": lambda n: 8 * n,              # stream a
    "scale": lambda n: 16 * n,           # read a + RFO b
    "daxpy": lambda n: 16 * n,           # read x + RFO y
    "dot": lambda n: 16 * n,             # read x + read y
    "triad": lambda n: 24 * n,           # read b,c + RFO a
    "triad-nt": lambda n: 24 * n,        # read b,c + NT a
    "memset": lambda n: 8 * n,           # RFO only
    "memset-nt": lambda n: 8 * n,        # NT lines only
    "memcpy": lambda n: 16 * n,          # read src + RFO dst
    "memcpy-nt": lambda n: 16 * n,       # read src + NT dst
    "ert": lambda n: 8 * n,              # read a; stores hit the read lines
}

#: footprint ceiling for oracle runs — ¼ of each cache level, so a
#: contiguous working set can never exceed a set's associativity
_FOOTPRINT_LIMIT = 64 * KIB


def oracle_machine() -> Machine:
    """Single-core machine with uniformly large caches and zero noise.

    Every level is 256 KiB/16-way (256 sets, power of two), so any
    kernel footprint under :data:`_FOOTPRINT_LIMIT` is conflict-free
    at every level and the infinite-cache model is exact.  Kept as
    small as that argument allows: the honest cold protocol sweeps a
    buster of twice the aggregate capacity per measurement window, so
    oracle wall time scales with cache size.

    The geometry lives in :func:`repro.machine.presets.oracle_test_machine`
    (registered as the ``oracle`` preset) so sweeps and
    ``repro.analyze`` can address the same machine by recipe.
    """
    return oracle_test_machine()


def oracle_n(kernel_name: str) -> int:
    """The standard oracle problem size for a registry kernel."""
    return ORACLE_SIZES.get(kernel_name, 256)


# ----------------------------------------------------------------------
# model-side expectations
# ----------------------------------------------------------------------
def _synthetic_layout(program) -> Dict[str, Allocation]:
    """Page-aligned, widely separated buffer placement.

    First-touch line counts only depend on layout through line
    alignment and non-overlap, both of which the real loader also
    guarantees — so the model may pick its own bases.
    """
    layout = {}
    for i, name in enumerate(sorted(program.buffers)):
        layout[name] = Allocation(name, (i + 1) << 23,
                                  program.buffers[name], 0)
    return layout


def _counted_flops(counters: Dict[str, int]) -> float:
    """Mirror of ``flops_from_session`` over reference counters."""
    return float(sum(lanes * counters.get(event, 0)
                     for event, lanes in FP_EVENT_LANES_F64))


def _mark_resident(memory: InfiniteCacheMemory, layout) -> None:
    """Init surrogate: every buffer line resident and dirty (the init
    pass stores to each line of each buffer)."""
    for alloc in layout.values():
        first = alloc.base >> 6
        last = (alloc.base + alloc.size - 1) >> 6
        for line in range(first, last + 1):
            memory.resident.add(line)
            memory.dirty.add(line)


def expected_w_q(kernel_name: str, n: int,
                 protocol: str) -> Tuple[float, float]:
    """Model-expected measured (W flops, Q bytes), prefetchers off."""
    machine = oracle_machine()
    caps = CodegenCaps.from_machine(machine)
    kernel = make_kernel(kernel_name)
    program = kernel.build(n, caps, rank=0, nranks=1)
    layout = _synthetic_layout(program)
    dram = machine.spec.hierarchy.dram
    bpc = min(dram.per_core_bytes_per_cycle, dram.bytes_per_cycle_total)

    memory = InfiniteCacheMemory()
    interp = ReferenceInterpreter(machine.spec, memory)
    if protocol == "warm":
        _mark_resident(memory, layout)
        interp.execute(program, layout, bpc)     # warmup pass
        memory.reset_counters()
    elif protocol != "cold":
        raise ValueError(f"unknown protocol {protocol!r}")
    result = interp.execute(program, layout, bpc)
    work = _counted_flops(result.counters)
    traffic = 64.0 * (memory.dram_read_lines + memory.dram_write_lines)
    return work, traffic


def expected_level_bytes(kernel_name: str, n: int,
                         protocol: str) -> Dict[str, float]:
    """Model-expected per-level traffic in bytes, prefetchers off.

    Uses exactly the counter derivations the measurement stack uses
    (line-granular: 64 bytes per counted line event), so a hierarchical
    roofline's per-level intensities can be pinned against it:

    * ``L1``   — every demand access resolved by the hierarchy
      (``l1_accesses`` x line size),
    * ``L2``   — lines filled into L1 (``l1_replacement``),
    * ``L3``   — lines filled into L2 (``l2_lines_in``),
    * ``DRAM`` — IMC CAS reads+writes, identical to
      :func:`expected_w_q`'s Q.
    """
    machine = oracle_machine()
    caps = CodegenCaps.from_machine(machine)
    kernel = make_kernel(kernel_name)
    program = kernel.build(n, caps, rank=0, nranks=1)
    layout = _synthetic_layout(program)
    dram = machine.spec.hierarchy.dram
    bpc = min(dram.per_core_bytes_per_cycle, dram.bytes_per_cycle_total)

    memory = InfiniteCacheMemory()
    interp = ReferenceInterpreter(machine.spec, memory)
    if protocol == "warm":
        _mark_resident(memory, layout)
        interp.execute(program, layout, bpc)     # warmup pass
        memory.reset_counters()
    elif protocol != "cold":
        raise ValueError(f"unknown protocol {protocol!r}")
    result = interp.execute(program, layout, bpc)
    c = result.counters
    return {
        "L1": 64.0 * c.get("l1_accesses", 0),
        "L2": 64.0 * c.get("l1_replacement", 0),
        "L3": 64.0 * c.get("l2_lines_in", 0),
        "DRAM": 64.0 * (memory.dram_read_lines + memory.dram_write_lines),
    }


# ----------------------------------------------------------------------
# measurement-side checks
# ----------------------------------------------------------------------
def check_kernel(kernel_name: str, n: Optional[int] = None) -> List[str]:
    """Check one kernel across cold/warm x prefetch on/off.

    Returns a list of human-readable problems (empty = conformant).
    """
    n = n if n is not None else oracle_n(kernel_name)
    problems: List[str] = []
    kernel = make_kernel(kernel_name)
    if kernel.footprint_bytes(n) > _FOOTPRINT_LIMIT:
        return [f"{kernel_name}: footprint {kernel.footprint_bytes(n)} "
                f"exceeds the oracle limit {_FOOTPRINT_LIMIT}; the "
                f"big-cache model would not be exact — lower n"]

    for protocol in ("cold", "warm"):
        exp_w, exp_q = expected_w_q(kernel_name, n, protocol)

        # ---- prefetchers off: the model is exact ----
        machine = oracle_machine()
        machine.prefetch_control.disable_all()
        meas = measure_kernel(machine, make_kernel(kernel_name), n,
                              protocol=protocol, reps=1)
        if abs(meas.work_flops - exp_w) > 0.5:
            problems.append(
                f"{kernel_name} {protocol}/off: W={meas.work_flops} "
                f"expected {exp_w}"
            )
        if abs(meas.traffic_bytes - exp_q) > 0.5:
            problems.append(
                f"{kernel_name} {protocol}/off: Q={meas.traffic_bytes} "
                f"expected {exp_q}"
            )
        if protocol == "warm" and abs(meas.work_flops
                                      - meas.true_flops) > 0.5:
            # warm runs never miss, so never reissue: W == true W
            problems.append(
                f"{kernel_name} warm/off: W={meas.work_flops} != "
                f"true {meas.true_flops} (unexpected overcount)"
            )
        if protocol == "cold" and kernel_name in CLOSED_FORM_Q_COLD:
            closed = float(CLOSED_FORM_Q_COLD[kernel_name](n))
            if abs(exp_q - closed) > 0.5:
                problems.append(
                    f"{kernel_name} cold: model Q={exp_q} disagrees "
                    f"with closed form {closed}"
                )
            if abs(meas.traffic_bytes - closed) > 0.5:
                problems.append(
                    f"{kernel_name} cold: measured Q="
                    f"{meas.traffic_bytes} != closed form {closed}"
                )

        # ---- prefetchers on: bounded, not exact ----
        machine = oracle_machine()
        machine.prefetch_control.write_msr(0)
        meas_on = measure_kernel(machine, make_kernel(kernel_name), n,
                                 protocol=protocol, reps=1)
        if meas_on.work_flops < meas_on.true_flops - 0.5:
            problems.append(
                f"{kernel_name} {protocol}/on: W={meas_on.work_flops} "
                f"below true {meas_on.true_flops}"
            )
        if meas_on.work_flops > exp_w + 0.5:
            # prefetching can only convert misses into hits, which
            # can only lower the reissue overcount
            problems.append(
                f"{kernel_name} {protocol}/on: W={meas_on.work_flops} "
                f"above prefetch-off expectation {exp_w}"
            )
        if meas_on.traffic_bytes < exp_q - 0.5:
            problems.append(
                f"{kernel_name} {protocol}/on: Q={meas_on.traffic_bytes} "
                f"below compulsory {exp_q}"
            )
        allowance = 2.5 * exp_q + 16384.0
        if meas_on.traffic_bytes > allowance:
            problems.append(
                f"{kernel_name} {protocol}/on: Q={meas_on.traffic_bytes} "
                f"exceeds overfetch allowance {allowance}"
            )
    return problems


def check_all_kernels(names: Optional[List[str]] = None
                      ) -> Dict[str, List[str]]:
    """Run :func:`check_kernel` over the registry; name -> problems."""
    results = {}
    for name in (names if names is not None else kernel_names()):
        results[name] = check_kernel(name)
    return results
