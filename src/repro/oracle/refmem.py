"""Reference memory models for the conformance harness.

Two deliberately simple backends implement the same per-line port
interface the reference interpreter drives:

* :class:`ReferenceMemory` — straight-line textbook set-associative
  caches (explicit ways arrays with LRU timestamps, no dict-order
  tricks), a two-level TLB, per-node DRAM counters, and the hardware
  prefetch engines.  It re-derives every statistic the fast
  :class:`~repro.memory.hierarchy.CorePort` reports, one line at a
  time, so the differential engine can diff the two implementations
  field by field.
* :class:`InfiniteCacheMemory` — an idealised machine whose cache holds
  every line ever touched.  On a capacious "oracle" machine the fast
  path must agree with it exactly, which turns it into an analytic
  W/Q oracle for the kernel registry (see :mod:`repro.oracle.analytic`).

The hardware prefetch *engine* classes (next-line/stream/stride) are
reused from :mod:`repro.prefetch` rather than re-implemented: their
per-engine logic is already covered by dedicated unit tests, and the
conformance target is the interpreter/hierarchy batching around them.
Everything else — lookup, fill, eviction, writeback absorption, TLB
walks, DRAM counting — is written independently here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..memory.cache import CacheConfig, CacheStats
from ..memory.hierarchy import default_prefetchers
from ..prefetch import PrefetchControl

#: the exact counter set of ``BatchStats.as_dict`` (kept literal on
#: purpose: if the fast path grows a counter the diff must notice)
STAT_KEYS: Tuple[str, ...] = (
    "accesses",
    "l1_hits",
    "l2_hits",
    "l3_hits",
    "dram_reads",
    "writebacks",
    "nt_lines",
    "l1_evictions",
    "l2_evictions",
    "l3_evictions",
    "sw_prefetches",
    "hw_prefetch_issued",
    "hw_prefetch_dram_reads",
    "prefetch_useful",
    "remote_dram_lines",
    "flushes",
    "tlb_misses",
    "tlb_walk_cycles",
)


def zero_stats() -> Dict[str, int]:
    """A fresh all-zero batch counter dict."""
    return {key: 0 for key in STAT_KEYS}


class RefCache:
    """Textbook set-associative write-back cache.

    Explicit ``ways`` arrays per set with an LRU timestamp per way — no
    insertion-order tricks.  Statistic accounting mirrors
    :class:`repro.memory.cache.Cache` operation for operation.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self.nsets = config.nsets
        self.assoc = config.assoc
        self.tags: List[List[Optional[int]]] = [
            [None] * self.assoc for _ in range(self.nsets)
        ]
        self.dirty: List[List[bool]] = [
            [False] * self.assoc for _ in range(self.nsets)
        ]
        self.stamps: List[List[int]] = [
            [0] * self.assoc for _ in range(self.nsets)
        ]
        self._tick = 0

    def _set_index(self, line: int) -> int:
        return line % self.nsets

    def _find_way(self, set_idx: int, line: int) -> Optional[int]:
        for way in range(self.assoc):
            if self.tags[set_idx][way] == line:
                return way
        return None

    def _touch(self, set_idx: int, way: int) -> None:
        self._tick += 1
        self.stamps[set_idx][way] = self._tick

    def lookup_update(self, line: int, mark_dirty: bool = False) -> bool:
        """Demand access: refresh recency (and dirty) on hit; no fill."""
        set_idx = self._set_index(line)
        way = self._find_way(set_idx, line)
        if way is None:
            self.stats.misses += 1
            return False
        self._touch(set_idx, way)
        if mark_dirty:
            self.dirty[set_idx][way] = True
        self.stats.hits += 1
        return True

    def fill(self, line: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert ``line``; returns ``(evicted_line, was_dirty)`` or None."""
        self.stats.fills += 1
        set_idx = self._set_index(line)
        way = self._find_way(set_idx, line)
        if way is not None:
            # refill refreshes recency and ORs the dirty flag
            self._touch(set_idx, way)
            self.dirty[set_idx][way] = self.dirty[set_idx][way] or dirty
            return None
        for way in range(self.assoc):
            if self.tags[set_idx][way] is None:
                self.tags[set_idx][way] = line
                self.dirty[set_idx][way] = dirty
                self._touch(set_idx, way)
                return None
        # full set: evict the least recently used way
        victim_way = 0
        for way in range(1, self.assoc):
            if self.stamps[set_idx][way] < self.stamps[set_idx][victim_way]:
                victim_way = way
        evicted = (self.tags[set_idx][victim_way],
                   self.dirty[set_idx][victim_way])
        self.stats.evictions += 1
        if evicted[1]:
            self.stats.dirty_evictions += 1
        self.tags[set_idx][victim_way] = line
        self.dirty[set_idx][victim_way] = dirty
        self._touch(set_idx, victim_way)
        return evicted

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit without touching recency or hit stats."""
        set_idx = self._set_index(line)
        way = self._find_way(set_idx, line)
        if way is None:
            return False
        self.dirty[set_idx][way] = True
        return True

    def invalidate(self, line: int) -> Optional[bool]:
        """Drop ``line`` if present; returns its dirty flag, else None."""
        set_idx = self._set_index(line)
        way = self._find_way(set_idx, line)
        if way is None:
            return None
        was_dirty = self.dirty[set_idx][way]
        self.tags[set_idx][way] = None
        self.dirty[set_idx][way] = False
        self.stats.invalidations += 1
        return was_dirty

    def contains(self, line: int) -> bool:
        return self._find_way(self._set_index(line), line) is not None

    def resident_lines(self) -> frozenset:
        return frozenset(
            tag for ways in self.tags for tag in ways if tag is not None
        )

    def dirty_lines(self) -> frozenset:
        out = []
        for set_idx in range(self.nsets):
            for way in range(self.assoc):
                if self.tags[set_idx][way] is not None \
                        and self.dirty[set_idx][way]:
                    out.append(self.tags[set_idx][way])
        return frozenset(out)


class RefTlb:
    """Two-level fully-associative LRU TLB with explicit timestamps."""

    def __init__(self, config) -> None:
        self.config = config
        self._l1: Dict[int, int] = {}   # page -> stamp
        self._l2: Dict[int, int] = {}
        self._tick = 0

    def _stamp(self) -> int:
        self._tick += 1
        return self._tick

    def _oldest(self, level: Dict[int, int]) -> int:
        victim = None
        for page, stamp in level.items():
            if victim is None or stamp < level[victim]:
                victim = page
        return victim

    def translate_page(self, page: int) -> int:
        """Translate one page access; returns walk cycles incurred."""
        if page in self._l1:
            self._l1[page] = self._stamp()
            return 0
        if page in self._l2:
            del self._l2[page]
            self._fill(page)
            return 0
        self._fill(page)
        return self.config.walk_latency_cycles

    def _fill(self, page: int) -> None:
        if len(self._l1) >= self.config.l1_entries:
            victim = self._oldest(self._l1)
            del self._l1[victim]
            if len(self._l2) >= self.config.l2_entries:
                del self._l2[self._oldest(self._l2)]
            self._l2[victim] = self._stamp()
        self._l1[page] = self._stamp()

    def page_sets(self) -> Tuple[frozenset, frozenset]:
        return frozenset(self._l1), frozenset(self._l2)


class ReferenceMemory:
    """Textbook re-implementation of the whole memory hierarchy.

    Exposes per-line operations (``access`` / ``sw_prefetch`` /
    ``flush``) that transcribe the fast :class:`CorePort` resolution
    protocol — L1 -> L2 -> L3 -> DRAM with fill/writeback cascades,
    prefetch engine training and TLB walks — without any batching.
    """

    def __init__(self, spec, prefetch_mask: int = 0) -> None:
        config = spec.hierarchy
        topology = spec.topology
        self.config = config
        self.topology = topology
        self.control = PrefetchControl()
        self.control.write_msr(prefetch_mask)
        ncores = topology.total_cores
        sockets = topology.sockets
        self.l1 = [RefCache(config.l1) for _ in range(ncores)]
        self.l2 = [RefCache(config.l2) for _ in range(ncores)]
        self.l3 = [RefCache(config.l3) for _ in range(sockets)]
        self.dram_reads = [0] * sockets
        self.dram_writes = [0] * sockets
        self.tlbs = [RefTlb(config.tlb) for _ in range(ncores)]
        self.engines = [default_prefetchers() for _ in range(ncores)]
        self.prefetched: List[set] = [set() for _ in range(ncores)]
        self.last_page = [-1] * ncores
        self._page_shift = (
            config.tlb.page_bytes.bit_length()
            - config.line_bytes.bit_length()
        )

    # ------------------------------------------------------------------
    # per-line operations
    # ------------------------------------------------------------------
    def access(self, core: int, line: int, is_write: bool, nt: bool,
               home: int, stream_id: int, stats: Dict[str, int]) -> None:
        if nt:
            self._nt_store(core, line, home, stats)
        else:
            self._demand(core, line, is_write, home, stream_id, stats)

    def _translate(self, core: int, line: int, stats: Dict[str, int]) -> None:
        page = line >> self._page_shift
        if page != self.last_page[core]:
            self.last_page[core] = page
            walk = self.tlbs[core].translate_page(page)
            if walk:
                stats["tlb_misses"] += 1
                stats["tlb_walk_cycles"] += walk

    def _enabled_engines(self, core: int) -> list:
        return [engine for engine in self.engines[core]
                if self.control.is_enabled(engine.kind)]

    def _demand(self, core: int, line: int, is_write: bool, home: int,
                stream_id: int, stats: Dict[str, int]) -> None:
        stats["accesses"] += 1
        self._translate(core, line, stats)
        node = self.topology.node_of_core(core)
        l1 = self.l1[core]
        l2 = self.l2[core]
        l3 = self.l3[node]
        prefetched = self.prefetched[core]
        engines = self._enabled_engines(core)
        if l1.lookup_update(line, is_write):
            stats["l1_hits"] += 1
            for engine in engines:
                if engine.train_on_hits:
                    candidates = engine.observe(line, False, stream_id)
                    if candidates:
                        self._hw_prefetch(core, candidates, home, stats)
            return
        if l2.lookup_update(line):
            stats["l2_hits"] += 1
            if line in prefetched:
                prefetched.discard(line)
                stats["prefetch_useful"] += 1
                for engine in engines:
                    engine.stats.useful += 1
        elif l3.lookup_update(line):
            stats["l3_hits"] += 1
            if line in prefetched:
                prefetched.discard(line)
                stats["prefetch_useful"] += 1
            self._fill_l2(core, line, stats, home)
        else:
            self.dram_reads[home] += 1
            stats["dram_reads"] += 1
            if home != node:
                stats["remote_dram_lines"] += 1
            self._fill_l3(core, line, stats, home)
            self._fill_l2(core, line, stats, home)
        self._fill_l1(core, line, is_write, stats, home)
        for engine in engines:
            candidates = engine.observe(line, True, stream_id)
            if candidates:
                self._hw_prefetch(core, candidates, home, stats)

    def _nt_store(self, core: int, line: int, home: int,
                  stats: Dict[str, int]) -> None:
        stats["accesses"] += 1
        self._translate(core, line, stats)
        node = self.topology.node_of_core(core)
        self.l1[core].invalidate(line)
        self.l2[core].invalidate(line)
        self.l3[node].invalidate(line)
        self.dram_writes[home] += 1
        stats["nt_lines"] += 1
        if home != node:
            stats["remote_dram_lines"] += 1

    # ------------------------------------------------------------------
    # fill / writeback cascades
    # ------------------------------------------------------------------
    def _fill_l1(self, core: int, line: int, dirty: bool,
                 stats: Dict[str, int], home: int) -> None:
        evicted = self.l1[core].fill(line, dirty=dirty)
        if evicted is not None:
            stats["l1_evictions"] += 1
            if evicted[1]:
                self._absorb_dirty(core, "l2", evicted[0], stats, home)

    def _fill_l2(self, core: int, line: int, stats: Dict[str, int],
                 home: int) -> None:
        evicted = self.l2[core].fill(line)
        if evicted is not None:
            stats["l2_evictions"] += 1
            if evicted[1]:
                self._absorb_dirty(core, "l3", evicted[0], stats, home)

    def _fill_l3(self, core: int, line: int, stats: Dict[str, int],
                 home: int) -> None:
        node = self.topology.node_of_core(core)
        evicted = self.l3[node].fill(line)
        if evicted is not None:
            stats["l3_evictions"] += 1
            if evicted[1]:
                self.dram_writes[home] += 1
                stats["writebacks"] += 1

    def _absorb_dirty(self, core: int, level: str, line: int,
                      stats: Dict[str, int], home: int) -> None:
        node = self.topology.node_of_core(core)
        lower = self.l2[core] if level == "l2" else self.l3[node]
        if lower.mark_dirty(line):
            return
        evicted = lower.fill(line, dirty=True)
        if evicted is None:
            return
        if level == "l2":
            stats["l2_evictions"] += 1
            if evicted[1]:
                self._absorb_dirty(core, "l3", evicted[0], stats, home)
        else:
            stats["l3_evictions"] += 1
            if evicted[1]:
                self.dram_writes[home] += 1
                stats["writebacks"] += 1

    # ------------------------------------------------------------------
    # prefetch / flush
    # ------------------------------------------------------------------
    def _hw_prefetch(self, core: int, lines, home: int,
                     stats: Dict[str, int]) -> None:
        node = self.topology.node_of_core(core)
        for line in lines:
            if self.l2[core].contains(line) or self.l1[core].contains(line):
                continue
            stats["hw_prefetch_issued"] += 1
            if not self.l3[node].lookup_update(line):
                self.dram_reads[home] += 1
                stats["hw_prefetch_dram_reads"] += 1
                self._fill_l3(core, line, stats, home)
            self._fill_l2(core, line, stats, home)
            self.prefetched[core].add(line)

    def sw_prefetch(self, core: int, line: int, home: int,
                    stats: Dict[str, int]) -> None:
        node = self.topology.node_of_core(core)
        stats["sw_prefetches"] += 1
        if self.l1[core].contains(line):
            return
        if not self.l2[core].contains(line):
            if not self.l3[node].lookup_update(line):
                self.dram_reads[home] += 1
                stats["hw_prefetch_dram_reads"] += 1
                self._fill_l3(core, line, stats, home)
            self._fill_l2(core, line, stats, home)
        self._fill_l1(core, line, False, stats, home)
        self.prefetched[core].add(line)

    def flush(self, core: int, line: int, home: int,
              stats: Dict[str, int]) -> None:
        node = self.topology.node_of_core(core)
        stats["flushes"] += 1
        dirty = False
        for cache in (self.l1[core], self.l2[core], self.l3[node]):
            flag = cache.invalidate(line)
            dirty = dirty or bool(flag)
        if dirty:
            self.dram_writes[home] += 1
            stats["writebacks"] += 1


class InfiniteCacheMemory:
    """Idealised backend: an infinitely capacious first-level cache.

    Every touched line stays resident forever, so demand traffic is
    exactly the compulsory (first-touch) stream plus non-temporal and
    flush traffic.  Driving the reference interpreter over this backend
    on a machine whose real caches hold the whole working set yields
    the *analytic* expected W and Q for a kernel — including the FP
    reissue overcount, which the interpreter derives from the same
    per-phase DRAM miss counts.
    """

    def __init__(self) -> None:
        self.resident: set = set()
        self.dirty: set = set()
        self.dram_read_lines = 0
        self.dram_write_lines = 0

    def reset_counters(self) -> None:
        self.dram_read_lines = 0
        self.dram_write_lines = 0

    def access(self, core: int, line: int, is_write: bool, nt: bool,
               home: int, stream_id: int, stats: Dict[str, int]) -> None:
        stats["accesses"] += 1
        if nt:
            self.resident.discard(line)
            self.dirty.discard(line)
            self.dram_write_lines += 1
            stats["nt_lines"] += 1
            return
        if line in self.resident:
            stats["l1_hits"] += 1
        else:
            self.resident.add(line)
            self.dram_read_lines += 1
            stats["dram_reads"] += 1
        if is_write:
            self.dirty.add(line)

    def sw_prefetch(self, core: int, line: int, home: int,
                    stats: Dict[str, int]) -> None:
        stats["sw_prefetches"] += 1
        if line not in self.resident:
            self.resident.add(line)
            self.dram_read_lines += 1
            stats["hw_prefetch_dram_reads"] += 1

    def flush(self, core: int, line: int, home: int,
              stats: Dict[str, int]) -> None:
        stats["flushes"] += 1
        if line in self.resident:
            if line in self.dirty:
                self.dram_write_lines += 1
                stats["writebacks"] += 1
            self.resident.discard(line)
            self.dirty.discard(line)
