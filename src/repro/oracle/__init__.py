"""Conformance oracles: reference models cross-checked against the
fast simulation paths.

Three pillars (see ``docs/TESTING.md``):

* :mod:`repro.oracle.refmem` / :mod:`repro.oracle.reference` — a
  deliberately slow, obviously-correct reference interpreter and
  textbook cache/TLB model,
* :mod:`repro.oracle.differential` — the engine that runs a program on
  both paths and diffs every observable, with greedy repro
  minimisation,
* :mod:`repro.oracle.analytic` — exact closed-form W(n)/Q(n) checks
  for every registry kernel.

Driven by ``repro conformance`` (seeded CLI fuzzing) and by the
hypothesis suite under ``tests/oracle/``.
"""

from .differential import (
    DifferentialOutcome,
    Divergence,
    diff_engine_sides,
    minimize_program,
    render_program,
    run_cross_engine,
    run_cross_engine_sequence,
    run_differential,
)
from .fuzz import ProgramGenerator, random_program
from .refmem import InfiniteCacheMemory, ReferenceMemory
from .reference import ReferenceInterpreter, RefResult

__all__ = [
    "DifferentialOutcome",
    "Divergence",
    "InfiniteCacheMemory",
    "diff_engine_sides",
    "ProgramGenerator",
    "ReferenceInterpreter",
    "ReferenceMemory",
    "RefResult",
    "minimize_program",
    "random_program",
    "render_program",
    "run_cross_engine",
    "run_cross_engine_sequence",
    "run_differential",
]
