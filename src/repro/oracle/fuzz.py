"""Random-program generator for the conformance fuzzer.

One generator serves two front ends:

* the ``repro conformance`` CLI drives it with :class:`random.Random`
  (seeded, reproducible, fast), and
* the hypothesis test-suite drives it with an adapter that maps
  ``randint``/``choice`` onto hypothesis draws, which makes every
  generated program shrinkable by hypothesis's machinery.

The rng therefore only needs two methods: ``randint(a, b)`` (inclusive
bounds, like :meth:`random.Random.randint`) and ``choice(seq)``.

Programs are always valid: in-bounds (``build(check_bounds=True)``),
no FMA (the Sandy Bridge port model rejects it), negative strides only
in single-site loop bodies (the fast path's documented restriction).
They deliberately stress the interpreter's coalescing semantics:
overlapping strides (stride < width), stride 0, multi-site interleaves,
gathers with duplicate/monotone/random index tables, loop nests with
straight-line instructions between levels, software prefetch and
flush sites, and dependent FP chains that trigger reissue overcounts.
"""

from __future__ import annotations

from typing import List, Tuple

from ..isa import ProgramBuilder
from ..isa.program import Program

_WIDTHS = (64, 128, 256)
_STRIDES = (0, 8, 16, 32, 64, 128, 256, 512)
_SIZES = (4096, 8192, 16384, 32768)
_OPS = ("add", "sub", "mul", "max", "min", "add", "mul", "div")
_PRECISIONS = ("f64", "f64", "f64", "f32")


class ProgramGenerator:
    """Build one random program per :meth:`generate` call."""

    def __init__(self, rng) -> None:
        self.rng = rng
        self._table_count = 0

    # ------------------------------------------------------------------
    def generate(self) -> Program:
        rng = self.rng
        b = ProgramBuilder()
        n_buffers = rng.randint(1, 3)
        buffers: List[Tuple[object, int]] = []
        for i in range(n_buffers):
            size = rng.choice(_SIZES)
            buffers.append((b.buffer(f"buf{i}", size), size))
        regs = b.regs(6)
        for _ in range(rng.randint(1, 3)):
            shape = rng.randint(0, 9)
            if shape <= 5:
                self._flat_loop(b, buffers, regs)
            elif shape <= 7:
                self._nested_loop(b, buffers, regs)
            else:
                self._straight_line(b, buffers, regs)
        return b.build()

    # ------------------------------------------------------------------
    # loop shapes
    # ------------------------------------------------------------------
    def _flat_loop(self, b, buffers, regs) -> None:
        rng = self.rng
        trips = rng.randint(1, 80)
        n_sites = rng.randint(1, 4)
        with b.loop(trips) as iv:
            if n_sites == 1 and rng.randint(0, 5) == 0:
                loaded = self._negative_site(b, buffers, regs, iv, trips)
            else:
                loaded = []
                for _ in range(n_sites):
                    loaded.extend(
                        self._site(b, buffers, regs, iv, trips)
                    )
            self._vec_ops(b, regs, loaded)

    def _nested_loop(self, b, buffers, regs) -> None:
        rng = self.rng
        outer_trips = rng.randint(1, 4)
        inner_trips = rng.randint(1, 32)
        with b.loop(outer_trips) as oi:
            if rng.randint(0, 2) == 0:
                # straight-line instruction between loop levels
                self._straight_line(b, buffers, regs)
            with b.loop(inner_trips) as ii:
                loaded = []
                for _ in range(rng.randint(1, 3)):
                    loaded.extend(self._nested_site(
                        b, buffers, regs, oi, outer_trips, ii, inner_trips
                    ))
                self._vec_ops(b, regs, loaded)

    def _straight_line(self, b, buffers, regs) -> None:
        rng = self.rng
        buf, size = rng.choice(buffers)
        width = rng.choice(_WIDTHS)
        kind = rng.randint(0, 4)
        # prefetch/flush hints are charged a full line by max_extent
        extent = 64 if kind in (2, 3) else width // 8
        offset = rng.randint(0, (size - extent) // 8) * 8
        if kind == 0:
            b.load(buf[offset], width=width)
        elif kind == 1:
            b.store(rng.choice(regs), buf[offset], width=width)
        elif kind == 2:
            b.prefetch(buf[offset])
        elif kind == 3:
            b.flush(buf[offset])
        else:
            op = rng.choice(_OPS)
            getattr(b, op if op not in ("max", "min") else op + "_")(
                rng.choice(regs), rng.choice(regs),
                width=width, precision=rng.choice(_PRECISIONS),
            )

    # ------------------------------------------------------------------
    # memory sites
    # ------------------------------------------------------------------
    def _affine_addr(self, buffers, trips: int, min_extent: int = 0):
        """(buffer handle, addr components) staying in bounds.

        ``min_extent`` widens the per-access byte budget beyond the
        vector width — prefetch/flush hints are charged a full
        64-byte line by ``Program.max_extent``.
        """
        rng = self.rng
        buf, size = rng.choice(buffers)
        width = rng.choice(_WIDTHS)
        width_bytes = max(width // 8, min_extent)
        offset = rng.randint(0, 63) * 8
        if offset + width_bytes > size:
            offset = 0
        room = size - width_bytes - offset
        legal = [s for s in _STRIDES if s * (trips - 1) <= room]
        stride = rng.choice(legal)
        return buf, stride, offset, width

    def _site(self, b, buffers, regs, iv, trips: int) -> list:
        """One in-loop memory site; returns regs it defined."""
        rng = self.rng
        kind = rng.randint(0, 7)
        if kind == 5:
            return [self._gather_site(b, buffers, iv, trips)]
        buf, stride, offset, width = self._affine_addr(
            buffers, trips, min_extent=64 if kind >= 6 else 0
        )
        addr = buf[iv * stride + offset] if stride else buf[offset]
        if kind in (0, 1):
            return [b.load(addr, width=width)]
        if kind == 2:
            b.store(rng.choice(regs), addr, width=width)
            return []
        if kind == 3:
            b.store(rng.choice(regs), addr, width=width, nt=True)
            return []
        if kind == 4:
            v = b.load(addr, width=width)
            return [b.add(v, rng.choice(regs), width=width)]
        if kind == 6:
            b.prefetch(addr)
            return []
        b.flush(addr)
        return []

    def _negative_site(self, b, buffers, regs, iv, trips: int) -> list:
        """A descending-stride site (single-site bodies only)."""
        rng = self.rng
        buf, size = rng.choice(buffers)
        width = rng.choice(_WIDTHS)
        width_bytes = width // 8
        stride = -rng.choice((8, 16))
        offset = (trips - 1) * (-stride) + rng.randint(0, 7) * 8
        if offset + width_bytes > size:
            offset = (trips - 1) * (-stride)
        addr = buf[iv * stride + offset]
        if rng.randint(0, 1):
            return [b.load(addr, width=width)]
        b.store(rng.choice(regs), addr, width=width)
        return []

    def _nested_site(self, b, buffers, regs, oi, outer_trips: int,
                     ii, inner_trips: int) -> list:
        rng = self.rng
        buf, size = rng.choice(buffers)
        width = rng.choice(_WIDTHS)
        width_bytes = width // 8
        inner = rng.choice((0, 8, 16, 64, 128))
        outer_candidates = [
            s for s in (0, 64, 256, 512, 1024, 2048)
            if (outer_trips - 1) * s + (inner_trips - 1) * inner
            + width_bytes <= size
        ]
        outer = rng.choice(outer_candidates)
        room = (size - width_bytes - (outer_trips - 1) * outer
                - (inner_trips - 1) * inner)
        offset = rng.randint(0, max(room // 8, 0)) * 8 if room > 0 else 0
        addr = buf[oi * outer + ii * inner + offset]
        kind = rng.randint(0, 3)
        if kind == 0:
            return [b.load(addr, width=width)]
        if kind == 1:
            b.store(rng.choice(regs), addr, width=width)
            return []
        if kind == 2:
            b.store(rng.choice(regs), addr, width=width, nt=True)
            return []
        v = b.load(addr, width=width)
        return [b.add(v, rng.choice(regs), width=width)]

    def _gather_site(self, b, buffers, iv, trips: int):
        rng = self.rng
        buf, size = rng.choice(buffers)
        width = rng.choice((64, 128))
        width_bytes = width // 8
        entry_stride = rng.choice((0, 1, 1, 2))
        table_len = trips * max(entry_stride, 1) + rng.randint(1, 16)
        idx0 = rng.randint(0, table_len - 1 - (trips - 1) * entry_stride)
        max_offset = (size - width_bytes) // 8
        flavor = rng.randint(0, 2)
        values = []
        for k in range(table_len):
            if flavor == 0:        # random scatter
                values.append(rng.randint(0, max_offset) * 8)
            elif flavor == 1:      # monotone with duplicates
                prev = values[-1] if values else 0
                nxt = prev + rng.randint(0, 2) * 8
                values.append(min(nxt, max_offset * 8))
            else:                  # few distinct targets, many repeats
                values.append((k % max(rng.randint(1, 4), 1))
                              * 8 % (max_offset * 8 + 8))
        table = b.index_table(f"tab{self._table_count}", values)
        self._table_count += 1
        index = (table[iv * entry_stride + idx0] if entry_stride
                 else table[idx0])
        return b.gather(buf, index, width=width)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _vec_ops(self, b, regs, loaded: list) -> None:
        rng = self.rng
        pool = list(loaded) + list(regs)
        for _ in range(rng.randint(0, 3)):
            op = rng.choice(_OPS)
            width = rng.choice(_WIDTHS)
            precision = rng.choice(_PRECISIONS)
            a = rng.choice(pool)
            c = rng.choice(pool)
            dst = rng.choice(pool) if rng.randint(0, 2) == 0 else None
            method = getattr(b, op if op not in ("max", "min") else op + "_")
            result = method(a, c, width=width, precision=precision, dst=dst)
            pool.append(result)


def random_program(rng) -> Program:
    """One random valid program from an rng with randint/choice."""
    return ProgramGenerator(rng).generate()
