"""Differential engine: fast path vs reference path, field by field.

Runs the same program through the optimised machine (vectorised
interpreter + batched hierarchy) and through the reference interpreter
over the textbook memory model, then diffs every observable the
measurement methodology depends on:

* cycle count and the per-phase cycle list (the first differing phase
  localises the divergent event),
* core PMU counters (FP events including the reissue overcount, cache
  events, TLB walks),
* the per-batch functional counters (``BatchStats``),
* per-level cache statistics (hits/misses/fills/evictions/...),
* per-node DRAM CAS counters (the uncore Q source, sans synthetic
  noise, which is deliberately bypassed: the noise model is additive
  and orthogonal to interpretation),
* final memory state: resident and dirty line sets of every level and
  the TLB's resident pages.

Cycles are floats accumulated in the same order on both sides, so they
are compared to 1e-9 relative tolerance; every integer counter must
match exactly (the PMU ``cycles`` event tolerates an off-by-one from
``int()`` truncation of near-equal floats).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from ..isa.assembler import format_program
from ..isa.instructions import Loop
from ..isa.program import Program
from ..machine.presets import tiny_test_machine
from ..obs.spans import SPANS
from .refmem import ReferenceMemory
from .reference import ReferenceInterpreter

#: cache-statistic fields diffed per level
_CACHE_STAT_FIELDS = ("hits", "misses", "fills", "evictions",
                      "dirty_evictions", "invalidations")


@dataclass
class Divergence:
    """One observable on which fast and reference paths disagree."""

    observable: str
    fast: object
    ref: object

    def as_dict(self) -> dict:
        return {"observable": self.observable,
                "fast": repr(self.fast), "ref": repr(self.ref)}

    def __str__(self) -> str:
        return f"{self.observable}: fast={self.fast!r} ref={self.ref!r}"


@dataclass
class DifferentialOutcome:
    """Everything one differential run produced."""

    divergences: List[Divergence]
    fast_cycles: float = 0.0
    ref_cycles: float = 0.0
    minimized: Optional[Program] = None

    @property
    def ok(self) -> bool:
        return not self.divergences


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def run_differential(program: Program, prefetch_mask: int = 0,
                     core_id: int = 0,
                     machine_factory: Callable = tiny_test_machine,
                     ) -> DifferentialOutcome:
    """Execute ``program`` on both paths and diff every observable."""
    machine = machine_factory()
    machine.prefetch_control.write_msr(prefetch_mask)
    loaded = machine.load(program)
    with SPANS("oracle.fast"):
        run = machine.run(loaded, core_id=core_id)
    res = run.result

    dram_cfg = machine.spec.hierarchy.dram
    # single active core: its DRAM share is the whole node, capped at
    # the per-core ceiling — mirrors Machine.run_parallel
    bpc = min(dram_cfg.per_core_bytes_per_cycle,
              dram_cfg.bytes_per_cycle_total)
    memory = ReferenceMemory(machine.spec, prefetch_mask)
    interp = ReferenceInterpreter(machine.spec, memory, core_id=core_id)
    with SPANS("oracle.reference"):
        ref = interp.execute(program, loaded.buffer_map, bpc)

    divs: List[Divergence] = []

    if not _close(res.cycles, ref.cycles):
        divs.append(Divergence("cycles", res.cycles, ref.cycles))
    if res.instructions != ref.instructions:
        divs.append(Divergence("instructions", res.instructions,
                               ref.instructions))
    if res.true_flops != ref.true_flops:
        divs.append(Divergence("true_flops", res.true_flops, ref.true_flops))

    fast_phases = [cost.total for cost in res.phases]
    if len(fast_phases) != len(ref.phase_totals):
        divs.append(Divergence("phase_count", len(fast_phases),
                               len(ref.phase_totals)))
    else:
        for idx, (a, b) in enumerate(zip(fast_phases, ref.phase_totals)):
            if not _close(a, b):
                # the first divergent phase localises the event
                divs.append(Divergence(f"phase[{idx}].cycles", a, b))
                break

    fast_batch = res.batch.as_dict()
    for key, value in fast_batch.items():
        if key not in ref.batch:
            divs.append(Divergence(f"batch.{key}", value, None))
        elif value != ref.batch[key]:
            divs.append(Divergence(f"batch.{key}", value, ref.batch[key]))

    pmu = machine.core_pmu(core_id).snapshot()
    for key in sorted(set(pmu) | set(ref.counters)):
        fast_value = pmu.get(key, 0)
        ref_value = ref.counters.get(key, 0)
        if key == "cycles":
            if abs(fast_value - ref_value) > 1:
                divs.append(Divergence(f"pmu.{key}", fast_value, ref_value))
        elif fast_value != ref_value:
            divs.append(Divergence(f"pmu.{key}", fast_value, ref_value))

    hier = machine.hierarchy
    node = hier.topology.node_of_core(core_id)
    levels = (
        ("l1", hier.l1[core_id], memory.l1[core_id]),
        ("l2", hier.l2[core_id], memory.l2[core_id]),
        ("l3", hier.l3[node], memory.l3[node]),
    )
    for name, fast_cache, ref_cache in levels:
        for stat in _CACHE_STAT_FIELDS:
            fast_value = getattr(fast_cache.stats, stat)
            ref_value = getattr(ref_cache.stats, stat)
            if fast_value != ref_value:
                divs.append(Divergence(f"{name}.{stat}", fast_value,
                                       ref_value))
        fast_resident = frozenset(fast_cache.resident_lines())
        ref_resident = ref_cache.resident_lines()
        if fast_resident != ref_resident:
            divs.append(Divergence(
                f"{name}.resident",
                sorted(fast_resident ^ ref_resident),
                "symmetric difference (fast^ref) shown under fast",
            ))
        fast_dirty = frozenset(fast_cache.dirty_lines())
        ref_dirty = ref_cache.dirty_lines()
        if fast_dirty != ref_dirty:
            divs.append(Divergence(
                f"{name}.dirty",
                sorted(fast_dirty ^ ref_dirty),
                "symmetric difference (fast^ref) shown under fast",
            ))

    for n, dram in enumerate(hier.dram):
        if dram.counters.cas_reads != memory.dram_reads[n]:
            divs.append(Divergence(f"dram[{n}].cas_reads",
                                   dram.counters.cas_reads,
                                   memory.dram_reads[n]))
        if dram.counters.cas_writes != memory.dram_writes[n]:
            divs.append(Divergence(f"dram[{n}].cas_writes",
                                   dram.counters.cas_writes,
                                   memory.dram_writes[n]))

    fast_tlb = hier.port(core_id).tlb.page_sets()
    ref_tlb = memory.tlbs[core_id].page_sets()
    if fast_tlb != ref_tlb:
        divs.append(Divergence("tlb.resident_pages", fast_tlb, ref_tlb))

    return DifferentialOutcome(divergences=divs, fast_cycles=res.cycles,
                               ref_cycles=ref.cycles)


def run_cross_engine(program: Program, prefetch_mask: int = 0,
                     core_id: int = 0,
                     machine_factory: Callable = tiny_test_machine,
                     ) -> DifferentialOutcome:
    """Execute ``program`` under both *execution engines* and diff.

    Unlike :func:`run_differential` (optimised machine vs the textbook
    reference model), both sides here are full machines — one with the
    batched two-tier engine (``engine="fast"``), one with the per-line
    dispatch path (``engine="reference"``).  The contract is stricter:
    every observable, including floating-point cycle totals, must be
    *bit-identical*, because the fast engine executes the same emission
    stream against the same functional state and the cycle model is a
    pure function of the batch counters.
    """
    sides = []
    for engine in ("fast", "reference"):
        machine = machine_factory()
        machine.engine = engine  # before the first core() call
        machine.prefetch_control.write_msr(prefetch_mask)
        loaded = machine.load(program)
        with SPANS(f"oracle.{engine}"):
            run = machine.run(loaded, core_id=core_id)
        sides.append((machine, run.result))
    (fast_m, fast_r), (ref_m, ref_r) = sides
    divs = diff_engine_sides(fast_m, fast_r, ref_m, ref_r, core_id)
    return DifferentialOutcome(divergences=divs, fast_cycles=fast_r.cycles,
                               ref_cycles=ref_r.cycles)


def run_cross_engine_sequence(programs, prefetch_mask: int = 0,
                              core_id: int = 0,
                              machine_factory: Callable = tiny_test_machine,
                              ) -> DifferentialOutcome:
    """Run a program *sequence* through one warm machine pair and diff.

    Unlike :func:`run_cross_engine`, which builds fresh machines per
    program, both machines persist across the whole sequence: caches
    stay warm, prefetchers stay trained, and — crucially — the fast
    engine's plan cache carries plans compiled under earlier programs
    into later ones.  This is the gate for size-polymorphic plans: a
    plan compiled for the loop at size A must rebind, not silently
    replay, when the same loop structure returns at size B with
    different trip counts and buffer placements.  Observables are
    diffed after every program; the first divergent step is reported
    with its index prefixed to each observable name.
    """
    fast_m = machine_factory()
    fast_m.engine = "fast"
    ref_m = machine_factory()
    ref_m.engine = "reference"
    fast_cycles = ref_cycles = 0.0
    for step, program in enumerate(programs):
        results = []
        for machine in (fast_m, ref_m):
            machine.prefetch_control.write_msr(prefetch_mask)
            loaded = machine.load(program)
            run = machine.run(loaded, core_id=core_id)
            results.append(run.result)
        fast_r, ref_r = results
        fast_cycles, ref_cycles = fast_r.cycles, ref_r.cycles
        divs = diff_engine_sides(fast_m, fast_r, ref_m, ref_r, core_id)
        if divs:
            return DifferentialOutcome(
                divergences=[Divergence(f"step[{step}].{d.observable}",
                                        d.fast, d.ref) for d in divs],
                fast_cycles=fast_cycles, ref_cycles=ref_cycles,
            )
    return DifferentialOutcome(divergences=[], fast_cycles=fast_cycles,
                               ref_cycles=ref_cycles)


def diff_engine_sides(fast_m, fast_r, ref_m, ref_r,
                      core_id: int) -> List[Divergence]:
    """Diff every cross-engine observable between two executed machines."""
    divs: List[Divergence] = []
    for name in ("cycles", "instructions", "true_flops"):
        a, b = getattr(fast_r, name), getattr(ref_r, name)
        if a != b:
            divs.append(Divergence(name, a, b))

    if len(fast_r.phases) != len(ref_r.phases):
        divs.append(Divergence("phase_count", len(fast_r.phases),
                               len(ref_r.phases)))
    else:
        for idx, (pa, pb) in enumerate(zip(fast_r.phases, ref_r.phases)):
            if pa.total != pb.total:
                divs.append(Divergence(f"phase[{idx}].cycles",
                                       pa.total, pb.total))
                break

    fast_batch = fast_r.batch.as_dict()
    ref_batch = ref_r.batch.as_dict()
    for key, value in fast_batch.items():
        if value != ref_batch.get(key):
            divs.append(Divergence(f"batch.{key}", value,
                                   ref_batch.get(key)))

    fast_pmu = fast_m.core_pmu(core_id).snapshot()
    ref_pmu = ref_m.core_pmu(core_id).snapshot()
    for key in sorted(set(fast_pmu) | set(ref_pmu)):
        a, b = fast_pmu.get(key, 0), ref_pmu.get(key, 0)
        if a != b:
            divs.append(Divergence(f"pmu.{key}", a, b))

    node = fast_m.hierarchy.topology.node_of_core(core_id)
    levels = (
        ("l1", fast_m.hierarchy.l1[core_id], ref_m.hierarchy.l1[core_id]),
        ("l2", fast_m.hierarchy.l2[core_id], ref_m.hierarchy.l2[core_id]),
        ("l3", fast_m.hierarchy.l3[node], ref_m.hierarchy.l3[node]),
    )
    for name, fast_cache, ref_cache in levels:
        for stat in _CACHE_STAT_FIELDS:
            a = getattr(fast_cache.stats, stat)
            b = getattr(ref_cache.stats, stat)
            if a != b:
                divs.append(Divergence(f"{name}.{stat}", a, b))
        if fast_cache.occupancy() != ref_cache.occupancy():
            divs.append(Divergence(f"{name}.occupancy",
                                   fast_cache.occupancy(),
                                   ref_cache.occupancy()))
        fast_resident = frozenset(fast_cache.resident_lines())
        ref_resident = frozenset(ref_cache.resident_lines())
        if fast_resident != ref_resident:
            divs.append(Divergence(
                f"{name}.resident",
                sorted(fast_resident ^ ref_resident),
                "symmetric difference (fast^ref) shown under fast",
            ))
        fast_dirty = frozenset(fast_cache.dirty_lines())
        ref_dirty = frozenset(ref_cache.dirty_lines())
        if fast_dirty != ref_dirty:
            divs.append(Divergence(
                f"{name}.dirty",
                sorted(fast_dirty ^ ref_dirty),
                "symmetric difference (fast^ref) shown under fast",
            ))

    for n, dram in enumerate(fast_m.hierarchy.dram):
        ref_dram = ref_m.hierarchy.dram[n]
        if dram.counters.cas_reads != ref_dram.counters.cas_reads:
            divs.append(Divergence(f"dram[{n}].cas_reads",
                                   dram.counters.cas_reads,
                                   ref_dram.counters.cas_reads))
        if dram.counters.cas_writes != ref_dram.counters.cas_writes:
            divs.append(Divergence(f"dram[{n}].cas_writes",
                                   dram.counters.cas_writes,
                                   ref_dram.counters.cas_writes))

    fast_tlb = fast_m.hierarchy.port(core_id).tlb.page_sets()
    ref_tlb = ref_m.hierarchy.port(core_id).tlb.page_sets()
    if fast_tlb != ref_tlb:
        divs.append(Divergence("tlb.resident_pages", fast_tlb, ref_tlb))

    return divs


# ----------------------------------------------------------------------
# greedy repro minimisation
# ----------------------------------------------------------------------
def minimize_program(program: Program,
                     still_diverges: Callable[[Program], bool],
                     max_attempts: int = 200) -> Program:
    """Greedy structural shrink of a divergent program.

    Repeatedly tries candidate edits — dropping a node, halving or
    decrementing a loop trip count — and keeps any edit under which
    ``still_diverges`` remains true.  Deterministic, so a minimized
    repro in a report is reproducible from the original seed.  (The
    hypothesis-based conformance tests additionally shrink through
    hypothesis's own machinery; this greedy pass is for CLI fuzzing,
    which runs outside hypothesis.)
    """
    attempts = 0
    current = program
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _shrink_candidates(current):
            attempts += 1
            try:
                if still_diverges(candidate):
                    current = candidate
                    progress = True
                    break
            except Exception:
                # an edit can produce an unexecutable program; skip it
                pass
            if attempts >= max_attempts:
                break
    return current


def _shrink_candidates(program: Program):
    for body in _edited_bodies(program.body):
        try:
            yield Program(list(body), program.buffers, program.tables)
        except Exception:
            continue


def _edited_bodies(nodes: tuple):
    """Yield copies of a node tuple with exactly one shrinking edit."""
    for i, node in enumerate(nodes):
        yield nodes[:i] + nodes[i + 1:]
        if isinstance(node, Loop):
            if node.trips > 1:
                yield (nodes[:i]
                       + (replace(node, trips=node.trips // 2),)
                       + nodes[i + 1:])
                yield (nodes[:i]
                       + (replace(node, trips=node.trips - 1),)
                       + nodes[i + 1:])
            for sub in _edited_bodies(node.body):
                yield (nodes[:i] + (replace(node, body=sub),)
                       + nodes[i + 1:])


def render_program(program: Program) -> str:
    """Best-effort textual form for divergence reports."""
    try:
        return format_program(program)
    except Exception:
        # gather programs are not textually representable; fall back to
        # a structural dump
        return _dump_nodes(program.body, 0)


def _dump_nodes(nodes, depth: int) -> str:
    pad = "  " * depth
    out = []
    for node in nodes:
        if isinstance(node, Loop):
            out.append(f"{pad}loop {node.loop_id} x{node.trips}:")
            out.append(_dump_nodes(node.body, depth + 1))
        else:
            out.append(f"{pad}{node}")
    return "\n".join(out)
