"""Deliberately slow reference interpreter for the conformance harness.

Executes a program iteration by iteration and line by line — no numpy
address vectorisation, no batched port calls, no closed-form iteration
skipping — while reproducing the canonical touch-stream semantics
documented in :mod:`repro.cpu.core`:

* affine sites coalesce under the monotone frontier rule (direction
  aware, gap lines skipped);
* gather sites coalesce consecutive duplicates of their per-iteration
  ``[first, end]`` line pair;
* multi-site bodies interleave in true iteration order, sites in body
  order within an iteration;
* straight-line memory instructions emit their full line range every
  execution.

The cycle model (phase bounds, exposed latency, FP reissue slots) and
PMU wiring are transcribed here from their specifications rather than
imported, so a regression in :mod:`repro.cpu.timing` or the
interpreter's event accounting shows up as a diff.  Only the pure
per-instruction port arithmetic (``fp_issue_cycles`` /
``mem_issue_cycles`` / ``latency``) is shared — it is config-table math
with its own unit tests, and duplicating it would test nothing.

The memory backend is pluggable (see :mod:`repro.oracle.refmem`):
:class:`ReferenceMemory` for differential conformance against the fast
hierarchy, :class:`InfiniteCacheMemory` for analytic kernel oracles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ExecutionError
from ..isa.instructions import (
    Flush,
    GatherLoad,
    Load,
    Loop,
    PrefetchHint,
    Store,
    VecOp,
)
from .refmem import STAT_KEYS, zero_stats

#: (width_bits, precision) -> core FP event id; literal on purpose so a
#: remapping in repro.pmu.events is caught by the differential run
_FP_EVENT = {
    (64, "f64"): "fp_scalar_f64",
    (128, "f64"): "fp_128_f64",
    (256, "f64"): "fp_256_f64",
    (512, "f64"): "fp_512_f64",
    (64, "f32"): "fp_scalar_f32",
    (128, "f32"): "fp_128_f32",
    (256, "f32"): "fp_256_f32",
    (512, "f32"): "fp_512_f32",
}


@dataclass
class RefResult:
    """Everything one reference execution produced."""

    cycles: float = 0.0
    instructions: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    batch: Dict[str, int] = field(default_factory=zero_stats)
    phase_totals: List[float] = field(default_factory=list)
    true_flops: int = 0


@dataclass
class _Site:
    instr: object
    kind: str          # 'load' | 'store' | 'ntstore' | 'gather' | 'prefetch' | 'flush'
    width_bits: int
    site_id: int


@dataclass
class _LoopAnalysis:
    fp_ops: Dict[Tuple[str, int], int]
    fp_events: Dict[Tuple[int, str, bool], int]
    dep_fp_events: Dict[Tuple[int, str, bool], int]
    chain_latency: int
    sites: List[_Site]
    load_widths: Dict[int, int]
    store_widths: Dict[int, int]
    body_len: int


class ReferenceInterpreter:
    """One core's worth of reference execution over a pluggable memory."""

    def __init__(self, spec, memory, core_id: int = 0) -> None:
        self.spec = spec
        self.ports = spec.ports
        self.config = spec.hierarchy
        self.timing = spec.timing
        self.memory = memory
        self.core_id = core_id
        self._line_shift = self.config.line_bytes.bit_length() - 1
        self._tables: Dict[str, object] = {}
        # site ids must be stable across re-executions of the same loop
        # object (the stride prefetcher keys on them), so analysis is
        # memoised exactly like the fast path does
        self._analysis: Dict[int, Tuple[Loop, _LoopAnalysis]] = {}
        self._next_site_id = core_id << 20

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def execute(self, program, buffer_map,
                dram_bytes_per_cycle: float) -> RefResult:
        for name in program.buffers:
            if name not in buffer_map:
                raise ExecutionError(f"buffer {name!r} not mapped")
        self._tables = program.tables
        result = RefResult()
        self._exec_nodes(program.body, {}, buffer_map,
                         dram_bytes_per_cycle, result)
        result.true_flops = self._true_flops(program.body, 1)
        counters = result.counters
        batch = result.batch
        counters["cycles"] = counters.get("cycles", 0) + int(result.cycles)
        counters["instructions"] = (
            counters.get("instructions", 0) + result.instructions
        )
        counters["l1_accesses"] = (
            counters.get("l1_accesses", 0) + batch["accesses"]
        )
        counters["l1_replacement"] = counters.get("l1_replacement", 0) + max(
            batch["accesses"] - batch["l1_hits"], 0
        )
        counters["l2_lines_in"] = counters.get("l2_lines_in", 0) + (
            batch["l3_hits"] + batch["dram_reads"]
            + batch["hw_prefetch_issued"]
        )
        counters["llc_misses"] = (
            counters.get("llc_misses", 0) + batch["dram_reads"]
        )
        counters["dtlb_walks"] = (
            counters.get("dtlb_walks", 0) + batch["tlb_misses"]
        )
        return result

    def _true_flops(self, nodes, multiplier: int) -> int:
        total = 0
        for node in nodes:
            if isinstance(node, Loop):
                total += self._true_flops(node.body, multiplier * node.trips)
            elif isinstance(node, VecOp):
                total += node.flops * multiplier
        return total

    # ------------------------------------------------------------------
    # tree walk
    # ------------------------------------------------------------------
    def _exec_nodes(self, nodes, ivs, buffers, dram_bpc, result) -> None:
        for node in nodes:
            if isinstance(node, Loop):
                if node.trips == 0:
                    continue
                if any(isinstance(child, Loop) for child in node.body):
                    for trip in range(node.trips):
                        ivs[node.loop_id] = trip
                        self._exec_nodes(node.body, ivs, buffers,
                                         dram_bpc, result)
                    del ivs[node.loop_id]
                else:
                    self._exec_flat(node, ivs, buffers, dram_bpc, result)
            else:
                self._exec_single(node, ivs, buffers, dram_bpc, result)

    # ------------------------------------------------------------------
    # flat loop, iteration by iteration
    # ------------------------------------------------------------------
    def _exec_flat(self, loop: Loop, ivs, buffers, dram_bpc, result) -> None:
        info = self._analyze(loop)
        trips = loop.trips

        # FP events counted one iteration at a time
        for _ in range(trips):
            for (width, prec, is_fma), instrs in info.fp_events.items():
                self._count_fp(width, prec, instrs, is_fma, result.counters)

        # memory traffic: per iteration, per site in body order,
        # per line — each site carries its own coalescing state
        stats = zero_stats()
        trackers = []
        for site in info.sites:
            trackers.append(self._site_tracker(site, loop.loop_id,
                                               ivs, buffers))
        for t in range(trips):
            for site, tracker in zip(info.sites, trackers):
                for line in tracker.lines_for(t):
                    self._dispatch(site, line, tracker.home, stats)

        fp_ops = {key: count * trips for key, count in info.fp_ops.items()}
        load_widths = {w: c * trips for w, c in info.load_widths.items()}
        store_widths = {w: c * trips for w, c in info.store_widths.items()}
        total = self._phase_total(
            fp_ops, load_widths, store_widths,
            float(info.chain_latency * trips), stats, dram_bpc,
        )

        # the FP reissue overcount: every slot re-counts the body's
        # load-dependent FP instructions once
        if info.dep_fp_events:
            slots = self._reissue_slots(stats)
            if slots:
                for (width, prec, is_fma), instrs in \
                        info.dep_fp_events.items():
                    self._count_fp(width, prec, instrs * slots, is_fma,
                                   result.counters)

        result.cycles += total
        result.instructions += info.body_len * trips
        self._merge(result.batch, stats)
        result.phase_totals.append(total)

    def _dispatch(self, site: _Site, line: int, home: int,
                  stats: Dict[str, int]) -> None:
        if site.kind == "prefetch":
            self.memory.sw_prefetch(self.core_id, line, home, stats)
        elif site.kind == "flush":
            self.memory.flush(self.core_id, line, home, stats)
        else:
            self.memory.access(
                self.core_id, line,
                is_write=(site.kind in ("store", "ntstore")),
                nt=(site.kind == "ntstore"),
                home=home, stream_id=site.site_id, stats=stats,
            )

    def _site_tracker(self, site: _Site, loop_id: str, ivs, buffers):
        if site.kind == "gather":
            instr = site.instr
            alloc = buffers[instr.buffer]
            table = self._tables[instr.index_addr.buffer]
            idx0 = instr.index_addr.offset
            idx_stride = 0
            for lid, s in instr.index_addr.strides:
                if lid == loop_id:
                    idx_stride = s
                else:
                    idx0 += ivs[lid] * s
            return _GatherTracker(alloc.base, table, idx0, idx_stride,
                                  site.width_bits // 8, self._line_shift,
                                  alloc.node)
        addr = site.instr.addr
        alloc = buffers[addr.buffer]
        base = alloc.base + addr.offset
        stride = 0
        for lid, s in addr.strides:
            if lid == loop_id:
                stride = s
            else:
                base += ivs[lid] * s
        return _AffineTracker(base, stride, site.width_bits // 8,
                              self._line_shift, alloc.node)

    # ------------------------------------------------------------------
    # straight-line instructions
    # ------------------------------------------------------------------
    def _exec_single(self, node, ivs, buffers, dram_bpc, result) -> None:
        result.instructions += 1
        if isinstance(node, VecOp):
            if node.flops:
                self._count_fp(node.width_bits, node.precision, 1,
                               node.op == "fma", result.counters)
            result.cycles += self.ports.fp_issue_cycles(
                {(node.op, node.width_bits): 1}
            )
            return
        shift = self._line_shift
        stats = zero_stats()
        if isinstance(node, GatherLoad):
            alloc = buffers[node.buffer]
            table = self._tables[node.index_addr.buffer]
            base = alloc.base + int(table[node.index_addr.evaluate(ivs)])
            first = base >> shift
            last = (base + node.bytes - 1) >> shift
            for line in range(first, last + 1):
                self.memory.access(self.core_id, line, is_write=False,
                                   nt=False, home=alloc.node, stream_id=0,
                                   stats=stats)
            total = self._phase_total({}, {node.width_bits: 1}, {},
                                      0.0, stats, dram_bpc)
            result.cycles += total
            self._merge(result.batch, stats)
            result.phase_totals.append(total)
            return
        addr = node.addr
        alloc = buffers[addr.buffer]
        base = alloc.base + addr.offset + sum(
            ivs[lid] * s for lid, s in addr.strides
        )
        width_bytes = getattr(node, "width_bits", 64) // 8
        first = base >> shift
        last = (base + max(width_bytes - 1, 0)) >> shift
        lines = range(first, last + 1)
        if isinstance(node, PrefetchHint):
            for line in lines:
                self.memory.sw_prefetch(self.core_id, line, alloc.node, stats)
        elif isinstance(node, Flush):
            for line in lines:
                self.memory.flush(self.core_id, line, alloc.node, stats)
        elif isinstance(node, Load):
            for line in lines:
                self.memory.access(self.core_id, line, is_write=False,
                                   nt=False, home=alloc.node, stream_id=0,
                                   stats=stats)
        elif isinstance(node, Store):
            for line in lines:
                self.memory.access(self.core_id, line, is_write=True,
                                   nt=node.nt, home=alloc.node, stream_id=0,
                                   stats=stats)
        else:
            raise ExecutionError(f"cannot execute node {node!r}")
        total = self._phase_total(
            {},
            {node.width_bits: 1} if isinstance(node, Load) else {},
            {node.width_bits: 1} if isinstance(node, Store) else {},
            0.0, stats, dram_bpc,
        )
        result.cycles += total
        self._merge(result.batch, stats)
        result.phase_totals.append(total)

    # ------------------------------------------------------------------
    # cycle model (transcribed, not imported)
    # ------------------------------------------------------------------
    def _phase_total(self, fp_ops, load_widths, store_widths,
                     chain: float, stats: Dict[str, int],
                     dram_bpc: float) -> float:
        cfg = self.config
        line = cfg.line_bytes
        fp_issue = self.ports.fp_issue_cycles(fp_ops) if fp_ops else 0.0
        mem_issue = self.ports.mem_issue_cycles(load_widths, store_widths)
        l2_bw = stats["l2_hits"] * line / cfg.l2.bytes_per_cycle
        l3_bw = stats["l3_hits"] * line / cfg.l3.bytes_per_cycle
        dram_lines = (stats["dram_reads"] + stats["writebacks"]
                      + stats["nt_lines"] + stats["hw_prefetch_dram_reads"])
        local_lines = dram_lines - stats["remote_dram_lines"]
        effective = (local_lines + stats["remote_dram_lines"]
                     / cfg.numa.remote_bandwidth_factor)
        dram_bw = effective * line / dram_bpc
        if stats["dram_reads"] and stats["remote_dram_lines"]:
            remote_share = stats["remote_dram_lines"] / stats["dram_reads"]
        else:
            remote_share = 0.0
        dram_latency = (cfg.dram.latency_cycles
                        + remote_share * cfg.numa.remote_latency_extra_cycles)
        exposed = (
            stats["l2_hits"] * cfg.l2.latency_cycles
            + stats["l3_hits"] * cfg.l3.latency_cycles
            + stats["dram_reads"] * dram_latency
            + stats["tlb_walk_cycles"]
        ) / self.timing.mlp
        return max(fp_issue, mem_issue, chain, l2_bw, l3_bw, dram_bw) + exposed

    def _reissue_slots(self, stats: Dict[str, int]) -> int:
        cfg = self.config
        params = self.timing

        def per_line(latency: int) -> int:
            hidden = max(latency - params.reissue_hide_cycles, 0)
            if hidden == 0:
                return 0
            return min(params.max_reissue_per_miss,
                       math.ceil(hidden / params.reissue_interval_cycles))

        return (stats["l2_hits"] * per_line(cfg.l2.latency_cycles)
                + stats["l3_hits"] * per_line(cfg.l3.latency_cycles)
                + stats["dram_reads"] * per_line(cfg.dram.latency_cycles))

    # ------------------------------------------------------------------
    # body analysis (memoised for site-id stability)
    # ------------------------------------------------------------------
    def _analyze(self, loop: Loop) -> _LoopAnalysis:
        cached = self._analysis.get(id(loop))
        if cached is not None:
            return cached[1]
        fp_ops: Dict[Tuple[str, int], int] = {}
        fp_events: Dict[Tuple[int, str, bool], int] = {}
        dep_fp_events: Dict[Tuple[int, str, bool], int] = {}
        chains: Dict[str, int] = {}
        sites: List[_Site] = []
        load_widths: Dict[int, int] = {}
        store_widths: Dict[int, int] = {}
        tainted = set()

        for instr in loop.body:
            if isinstance(instr, VecOp):
                key = (instr.op, instr.width_bits)
                fp_ops[key] = fp_ops.get(key, 0) + 1
                if instr.flops:
                    ekey = (instr.width_bits, instr.precision,
                            instr.op == "fma")
                    fp_events[ekey] = fp_events.get(ekey, 0) + 1
                    if any(src.name in tainted for src in instr.srcs):
                        dep_fp_events[ekey] = dep_fp_events.get(ekey, 0) + 1
                        tainted.add(instr.dst.name)
                if instr.dst in instr.srcs:
                    chains[instr.dst.name] = (
                        chains.get(instr.dst.name, 0)
                        + self.ports.latency(instr.op)
                    )
            elif isinstance(instr, Load):
                tainted.add(instr.dst.name)
                load_widths[instr.width_bits] = (
                    load_widths.get(instr.width_bits, 0) + 1
                )
                sites.append(self._site(instr, "load", instr.width_bits))
            elif isinstance(instr, GatherLoad):
                tainted.add(instr.dst.name)
                load_widths[instr.width_bits] = (
                    load_widths.get(instr.width_bits, 0) + 1
                )
                sites.append(self._site(instr, "gather", instr.width_bits))
            elif isinstance(instr, Store):
                kind = "ntstore" if instr.nt else "store"
                store_widths[instr.width_bits] = (
                    store_widths.get(instr.width_bits, 0) + 1
                )
                sites.append(self._site(instr, kind, instr.width_bits))
            elif isinstance(instr, PrefetchHint):
                sites.append(self._site(instr, "prefetch", 64))
            elif isinstance(instr, Flush):
                sites.append(self._site(instr, "flush", 64))
            else:
                raise ExecutionError(f"unexpected node in flat loop: {instr!r}")

        info = _LoopAnalysis(
            fp_ops=fp_ops,
            fp_events=fp_events,
            dep_fp_events=dep_fp_events,
            chain_latency=max(chains.values(), default=0),
            sites=sites,
            load_widths=load_widths,
            store_widths=store_widths,
            body_len=len(loop.body),
        )
        self._analysis[id(loop)] = (loop, info)
        return info

    def _site(self, instr, kind: str, width_bits: int) -> _Site:
        site = _Site(instr, kind, width_bits, self._next_site_id)
        self._next_site_id += 1
        return site

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _count_fp(self, width_bits: int, precision: str, instrs: int,
                  is_fma: bool, counters: Dict[str, int]) -> None:
        event = _FP_EVENT[(width_bits, precision)]
        counters[event] = (
            counters.get(event, 0) + instrs * (2 if is_fma else 1)
        )

    @staticmethod
    def _merge(into: Dict[str, int], stats: Dict[str, int]) -> None:
        for key in STAT_KEYS:
            into[key] += stats[key]


class _AffineTracker:
    """Monotone-frontier line emission for one affine site."""

    def __init__(self, base: int, stride: int, width_bytes: int,
                 shift: int, home: int) -> None:
        self.base = base
        self.stride = stride
        self.width_bytes = width_bytes
        self.shift = shift
        self.home = home
        self.frontier = None   # furthest line emitted (ascending)
        self.floor = None      # lowest line emitted (descending)

    def lines_for(self, t: int) -> List[int]:
        pos = self.base + t * self.stride
        first = pos >> self.shift
        end = (pos + self.width_bytes - 1) >> self.shift
        if self.stride >= 0:
            if self.frontier is None:
                self.frontier = end
                return list(range(first, end + 1))
            if end <= self.frontier:
                return []
            lo = max(first, self.frontier + 1)
            self.frontier = end
            return list(range(lo, end + 1))
        if self.floor is None:
            self.floor = first
            return list(range(first, end + 1))
        if first >= self.floor:
            return []
        hi = min(end, self.floor - 1)
        self.floor = first
        return list(range(first, hi + 1))


class _GatherTracker:
    """Consecutive-duplicate coalescing for one gather site."""

    def __init__(self, base: int, table, idx0: int, idx_stride: int,
                 width_bytes: int, shift: int, home: int) -> None:
        self.base = base
        self.table = table
        self.idx0 = idx0
        self.idx_stride = idx_stride
        self.width_bytes = width_bytes
        self.shift = shift
        self.home = home
        self.last = None       # last line emitted

    def lines_for(self, t: int) -> List[int]:
        pos = self.base + int(self.table[self.idx0 + t * self.idx_stride])
        first = pos >> self.shift
        end = (pos + self.width_bytes - 1) >> self.shift
        if first == end:
            lines = [] if first == self.last else [first]
        elif first == self.last:
            lines = [end]
        else:
            lines = [first, end]
        if lines:
            self.last = lines[-1]
        return lines
