"""MSR-style prefetcher control (the simulated MSR 0x1A4).

Intel documents four disable bits in IA32_MISC_PREFETCH_CONTROL; the
paper flips them to validate traffic measurement.  We mirror the layout:
a *set* bit disables the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import ConfigurationError

#: bit positions, matching the documented MSR 0x1A4 layout
BIT_L2_STREAM = 0
BIT_L2_ADJACENT = 1
BIT_L1_NEXTLINE = 2
BIT_L1_STRIDE = 3

_KIND_TO_BIT = {
    "stream": BIT_L2_STREAM,
    "adjacent": BIT_L2_ADJACENT,
    "nextline": BIT_L1_NEXTLINE,
    "stride": BIT_L1_STRIDE,
}

ALL_DISABLED_MASK = 0b1111


@dataclass
class PrefetchControl:
    """Per-machine prefetcher enable state (shared by all cores, as on
    real parts where the MSR is written per-core but experiments set all
    cores identically)."""

    mask: int = 0  # all engines enabled

    def is_enabled(self, kind: str) -> bool:
        """Whether the engine of ``kind`` is currently enabled."""
        return not (self.mask >> self._bit(kind)) & 1

    def disable(self, kind: str) -> None:
        self.mask |= 1 << self._bit(kind)

    def enable(self, kind: str) -> None:
        self.mask &= ~(1 << self._bit(kind))

    def disable_all(self) -> None:
        """The paper's 'prefetchers off' configuration."""
        self.mask = ALL_DISABLED_MASK

    def enable_all(self) -> None:
        self.mask = 0

    def write_msr(self, value: int) -> None:
        """Raw MSR write (bits beyond the defined four are reserved)."""
        if value & ~ALL_DISABLED_MASK:
            raise ConfigurationError(
                f"reserved bits set in prefetch control value {value:#x}"
            )
        self.mask = value

    def read_msr(self) -> int:
        return self.mask

    def state(self) -> Dict[str, bool]:
        """Kind -> enabled mapping (report/debug helper)."""
        return {kind: self.is_enabled(kind) for kind in _KIND_TO_BIT}

    @staticmethod
    def _bit(kind: str) -> int:
        try:
            return _KIND_TO_BIT[kind]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown prefetcher kind {kind!r}; known: {sorted(_KIND_TO_BIT)}"
            ) from exc
