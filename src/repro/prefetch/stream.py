"""L2 streamer prefetcher (Intel-style per-page stream detection).

The streamer keeps a small table of 4 KiB-page trackers.  Once it sees a
few sequential accesses in the same direction within a page it runs
ahead of the demand stream by ``distance`` lines, ``degree`` lines at a
time, never crossing the page boundary.  Its run-ahead is what inflates
measured traffic for streaming kernels — the effect the paper isolates
by toggling the prefetch MSR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ConfigurationError
from .base import Prefetcher


@dataclass
class _PageTracker:
    last_line: int
    direction: int = 0
    confidence: int = 0
    frontier: int = -1  # furthest line already prefetched (directional)
    lru_tick: int = 0


class StreamPrefetcher(Prefetcher):
    """Per-page ascending/descending stream detector with run-ahead."""

    kind = "stream"

    def __init__(self, trackers: int = 16, degree: int = 2,
                 distance: int = 8, confidence_threshold: int = 2,
                 lines_per_page: int = 64) -> None:
        super().__init__()
        if trackers <= 0 or degree <= 0 or distance <= 0:
            raise ConfigurationError("streamer needs positive trackers/degree/distance")
        if confidence_threshold < 1:
            raise ConfigurationError("confidence threshold must be >= 1")
        self._trackers_max = trackers
        self.degree = degree
        self.distance = distance
        self._threshold = confidence_threshold
        self._lines_per_page = lines_per_page
        self._table: Dict[int, _PageTracker] = {}
        self._tick = 0

    def observe(self, line: int, was_miss: bool, stream_id: int = 0) -> List[int]:
        self._tick += 1
        page = line // self._lines_per_page
        tracker = self._table.get(page)
        if tracker is None:
            self._insert(page, line)
            return []
        tracker.lru_tick = self._tick
        delta = line - tracker.last_line
        tracker.last_line = line
        if delta == 0:
            return []
        direction = 1 if delta > 0 else -1
        if direction == tracker.direction:
            tracker.confidence += 1
        else:
            tracker.direction = direction
            tracker.confidence = 1
            tracker.frontier = line
        if tracker.confidence < self._threshold:
            return []
        return self._run_ahead(page, line, tracker)

    def _run_ahead(self, page: int, line: int, tracker: _PageTracker) -> List[int]:
        page_first = page * self._lines_per_page
        page_last = page_first + self._lines_per_page - 1
        target = line + tracker.direction * self.distance
        start = tracker.frontier + tracker.direction
        if tracker.direction > 0:
            start = max(start, line + 1)
            end = min(target, page_last)
            lines = list(range(start, end + 1))[: self.degree]
        else:
            start = min(start, line - 1)
            end = max(target, page_first)
            lines = list(range(start, end - 1, -1))[: self.degree]
        if lines:
            tracker.frontier = lines[-1]
            self.stats.issued += len(lines)
        return lines

    def _insert(self, page: int, line: int) -> None:
        if len(self._table) >= self._trackers_max:
            victim = min(self._table, key=lambda p: self._table[p].lru_tick)
            del self._table[victim]
        self._table[page] = _PageTracker(
            last_line=line, frontier=line, lru_tick=self._tick
        )

    def reset(self) -> None:
        self.stats.reset()
        self._table.clear()
        self._tick = 0
