"""Hardware prefetcher models and their MSR-style control mask."""

from .base import Prefetcher, PrefetchStats
from .control import (
    ALL_DISABLED_MASK,
    BIT_L1_NEXTLINE,
    BIT_L1_STRIDE,
    BIT_L2_ADJACENT,
    BIT_L2_STREAM,
    PrefetchControl,
)
from .nextline import NextLinePrefetcher
from .stream import StreamPrefetcher
from .stride import StridePrefetcher

__all__ = [
    "ALL_DISABLED_MASK",
    "BIT_L1_NEXTLINE",
    "BIT_L1_STRIDE",
    "BIT_L2_ADJACENT",
    "BIT_L2_STREAM",
    "NextLinePrefetcher",
    "PrefetchControl",
    "PrefetchStats",
    "Prefetcher",
    "StreamPrefetcher",
    "StridePrefetcher",
]
