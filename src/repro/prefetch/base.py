"""Prefetcher interface.

Hardware prefetchers are the main reason measured memory traffic ``Q``
exceeds a kernel's compulsory traffic (the paper's Q-validation
experiment): they fetch lines the kernel never uses (overfetch past the
end of streams, within-page run-ahead) and those lines are counted by
the IMC just like demand traffic.

A prefetcher observes the demand-access stream of one core and returns
candidate lines to bring in.  ``stream_id`` identifies the access site
(instruction within a loop), playing the role the program counter plays
for hardware IP-based prefetchers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List


@dataclass
class PrefetchStats:
    """Issue/usefulness accounting for one prefetcher instance."""

    issued: int = 0
    useful: int = 0

    def reset(self) -> None:
        self.issued = 0
        self.useful = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0

    def as_dict(self) -> dict:
        return {"issued": self.issued, "useful": self.useful,
                "accuracy": self.accuracy}


class Prefetcher(ABC):
    """One hardware prefetch engine attached to a core."""

    #: short identifier used by the control mask and reports
    kind = "abstract"

    #: whether the engine observes L1 *hits* as well as misses.  L2-side
    #: engines (streamer) only see L1 misses; L1-side engines (the IP
    #: prefetcher) watch the full load stream.
    train_on_hits = False

    def __init__(self) -> None:
        self.stats = PrefetchStats()

    @abstractmethod
    def observe(self, line: int, was_miss: bool, stream_id: int = 0) -> List[int]:
        """React to a demand access; return lines to prefetch (may be [])."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all training state (cold-start, cache bust)."""
