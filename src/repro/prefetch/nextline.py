"""Next-line (adjacent-line / DCU) prefetcher.

The simplest engine in Intel's L1/L2: on a demand miss, fetch the next
sequential line.  Cheap, effective on unit-stride streams, and a steady
source of one-line overfetch at the end of every stream.
"""

from __future__ import annotations

from typing import List

from .base import Prefetcher


class NextLinePrefetcher(Prefetcher):
    """Fetch ``line + 1`` on every demand miss (within the same page)."""

    kind = "nextline"

    def __init__(self, lines_per_page: int = 64) -> None:
        super().__init__()
        self._lines_per_page = lines_per_page

    def observe(self, line: int, was_miss: bool, stream_id: int = 0) -> List[int]:
        if not was_miss:
            return []
        nxt = line + 1
        # real adjacent-line prefetchers do not cross 4 KiB pages
        if nxt // self._lines_per_page != line // self._lines_per_page:
            return []
        self.stats.issued += 1
        return [nxt]

    def reset(self) -> None:
        self.stats.reset()
