"""IP-based stride prefetcher (Intel L1 "IP prefetcher" analogue).

Tracks the address stream *per access site* (``stream_id`` stands in for
the program counter).  When a site shows a stable non-zero line stride,
the engine fetches ``degree`` future lines along that stride.  Unlike
the streamer it handles large strides (column walks in row-major
matrices), which matters for the dgemv/dgemm access patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigurationError
from .base import Prefetcher


@dataclass
class _SiteState:
    last_line: int
    stride: int = 0
    confidence: int = 0
    lru_tick: int = 0


class StridePrefetcher(Prefetcher):
    """Per-site constant-stride detector.

    As an L1-side engine it trains on the full demand stream (hits and
    misses).  Miss-only training would starve it on warm reruns: a line
    invalidated mid-run (non-temporal store) that the cold run re-covered
    with an active stream would miss to DRAM on the rerun — breaking the
    rerun-monotonicity invariant the property tests check.
    """

    kind = "stride"
    train_on_hits = True

    def __init__(self, sites: int = 64, degree: int = 2,
                 confidence_threshold: int = 2, max_stride: int = 512) -> None:
        super().__init__()
        if sites <= 0 or degree <= 0 or max_stride <= 0:
            raise ConfigurationError("stride prefetcher needs positive parameters")
        self._sites_max = sites
        self.degree = degree
        self._threshold = confidence_threshold
        self._max_stride = max_stride
        self._table: Dict[int, _SiteState] = {}
        self._tick = 0

    def observe(self, line: int, was_miss: bool, stream_id: int = 0) -> List[int]:
        self._tick += 1
        state = self._table.get(stream_id)
        if state is None:
            self._insert(stream_id, line)
            return []
        state.lru_tick = self._tick
        stride = line - state.last_line
        state.last_line = line
        if stride == 0 or abs(stride) > self._max_stride:
            state.confidence = 0
            state.stride = 0
            return []
        if stride == state.stride:
            state.confidence += 1
        else:
            state.stride = stride
            state.confidence = 1
        if state.confidence < self._threshold:
            return []
        lines = [line + stride * (k + 1) for k in range(self.degree)]
        lines = [ln for ln in lines if ln >= 0]
        self.stats.issued += len(lines)
        return lines

    def _insert(self, stream_id: int, line: int) -> None:
        if len(self._table) >= self._sites_max:
            victim = min(self._table, key=lambda s: self._table[s].lru_tick)
            del self._table[victim]
        self._table[stream_id] = _SiteState(last_line=line, lru_tick=self._tick)

    def reset(self) -> None:
        self.stats.reset()
        self._table.clear()
        self._tick = 0
