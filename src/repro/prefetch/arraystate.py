"""Array-state prefetcher variants for the compiled datapath.

These subclasses keep every piece of mutable training state in int64
numpy arrays so the C datapath kernel (:mod:`repro.engine.ckernel`) can
operate directly on the same storage the Python ``observe`` fallback
uses.  Behaviour is identical to the dict-table parents: recency is a
monotone tick stamped per entry, and the eviction victim is the valid
entry with the smallest stamp — exactly the ``min(..., key=lru_tick)``
of the dict implementation (ticks are unique, so there are no ties).

Array layout (shared with ``engine/_ckernel.c``):

* ``keys`` — stream-id / page key per slot, -1 = empty (valid because
  site ids and page numbers are non-negative).
* per-slot state columns (``last``, ``strd``/``dirn``, ``conf``,
  ``front``) mirroring the dataclass fields.
* ``lruv`` — recency stamp per slot.
* ``regs`` — ``[tick, entry_count]``.

``NextLinePrefetcher`` is stateless and needs no array variant.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .stream import StreamPrefetcher
from .stride import StridePrefetcher

EMPTY = -1


class ArrayStridePrefetcher(StridePrefetcher):
    """:class:`StridePrefetcher` with numpy-backed site table."""

    def __init__(self, sites: int = 64, degree: int = 2,
                 confidence_threshold: int = 2, max_stride: int = 512) -> None:
        super().__init__(sites, degree, confidence_threshold, max_stride)
        self.keys = np.full(sites, EMPTY, dtype=np.int64)
        self.last = np.zeros(sites, dtype=np.int64)
        self.strd = np.zeros(sites, dtype=np.int64)
        self.conf = np.zeros(sites, dtype=np.int64)
        self.lruv = np.zeros(sites, dtype=np.int64)
        self.regs = np.zeros(2, dtype=np.int64)  # [tick, count]

    def observe(self, line: int, was_miss: bool, stream_id: int = 0) -> List[int]:
        regs = self.regs
        regs[0] += 1
        idx = np.nonzero(self.keys == stream_id)[0]
        if not idx.size:
            self._insert_slot(stream_id, line)
            return []
        i = int(idx[0])
        self.lruv[i] = regs[0]
        stride = line - int(self.last[i])
        self.last[i] = line
        if stride == 0 or abs(stride) > self._max_stride:
            self.conf[i] = 0
            self.strd[i] = 0
            return []
        if stride == self.strd[i]:
            self.conf[i] += 1
        else:
            self.strd[i] = stride
            self.conf[i] = 1
        if self.conf[i] < self._threshold:
            return []
        lines = [line + stride * (k + 1) for k in range(self.degree)]
        lines = [ln for ln in lines if ln >= 0]
        self.stats.issued += len(lines)
        return lines

    def _insert_slot(self, stream_id: int, line: int) -> None:
        if self.regs[1] >= self._sites_max:
            # table full -> every slot valid, argmin stamp == dict victim
            victim = int(np.argmin(self.lruv))
            self.keys[victim] = EMPTY
            self.regs[1] -= 1
        free = int(np.nonzero(self.keys == EMPTY)[0][0])
        self.keys[free] = stream_id
        self.last[free] = line
        self.strd[free] = 0
        self.conf[free] = 0
        self.lruv[free] = self.regs[0]
        self.regs[1] += 1

    def reset(self) -> None:
        # In place: the C kernel holds raw pointers to these arrays.
        self.stats.reset()
        self.keys.fill(EMPTY)
        self.last.fill(0)
        self.strd.fill(0)
        self.conf.fill(0)
        self.lruv.fill(0)
        self.regs.fill(0)


class ArrayStreamPrefetcher(StreamPrefetcher):
    """:class:`StreamPrefetcher` with numpy-backed page-tracker table."""

    def __init__(self, trackers: int = 16, degree: int = 2,
                 distance: int = 8, confidence_threshold: int = 2,
                 lines_per_page: int = 64) -> None:
        super().__init__(trackers, degree, distance, confidence_threshold,
                         lines_per_page)
        self.keys = np.full(trackers, EMPTY, dtype=np.int64)
        self.last = np.zeros(trackers, dtype=np.int64)
        self.dirn = np.zeros(trackers, dtype=np.int64)
        self.conf = np.zeros(trackers, dtype=np.int64)
        self.front = np.zeros(trackers, dtype=np.int64)
        self.lruv = np.zeros(trackers, dtype=np.int64)
        self.regs = np.zeros(2, dtype=np.int64)  # [tick, count]

    def observe(self, line: int, was_miss: bool, stream_id: int = 0) -> List[int]:
        regs = self.regs
        regs[0] += 1
        page = line // self._lines_per_page
        idx = np.nonzero(self.keys == page)[0]
        if not idx.size:
            self._insert_slot(page, line)
            return []
        i = int(idx[0])
        self.lruv[i] = regs[0]
        delta = line - int(self.last[i])
        self.last[i] = line
        if delta == 0:
            return []
        direction = 1 if delta > 0 else -1
        if direction == self.dirn[i]:
            self.conf[i] += 1
        else:
            self.dirn[i] = direction
            self.conf[i] = 1
            self.front[i] = line
        if self.conf[i] < self._threshold:
            return []
        return self._run_ahead_slot(page, line, i)

    def _run_ahead_slot(self, page: int, line: int, i: int) -> List[int]:
        page_first = page * self._lines_per_page
        page_last = page_first + self._lines_per_page - 1
        direction = int(self.dirn[i])
        target = line + direction * self.distance
        start = int(self.front[i]) + direction
        if direction > 0:
            start = max(start, line + 1)
            end = min(target, page_last)
            lines = list(range(start, end + 1))[: self.degree]
        else:
            start = min(start, line - 1)
            end = max(target, page_first)
            lines = list(range(start, end - 1, -1))[: self.degree]
        if lines:
            self.front[i] = lines[-1]
            self.stats.issued += len(lines)
        return lines

    def _insert_slot(self, page: int, line: int) -> None:
        if self.regs[1] >= self._trackers_max:
            victim = int(np.argmin(self.lruv))
            self.keys[victim] = EMPTY
            self.regs[1] -= 1
        free = int(np.nonzero(self.keys == EMPTY)[0][0])
        self.keys[free] = page
        self.last[free] = line
        self.dirn[free] = 0
        self.conf[free] = 0
        self.front[free] = line
        self.lruv[free] = self.regs[0]
        self.regs[1] += 1

    def reset(self) -> None:
        self.stats.reset()
        self.keys.fill(EMPTY)
        self.last.fill(0)
        self.dirn.fill(0)
        self.conf.fill(0)
        self.front.fill(0)
        self.lruv.fill(0)
        self.regs.fill(0)
