"""Hierarchical roofline: per-cache-level ceilings and intensities.

The single-roofline model compares a kernel's DRAM intensity against
one bandwidth; the hierarchical (cache-aware) extension gives every
level of the memory hierarchy its own roof band and places the kernel
once per level, at intensity ``W / bytes-moved-at-level-k``.  A kernel
sitting under a level's band is limited by that level's bandwidth
*regardless of where its data nominally lives* — the diagnosis style
of the CARM and NERSC hierarchical-roofline work.

Ceilings come from :mod:`repro.roofline.ert` (measured, not
datasheet); per-level kernel traffic comes straight from the
measurement runner's counter deltas (``Measurement.level_bytes``),
which the analytic oracle pins exactly on the oracle machine.

:func:`analyze` is the library's front door: ceilings + kernel sweep +
placement in one call, everything routed through the cached parallel
sweep executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..kernels.registry import kernel_names
from ..measure.runner import Measurement
from ..sweep.executor import run_plan
from ..sweep.plan import SweepPlan
from ..units import format_bandwidth
from .ert import (
    DEFAULT_FLOP_COUNTS,
    ErtCeilings,
    LEVELS,
    discover_ceilings,
    resolve_machine_ref,
)
from .export import model_to_dict
from .model import ComputeCeiling, MemoryCeiling, RooflineModel
from .plot_ascii import ascii_plot
from .plot_svg import svg_plot
from .point import KernelPoint, Trajectory


class HierarchicalRoofline:
    """A compute roof plus one measured bandwidth ceiling per level."""

    def __init__(self, name: str, compute: ComputeCeiling,
                 level_ceilings: Dict[str, MemoryCeiling]) -> None:
        missing = [level for level in LEVELS if level not in level_ceilings]
        if missing:
            raise ConfigurationError(
                f"hierarchical roofline {name!r} lacks levels {missing}"
            )
        self.name = name
        self.compute = compute
        self.level_ceilings = {level: level_ceilings[level]
                               for level in LEVELS}

    @classmethod
    def from_ceilings(cls, ceilings: ErtCeilings) -> "HierarchicalRoofline":
        compute = ComputeCeiling(ceilings.compute_label(),
                                 ceilings.compute_flops_per_second)
        level_ceilings = {
            level: MemoryCeiling(d.label(), d.bytes_per_second)
            for level, d in ceilings.levels.items()
        }
        return cls(ceilings.machine.describe(), compute, level_ceilings)

    # ------------------------------------------------------------------
    # per-level queries
    # ------------------------------------------------------------------
    def bandwidth(self, level: str) -> float:
        try:
            return self.level_ceilings[level].bytes_per_second
        except KeyError as exc:
            raise ConfigurationError(
                f"no ceiling for level {level!r}; have {list(LEVELS)}"
            ) from exc

    def ridge(self, level: str) -> float:
        """Intensity where the level's band meets the compute roof."""
        return self.compute.flops_per_second / self.bandwidth(level)

    def attainable(self, intensity: float, level: str = "DRAM") -> float:
        """``min(pi, I x beta_level)`` against one level's band."""
        if intensity <= 0:
            raise ConfigurationError("intensity must be positive")
        return min(self.compute.flops_per_second,
                   intensity * self.bandwidth(level))

    # ------------------------------------------------------------------
    # single-model view (feeds the existing plotters)
    # ------------------------------------------------------------------
    def to_model(self, merge_rel_tol: float = 0.02) -> RooflineModel:
        """A :class:`RooflineModel` with one memory ceiling per level.

        Levels whose bandwidths coincide within ``merge_rel_tol``
        (relative) are merged into one ceiling with a combined label —
        coinciding ridge points would otherwise draw two overlapping
        bands and two overlapping legend labels for the same line.
        """
        groups: List[List[str]] = []
        for level in LEVELS:
            bw = self.bandwidth(level)
            if groups:
                anchor = self.bandwidth(groups[-1][0])
                if abs(bw - anchor) <= merge_rel_tol * anchor:
                    groups[-1].append(level)
                    continue
            groups.append([level])
        memory = []
        for group in groups:
            best = max(self.bandwidth(level) for level in group)
            name = "+".join(group)
            memory.append(MemoryCeiling(
                f"{name} ERT ({format_bandwidth(best)})", best
            ))
        return RooflineModel(self.name, [self.compute], memory)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "compute": {"label": self.compute.label,
                        "flops_per_s": self.compute.flops_per_second},
            "levels": {
                level: {"label": c.label,
                        "bytes_per_s": c.bytes_per_second,
                        "ridge_intensity": self.ridge(level)}
                for level, c in self.level_ceilings.items()
            },
        }


# ----------------------------------------------------------------------
# the flagship entry point
# ----------------------------------------------------------------------
def hierarchical_points(kernel: str, measurements: Sequence[Measurement],
                        levels: Sequence[str] = LEVELS) -> List[Trajectory]:
    """One trajectory per level: ``(I_k, P)`` for every measurement."""
    trajectories = []
    for level in levels:
        traj = Trajectory(f"{kernel}@{level}")
        for m in measurements:
            traj.add(KernelPoint(
                label=f"{m.label()} @{level}",
                intensity=m.level_intensity(level),
                performance=m.performance,
                series=traj.series,
                n=m.n,
                protocol=m.protocol,
                threads=m.threads,
            ))
        trajectories.append(traj)
    return trajectories


@dataclass
class AnalyzeResult:
    """Hierarchical placement of one kernel on one measured machine."""

    #: kernel registry name analysed
    kernel: str
    #: problem sizes measured, in order
    sizes: Tuple[int, ...]
    #: ceiling-discovery output (grid measurements included)
    ceilings: ErtCeilings
    #: the hierarchical model built from the discovered ceilings
    roofline: HierarchicalRoofline
    #: the kernel's own sweep, in size order
    measurements: Tuple[Measurement, ...]
    #: hierarchy levels placed (subset of :data:`LEVELS`)
    levels: Tuple[str, ...] = LEVELS

    def trajectories(self) -> List[Trajectory]:
        """Per-level (I_k, P) series for the kernel sweep."""
        return hierarchical_points(self.kernel, self.measurements,
                                   self.levels)

    def model(self) -> RooflineModel:
        return self.roofline.to_model()

    def intensities(self) -> Dict[str, List[float]]:
        """Per-level arithmetic intensities, one list entry per size."""
        return {
            level: [m.level_intensity(level) for m in self.measurements]
            for level in self.levels
        }

    def to_json_doc(self) -> dict:
        return {
            "kernel": self.kernel,
            "sizes": list(self.sizes),
            "machine": self.ceilings.machine.key_doc(),
            "hierarchical": self.roofline.to_dict(),
            "model": model_to_dict(self.model()),
            "points": [
                {
                    "series": p.series,
                    "label": p.label,
                    "n": p.n,
                    "protocol": p.protocol,
                    "threads": p.threads,
                    "intensity": p.intensity,
                    "performance": p.performance,
                }
                for traj in self.trajectories() for p in traj.points
            ],
            "measurements": [
                {
                    "n": m.n,
                    "true_flops": m.true_flops,
                    "runtime_seconds": m.runtime_seconds,
                    "traffic_bytes": m.traffic_bytes,
                    "level_bytes": m.level_bytes,
                }
                for m in self.measurements
            ],
        }

    def svg(self, **kwargs) -> str:
        kwargs.setdefault("title",
                          f"Hierarchical roofline: {self.kernel} "
                          f"on {self.roofline.name}")
        return svg_plot(self.model(), trajectories=self.trajectories(),
                        **kwargs)

    def ascii(self, **kwargs) -> str:
        return ascii_plot(self.model(), trajectories=self.trajectories(),
                          **kwargs)


def analyze(kernel: str, sizes: Sequence[int], machine="snb",
            protocol: str = "cold", reps: int = 2,
            cores: Tuple[int, ...] = (0,),
            kernel_args: Optional[dict] = None,
            flop_counts: Sequence[int] = DEFAULT_FLOP_COUNTS,
            jobs: Optional[int] = None, cache=None,
            ceilings: Optional[ErtCeilings] = None,
            backend=None) -> AnalyzeResult:
    """Measure a machine's ceilings and place ``kernel`` on every band.

    The flagship entry point: discovers the machine's L1/L2/L3/DRAM
    bandwidth ceilings and compute roof with the ERT grid (unless
    ``ceilings`` is supplied from an earlier discovery), sweeps the
    kernel over ``sizes``, and returns an :class:`AnalyzeResult` whose
    per-level intensities divide exact work by measured per-level
    traffic.  Both sweeps run through the cached parallel sweep
    executor; ``jobs``/``cache``/``backend`` tune it (``backend`` is a
    backend name or instance passed straight to
    :func:`~repro.sweep.executor.run_plan`).

    >>> result = analyze("dgemm-tiled", [16, 32, 64], machine="tiny")
    >>> print(result.ascii())
    """
    if kernel not in kernel_names():
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; known: {', '.join(kernel_names())}"
        )
    if not sizes:
        raise ConfigurationError("analyze needs at least one problem size")
    ref = resolve_machine_ref(machine)
    if ceilings is None:
        ceilings = discover_ceilings(ref, flop_counts=flop_counts,
                                     reps=reps, cores=cores,
                                     jobs=jobs, cache=cache,
                                     backend=backend)
    plan = SweepPlan()
    plan.add_sweep(ref, kernel, list(sizes), protocol=protocol, reps=reps,
                   cores=cores, kernel_args=kernel_args)
    run = run_plan(plan, jobs=jobs, cache=cache, backend=backend)
    return AnalyzeResult(
        kernel=kernel,
        sizes=tuple(sizes),
        ceilings=ceilings,
        roofline=HierarchicalRoofline.from_ceilings(ceilings),
        measurements=tuple(run.measurements),
    )
