"""Terminal roofline plots (log-log ASCII).

Dependency-free rendering for quickstarts, CLI output, and experiment
logs.  The top roof is drawn solid, lower ceilings dotted, and each
point series gets its own marker with a legend.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..units import format_bandwidth, format_flops
from .model import RooflineModel
from .point import KernelPoint, Trajectory

_MARKERS = "ox+*#@%&"


def _log(value: float) -> float:
    return math.log10(value)


def _collect_points(points, trajectories) -> List[KernelPoint]:
    collected = list(points or [])
    for trajectory in trajectories or []:
        collected.extend(trajectory.points)
    return collected


def _ranges(model: RooflineModel, pts: Sequence[KernelPoint],
            x_range, y_range) -> Tuple[float, float, float, float]:
    ridge = model.ridge_intensity
    xs = [p.intensity for p in pts] or [ridge]
    ys = [p.performance for p in pts] or [model.peak_flops]
    xmin, xmax = x_range if x_range else (
        min(min(xs), ridge) / 4, max(max(xs), ridge) * 4
    )
    ymin, ymax = y_range if y_range else (
        min(min(ys), xmin * model.peak_bandwidth) / 2,
        model.peak_flops * 2,
    )
    return xmin, xmax, ymin, ymax


def ascii_plot(model: RooflineModel,
               points: Iterable[KernelPoint] = (),
               trajectories: Iterable[Trajectory] = (),
               width: int = 76, height: int = 22,
               x_range: Optional[Tuple[float, float]] = None,
               y_range: Optional[Tuple[float, float]] = None,
               timeline=None) -> str:
    """Render a roofline with kernel points as ASCII art.

    ``timeline`` takes a :class:`~repro.trace.RooflineTrajectory`; up
    to nine of its windows are sampled evenly over execution time and
    drawn as breadcrumb digits ``1``..``9`` in time order.
    """
    pts = _collect_points(points, trajectories)
    range_pts = pts
    if timeline is not None:
        range_pts = pts + list(timeline.points)
    xmin, xmax, ymin, ymax = _ranges(model, range_pts, x_range, y_range)
    lx0, lx1 = _log(xmin), _log(xmax)
    ly0, ly1 = _log(ymin), _log(ymax)

    def col_of(x: float) -> int:
        return int(round((_log(x) - lx0) / (lx1 - lx0) * (width - 1)))

    def row_of(y: float) -> int:
        frac = (_log(y) - ly0) / (ly1 - ly0)
        return (height - 1) - int(round(frac * (height - 1)))

    canvas = [[" "] * width for _ in range(height)]

    def put(col: int, row: int, char: str) -> None:
        if 0 <= col < width and 0 <= row < height:
            canvas[row][col] = char

    # lower ceilings dotted, top roof solid
    for ceiling in model.compute[:-1]:
        row = row_of(ceiling.flops_per_second)
        for col in range(width):
            x = 10 ** (lx0 + (lx1 - lx0) * col / (width - 1))
            if x * model.peak_bandwidth >= ceiling.flops_per_second:
                put(col, row, ".")
    for ceiling in model.memory[:-1]:
        for col in range(width):
            x = 10 ** (lx0 + (lx1 - lx0) * col / (width - 1))
            y = x * ceiling.bytes_per_second
            if y <= model.peak_flops:
                put(col, row_of(y), ".")
    for col in range(width):
        x = 10 ** (lx0 + (lx1 - lx0) * col / (width - 1))
        y = model.attainable(x)
        put(col, row_of(y),
            "-" if y >= model.peak_flops * 0.999 else "/")

    # kernel points, one marker per series
    series_order: List[str] = []
    for point in pts:
        if point.series not in series_order:
            series_order.append(point.series)
    for point in pts:
        marker = _MARKERS[series_order.index(point.series) % len(_MARKERS)]
        put(col_of(point.intensity), row_of(point.performance), marker)

    # timeline trajectory breadcrumbs: up to nine windows sampled
    # evenly over execution, drawn as 1..9 in time order (drawn last so
    # the path stays readable over ceilings and points)
    breadcrumbs = []
    if timeline is not None and len(timeline.points) > 0:
        tpts = list(timeline.points)
        count = min(len(tpts), 9)
        step = (len(tpts) - 1) / max(count - 1, 1)
        breadcrumbs = [tpts[round(k * step)] for k in range(count)]
        for idx, p in enumerate(breadcrumbs):
            put(col_of(p.intensity), row_of(p.performance), str(idx + 1))

    lines = [f"Roofline: {model.name}"]
    lines.append(f"{format_flops(ymax):>14} +" + "".join(["-"] * width) + "+")
    for row in range(height):
        prefix = " " * 14 + " |"
        if row == height - 1:
            prefix = f"{format_flops(ymin):>14} |"
        lines.append(prefix + "".join(canvas[row]) + "|")
    lines.append(" " * 15 + "+" + "-" * width + "+")
    lines.append(
        " " * 15 + f"{xmin:.3g} F/B" + " " * max(width - 20, 1)
        + f"{xmax:.3g} F/B"
    )
    lines.append(
        f"  roof: pi = {format_flops(model.peak_flops)}, "
        f"beta = {format_bandwidth(model.peak_bandwidth)}, "
        f"ridge = {model.ridge_intensity:.2f} F/B"
    )
    for ceiling in reversed(model.compute):
        lines.append(f"  ceiling -- {ceiling.label}")
    for ceiling in reversed(model.memory):
        lines.append(f"  ceiling // {ceiling.label}")
    for idx, series in enumerate(series_order):
        lines.append(f"  {_MARKERS[idx % len(_MARKERS)]} {series}")
    if breadcrumbs:
        lines.append(
            f"  1..{len(breadcrumbs)} trajectory: {timeline.label} "
            f"(time order, {timeline.window_cycles:g}-cycle windows)"
        )
        first, final = breadcrumbs[0], breadcrumbs[-1]
        lines.append(
            f"      1 @ [{first.t_start:.0f}, {first.t_end:.0f}) cyc   "
            f"{len(breadcrumbs)} @ [{final.t_start:.0f}, "
            f"{final.t_end:.0f}) cyc"
        )
    return "\n".join(lines) + "\n"
