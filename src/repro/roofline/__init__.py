"""The roofline model: ceilings, measured construction, analysis,
ASCII/SVG plotting, and data export."""

from .analysis import (
    BOUND_COMPUTE,
    BOUND_MEMORY,
    PointAnalysis,
    analyze_point,
    check_point_sanity,
    speedup_if_compute_bound,
)
from .builder import build_roofline, theoretical_roofline
from .cache_aware import (
    build_cache_aware_roofline,
    level_bandwidth_map,
    served_from,
)
from .export import model_to_dict, points_to_csv, to_json, trajectories_to_csv
from .model import ComputeCeiling, MemoryCeiling, RooflineModel
from .plot_ascii import ascii_plot
from .plot_svg import save_svg, svg_plot
from .point import KernelPoint, Trajectory

__all__ = [
    "BOUND_COMPUTE",
    "BOUND_MEMORY",
    "ComputeCeiling",
    "KernelPoint",
    "MemoryCeiling",
    "PointAnalysis",
    "RooflineModel",
    "Trajectory",
    "analyze_point",
    "ascii_plot",
    "build_cache_aware_roofline",
    "build_roofline",
    "check_point_sanity",
    "model_to_dict",
    "points_to_csv",
    "level_bandwidth_map",
    "save_svg",
    "served_from",
    "speedup_if_compute_bound",
    "svg_plot",
    "theoretical_roofline",
    "to_json",
    "trajectories_to_csv",
]
