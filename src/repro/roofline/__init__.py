"""The roofline model: ceilings, measured construction, analysis,
ASCII/SVG plotting, and data export."""

from .analysis import (
    BOUND_COMPUTE,
    BOUND_MEMORY,
    PointAnalysis,
    analyze_point,
    check_point_sanity,
    speedup_if_compute_bound,
)
from .builder import build_roofline, theoretical_roofline
from .cache_aware import (
    build_cache_aware_roofline,
    level_bandwidth_map,
    served_from,
)
from .ert import (
    DiscoveredCeiling,
    ErtCeilings,
    LEVELS,
    discover_ceilings,
    ert_plan,
    ert_working_sets,
)
from .export import model_to_dict, points_to_csv, to_json, trajectories_to_csv
from .hierarchical import (
    AnalyzeResult,
    HierarchicalRoofline,
    analyze,
    hierarchical_points,
)
from .model import ComputeCeiling, MemoryCeiling, RooflineModel
from .plot_ascii import ascii_plot
from .plot_svg import save_svg, svg_plot
from .point import KernelPoint, Trajectory

__all__ = [
    "AnalyzeResult",
    "BOUND_COMPUTE",
    "BOUND_MEMORY",
    "ComputeCeiling",
    "DiscoveredCeiling",
    "ErtCeilings",
    "HierarchicalRoofline",
    "KernelPoint",
    "LEVELS",
    "MemoryCeiling",
    "PointAnalysis",
    "RooflineModel",
    "Trajectory",
    "analyze",
    "analyze_point",
    "ascii_plot",
    "build_cache_aware_roofline",
    "build_roofline",
    "check_point_sanity",
    "discover_ceilings",
    "ert_plan",
    "ert_working_sets",
    "hierarchical_points",
    "model_to_dict",
    "points_to_csv",
    "level_bandwidth_map",
    "save_svg",
    "served_from",
    "speedup_if_compute_bound",
    "svg_plot",
    "theoretical_roofline",
    "to_json",
    "trajectories_to_csv",
]
