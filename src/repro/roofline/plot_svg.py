"""SVG roofline plots (no external plotting dependencies).

Produces a self-contained SVG string: log-log axes with decade grid
lines, layered ceilings, per-series coloured trajectories with connected
markers, and a legend — the publication-style counterpart of the ASCII
backend.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from .model import RooflineModel
from .plot_ascii import _collect_points, _ranges
from .point import KernelPoint, Trajectory

_COLORS = [
    "#1b6ca8", "#c0392b", "#1e8449", "#8e44ad",
    "#d68910", "#16a085", "#7f8c8d", "#2c3e50",
]

#: time-gradient stops for the timeline trajectory: execution start is
#: green, midpoint gold, end red
_TRAJ_STOPS = ((0x1E, 0x84, 0x49), (0xD6, 0x89, 0x10), (0xC0, 0x39, 0x2B))

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 230, 40, 55


def _traj_color(t: float) -> str:
    """Colour at normalised time ``t`` in [0, 1] along the gradient."""
    t = min(max(t, 0.0), 1.0)
    if t <= 0.5:
        a, b, local = _TRAJ_STOPS[0], _TRAJ_STOPS[1], t * 2.0
    else:
        a, b, local = _TRAJ_STOPS[1], _TRAJ_STOPS[2], (t - 0.5) * 2.0
    rgb = (round(a[k] + (b[k] - a[k]) * local) for k in range(3))
    return "#" + "".join(f"{c:02x}" for c in rgb)


def _fmt_tick(value: float) -> str:
    exp = int(round(math.log10(value)))
    if -2 <= exp <= 3:
        text = f"{value:g}"
    else:
        text = f"1e{exp}"
    return text


def svg_plot(model: RooflineModel,
             points: Iterable[KernelPoint] = (),
             trajectories: Iterable[Trajectory] = (),
             width: int = 860, height: int = 520,
             title: Optional[str] = None,
             x_range: Optional[Tuple[float, float]] = None,
             y_range: Optional[Tuple[float, float]] = None,
             timeline=None) -> str:
    """Render a roofline chart; returns the SVG document as a string.

    ``timeline`` takes a :class:`~repro.trace.RooflineTrajectory` (the
    windowed (I, P) path of a single run) and overlays it as a
    time-gradient polyline — green at execution start, red at the end —
    with explicit start/end markers.
    """
    trajectories = list(trajectories or [])
    loose_points = list(points or [])
    pts = _collect_points(loose_points, trajectories)
    if timeline is not None:
        # windowed (I, P) points participate in autoscaling like any
        # other point (duck-typed: they carry intensity/performance)
        pts = pts + list(timeline.points)
    xmin, xmax, ymin, ymax = _ranges(model, pts, x_range, y_range)
    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B
    lx0, lx1 = math.log10(xmin), math.log10(xmax)
    ly0, ly1 = math.log10(ymin), math.log10(ymax)

    def px(x: float) -> float:
        return _MARGIN_L + (math.log10(x) - lx0) / (lx1 - lx0) * plot_w

    def py(y: float) -> float:
        return _MARGIN_T + plot_h - (math.log10(y) - ly0) / (ly1 - ly0) * plot_h

    out: List[str] = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="Helvetica, Arial, sans-serif" font-size="12">'
    )
    out.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    out.append(
        f'<text x="{_MARGIN_L}" y="24" font-size="15" font-weight="bold">'
        f"{title or 'Roofline: ' + model.name}</text>"
    )

    # decade grid
    for exp in range(math.ceil(lx0), math.floor(lx1) + 1):
        x = 10.0 ** exp
        out.append(
            f'<line x1="{px(x):.1f}" y1="{_MARGIN_T}" x2="{px(x):.1f}" '
            f'y2="{_MARGIN_T + plot_h}" stroke="#e0e0e0"/>'
        )
        out.append(
            f'<text x="{px(x):.1f}" y="{_MARGIN_T + plot_h + 16}" '
            f'text-anchor="middle">{_fmt_tick(x)}</text>'
        )
    for exp in range(math.ceil(ly0), math.floor(ly1) + 1):
        y = 10.0 ** exp
        out.append(
            f'<line x1="{_MARGIN_L}" y1="{py(y):.1f}" '
            f'x2="{_MARGIN_L + plot_w}" y2="{py(y):.1f}" stroke="#e0e0e0"/>'
        )
        out.append(
            f'<text x="{_MARGIN_L - 8}" y="{py(y) + 4:.1f}" '
            f'text-anchor="end">{_fmt_tick(y / 1e9)}G</text>'
        )
    out.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#444"/>'
    )
    out.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.0f}" y="{height - 14}" '
        f'text-anchor="middle">operational intensity [flops/byte]</text>'
    )
    out.append(
        f'<text x="18" y="{_MARGIN_T + plot_h / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 18 {_MARGIN_T + plot_h / 2:.0f})">'
        f"performance [Gflop/s]</text>"
    )

    # ceilings: lower tiers dashed, top roof solid
    legend_entries: List[Tuple[str, str, str]] = []  # (color, dash, label)
    for ceiling in model.compute[:-1]:
        y = ceiling.flops_per_second
        if not ymin <= y <= ymax:
            continue
        x_start = max(xmin, y / model.peak_bandwidth)
        if x_start < xmax:
            out.append(
                f'<line x1="{px(x_start):.1f}" y1="{py(y):.1f}" '
                f'x2="{px(xmax):.1f}" y2="{py(y):.1f}" stroke="#888" '
                f'stroke-dasharray="6 4"/>'
            )
        legend_entries.append(("#888", "6 4", ceiling.label))
    for ceiling in model.memory[:-1]:
        x_hi = min(xmax, model.peak_flops / ceiling.bytes_per_second)
        y_lo = max(ymin, xmin * ceiling.bytes_per_second)
        x_lo = max(xmin, y_lo / ceiling.bytes_per_second)
        # a ceiling whose ridge sits left of the x-range (inverted or
        # coinciding ridge points) would otherwise draw a negative-
        # width segment; keep the legend entry, skip the line
        if x_lo < x_hi:
            out.append(
                f'<line x1="{px(x_lo):.1f}" y1="{py(x_lo * ceiling.bytes_per_second):.1f}" '
                f'x2="{px(x_hi):.1f}" y2="{py(x_hi * ceiling.bytes_per_second):.1f}" '
                f'stroke="#888" stroke-dasharray="6 4"/>'
            )
        legend_entries.append(("#888", "6 4", ceiling.label))
    ridge = model.ridge_intensity
    roof_x0 = max(xmin, ymin / model.peak_bandwidth)
    out.append(
        f'<path d="M {px(roof_x0):.1f} {py(roof_x0 * model.peak_bandwidth):.1f} '
        f'L {px(min(ridge, xmax)):.1f} '
        f'{py(model.attainable(min(ridge, xmax))):.1f} '
        + (f'L {px(xmax):.1f} {py(model.peak_flops):.1f}' if ridge < xmax else "")
        + '" fill="none" stroke="#000" stroke-width="2"/>'
    )
    legend_entries.append(
        ("#000", "", f"roof: {model.compute[-1].label} / {model.memory[-1].label}")
    )

    # trajectories: connected coloured series
    series_seen: List[str] = []
    for trajectory in trajectories:
        if trajectory.series not in series_seen:
            series_seen.append(trajectory.series)
        color = _COLORS[series_seen.index(trajectory.series) % len(_COLORS)]
        coords = [
            (px(p.intensity), py(p.performance)) for p in trajectory.points
        ]
        if len(coords) > 1:
            path = " L ".join(f"{cx:.1f} {cy:.1f}" for cx, cy in coords)
            out.append(
                f'<path d="M {path}" fill="none" stroke="{color}" '
                f'stroke-width="1.3" opacity="0.8"/>'
            )
        for cx, cy in coords:
            out.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="3.5" '
                f'fill="{color}"/>'
            )
        legend_entries.append((color, "", trajectory.series))
    for point in loose_points:
        if point.series not in series_seen:
            series_seen.append(point.series)
            legend_entries.append(
                (_COLORS[series_seen.index(point.series) % len(_COLORS)],
                 "", point.series)
            )
        color = _COLORS[series_seen.index(point.series) % len(_COLORS)]
        out.append(
            f'<circle cx="{px(point.intensity):.1f}" '
            f'cy="{py(point.performance):.1f}" r="4" fill="{color}"/>'
        )

    # timeline trajectory: time-gradient polyline with start/end markers
    if timeline is not None and len(timeline.points) > 0:
        tcoords = [
            (px(p.intensity), py(p.performance)) for p in timeline.points
        ]
        last = len(tcoords) - 1
        for i in range(last):
            (x0, y0), (x1, y1) = tcoords[i], tcoords[i + 1]
            color = _traj_color(i / max(last - 1, 1))
            out.append(
                f'<line x1="{x0:.1f}" y1="{y0:.1f}" x2="{x1:.1f}" '
                f'y2="{y1:.1f}" stroke="{color}" stroke-width="1.8" '
                f'opacity="0.9"/>'
            )
        for i, (cx, cy) in enumerate(tcoords):
            color = _traj_color(i / max(last, 1))
            out.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="2.2" '
                f'fill="{color}"/>'
            )
        sx, sy = tcoords[0]
        ex, ey = tcoords[-1]
        out.append(
            f'<circle cx="{sx:.1f}" cy="{sy:.1f}" r="5" '
            f'fill="{_traj_color(0.0)}" stroke="white" stroke-width="1.5"/>'
        )
        out.append(
            f'<rect x="{ex - 4:.1f}" y="{ey - 4:.1f}" width="8" height="8" '
            f'fill="{_traj_color(1.0)}" stroke="white" stroke-width="1.5"/>'
        )
        legend_entries.append(
            (_traj_color(0.5), "",
             f"trajectory: {timeline.label} (green=start, red=end)")
        )

    # legend
    lx = _MARGIN_L + plot_w + 12
    ly = _MARGIN_T + 8
    for color, dash, label in legend_entries:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        out.append(
            f'<line x1="{lx}" y1="{ly}" x2="{lx + 22}" y2="{ly}" '
            f'stroke="{color}" stroke-width="2"{dash_attr}/>'
        )
        short = label if len(label) <= 34 else label[:31] + "..."
        out.append(f'<text x="{lx + 28}" y="{ly + 4}">{short}</text>')
        ly += 18

    out.append("</svg>")
    return "\n".join(out)


def save_svg(svg_text: str, path: str) -> None:
    """Write an SVG document to disk."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg_text)
