"""Cache-aware roofline: one bandwidth ceiling per memory level.

The paper's model has a single slanted roof (DRAM).  Kernels whose
working sets live in cache sit *above* it — classified only as
"somewhere under the compute peak".  The cache-aware extension (Ilic,
Pratas, Sousa, IEEE CAL 2014) draws a slanted ceiling per level, so a
warm L2-resident kernel can be read against the L2 bandwidth roof.

The model reuses :class:`~repro.roofline.model.RooflineModel` — the
levels are just additional memory ceilings, with DRAM as the topmost...
except here the *order is inverted*: deeper levels are slower.  The
plot therefore treats L1 as the top bandwidth roof, and the analysis
helper reports which level's roof a point sits under.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..bench.cachebw import LevelBandwidth, measure_level_bandwidths
from ..bench.peakflops import measure_peak_flops
from ..errors import ConfigurationError
from ..machine.machine import Machine
from ..units import format_bandwidth, format_flops
from .model import ComputeCeiling, MemoryCeiling, RooflineModel
from .point import KernelPoint

#: level order from fastest to slowest
LEVEL_ORDER = ("L1", "L2", "L3", "DRAM")


def build_cache_aware_roofline(machine: Machine, core: int = 0,
                               trips: int = 8192,
                               sweeps: int = 8) -> RooflineModel:
    """Measure per-level bandwidths and assemble the layered model."""
    peak = measure_peak_flops(machine, None, (core,), trips=trips)
    compute = [ComputeCeiling(
        f"peak ({format_flops(peak.flops_per_second)})",
        peak.flops_per_second,
    )]
    bandwidths = measure_level_bandwidths(machine, core=core, sweeps=sweeps)
    memory = [
        MemoryCeiling(
            f"{level} ({format_bandwidth(bandwidths[level].bytes_per_second)})",
            bandwidths[level].bytes_per_second,
        )
        for level in LEVEL_ORDER
        if level in bandwidths
    ]
    return RooflineModel(
        f"{machine.spec.name} [cache-aware, core {core}]", compute, memory
    )


def level_bandwidth_map(model: RooflineModel) -> Dict[str, float]:
    """level name -> bytes/s extracted from a cache-aware model."""
    levels = {}
    for ceiling in model.memory:
        name = ceiling.label.split(" ", 1)[0]
        if name in LEVEL_ORDER:
            levels[name] = ceiling.bytes_per_second
    if not levels:
        raise ConfigurationError("model carries no cache-aware ceilings")
    return levels


def served_from(model: RooflineModel, point: KernelPoint,
                tolerance: float = 0.15) -> str:
    """The slowest memory level that can explain the point.

    Walk DRAM upward and return the first level whose roof (at the
    point's intensity) admits the measured performance.  A point above
    the DRAM roof but under the L3 roof *must* be working from L3 or
    better — the judgement the cache-aware plot exists to support.

    ``tolerance`` absorbs method dependence: the ceilings come from a
    pure-read sweep, while a kernel's mixed read/write stream can move
    somewhat more bytes per second (the paper's own observation that
    measured bandwidth depends on the operation mix).
    """
    levels = level_bandwidth_map(model)
    for level in reversed(LEVEL_ORDER):  # DRAM first
        if level not in levels:
            continue
        roof = min(model.peak_flops, point.intensity * levels[level])
        if point.performance <= roof * (1.0 + tolerance):
            return level
    raise ConfigurationError(
        f"point {point.label!r} exceeds even the L1 roof — "
        "measurement inconsistent"
    )
