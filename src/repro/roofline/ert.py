"""ERT-style ceiling discovery: measure a machine's bandwidth hierarchy.

The Empirical Roofline Toolkit establishes a platform's ceilings by
*measurement*, not datasheet: one parameterised kernel (see
:class:`~repro.kernels.ert.ErtKernel`) is timed over a grid of
working-set sizes and flops-per-element counts.  Working sets sized for
each cache level expose that level's sustainable bandwidth; a cache-
resident set with a long flop chain exposes the compute roof.

Discovery here runs the whole grid through the sweep executor, so it is
parallel across points, content-addressed-cached, and span-profiled
exactly like every other measurement in the repository.  Prefetchers
are disabled for the discovery run: per-level traffic attribution is
then deterministic and line-exact (``L2_LINES_IN`` contains no
speculative fills), which is what makes the discovered ceilings
bit-reproducible across serial, parallel, and cached execution — a
property the test suite pins.

Each level's ceiling is the **best observed rate**: the maximum over
all grid points of that level's measured bytes divided by the point's
runtime.  A level that a small working set never touches still gets a
ceiling from the larger sets that sweep through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..machine.ref import MachineRef
from ..measure.runner import Measurement
from ..sweep.executor import SweepRun, run_plan
from ..sweep.plan import SweepPlan
from ..units import format_bandwidth, format_flops

#: hierarchy levels in distance order, nearest first
LEVELS: Tuple[str, ...] = ("L1", "L2", "L3", "DRAM")

#: default flops-per-element grid: 1 keeps the probe bandwidth-bound,
#: the larger counts walk it across the ridge to the compute roof
DEFAULT_FLOP_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 64)


@dataclass(frozen=True)
class DiscoveredCeiling:
    """One measured ceiling and the grid point that achieved it."""

    #: hierarchy level (``"L1"``/``"L2"``/``"L3"``/``"DRAM"``)
    level: str
    #: best observed rate for the level, bytes/s
    bytes_per_second: float
    #: problem size of the winning grid point (doubles)
    n: int
    #: flops-per-element of the winning grid point
    flops_per_elem: int
    #: the winning point's working set, bytes
    working_set_bytes: int

    def label(self) -> str:
        return f"{self.level} ERT ({format_bandwidth(self.bytes_per_second)})"


@dataclass(frozen=True)
class ErtCeilings:
    """Everything one discovery run measured."""

    #: machine recipe the grid ran on (prefetchers disabled)
    machine: MachineRef
    #: best observed compute rate across the grid, flops/s
    compute_flops_per_second: float
    #: the winning compute point's (n, flops_per_elem)
    compute_point: Tuple[int, int]
    #: per-level ceilings keyed by level name, every level present
    levels: Dict[str, DiscoveredCeiling]
    #: the full measured grid, in plan order
    measurements: Tuple[Measurement, ...]
    #: sweep executor statistics (cache hits, wall time, jobs)
    sweep_stats: Optional[object] = None

    def compute_label(self) -> str:
        n, fpe = self.compute_point
        return (f"ERT peak ({format_flops(self.compute_flops_per_second)}, "
                f"{fpe} flops/elem)")

    def ordered(self) -> List[DiscoveredCeiling]:
        """Ceilings nearest-level first (L1, L2, L3, DRAM)."""
        return [self.levels[level] for level in LEVELS]


def ert_working_sets(machine) -> Dict[str, int]:
    """Target working-set bytes per level for a machine.

    Mid-capacity targets keep each set unambiguously resident at its
    level: half of L1; halfway between adjacent capacities for L2/L3;
    four times L3 so DRAM is continuously streamed.
    """
    h = machine.spec.hierarchy
    l1, l2, l3 = h.l1.size_bytes, h.l2.size_bytes, h.l3.size_bytes
    return {
        "L1": l1 // 2,
        "L2": (l1 + l2) // 2,
        "L3": (l2 + l3) // 2,
        "DRAM": 4 * l3,
    }


def _ws_elements(ws_bytes: int) -> int:
    # multiple of 64 elements: divides into whole vectors at any SIMD
    # width and any core count the executor partitions over
    return max(ws_bytes // 8 // 64 * 64, 64)


def resolve_machine_ref(machine) -> MachineRef:
    """Coerce a preset name or :class:`MachineRef` to a ref."""
    if isinstance(machine, MachineRef):
        return machine
    if isinstance(machine, str):
        return MachineRef.of(machine)
    raise ConfigurationError(
        f"machine must be a preset name or MachineRef, got {type(machine)!r}"
    )


def ert_plan(machine, flop_counts: Sequence[int] = DEFAULT_FLOP_COUNTS,
             sweeps: int = 2, reps: int = 2,
             cores: Tuple[int, ...] = (0,)) -> SweepPlan:
    """The discovery grid as a sweep plan (prefetchers disabled).

    Bandwidth points run every level's working set at the minimum flop
    count; compute points run the remaining counts on the L1-resident
    set, where memory can never be the limiter.
    """
    ref = resolve_machine_ref(machine).with_overrides(prefetch_enabled=False)
    working = ert_working_sets(ref.build())
    counts = sorted(set(flop_counts))
    if not counts:
        raise ConfigurationError("ert: need at least one flop count")
    plan = SweepPlan()
    bandwidth_sizes = [_ws_elements(working[level]) for level in LEVELS]
    plan.add_sweep(ref, "ert", bandwidth_sizes, protocol="warm", reps=reps,
                   cores=cores,
                   kernel_args={"flops_per_elem": counts[0],
                                "sweeps": sweeps})
    for fpe in counts[1:]:
        plan.add_sweep(ref, "ert", [bandwidth_sizes[0]], protocol="warm",
                       reps=reps, cores=cores,
                       kernel_args={"flops_per_elem": fpe,
                                    "sweeps": sweeps})
    return plan


def _best_level_rates(measurements: Iterable[Measurement],
                      sweeps: int) -> Dict[str, DiscoveredCeiling]:
    best: Dict[str, DiscoveredCeiling] = {}
    for m in measurements:
        if not m.level_bytes or m.runtime_seconds <= 0:
            continue
        fpe = m.true_flops // max(m.n * sweeps, 1)
        for level in LEVELS:
            rate = m.level_bytes.get(level, 0.0) / m.runtime_seconds
            if rate <= 0:
                continue
            if level not in best or rate > best[level].bytes_per_second:
                best[level] = DiscoveredCeiling(
                    level=level,
                    bytes_per_second=rate,
                    n=m.n,
                    flops_per_elem=fpe,
                    working_set_bytes=8 * m.n,
                )
    return best


def discover_ceilings(machine="snb",
                      flop_counts: Sequence[int] = DEFAULT_FLOP_COUNTS,
                      sweeps: int = 2, reps: int = 2,
                      cores: Tuple[int, ...] = (0,),
                      jobs: Optional[int] = None,
                      cache=None, backend=None) -> ErtCeilings:
    """Measure a machine's bandwidth hierarchy and compute roof.

    ``machine`` is a preset name or :class:`MachineRef`; ``jobs``,
    ``cache`` and ``backend`` pass straight to the sweep executor, so
    discovery fans out over workers and replays from the
    content-addressed cache.
    """
    ref = resolve_machine_ref(machine)
    plan = ert_plan(ref, flop_counts=flop_counts, sweeps=sweeps,
                    reps=reps, cores=cores)
    run: SweepRun = run_plan(plan, jobs=jobs, cache=cache, backend=backend)
    measurements = tuple(run.measurements)

    best_levels = _best_level_rates(measurements, sweeps)
    missing = [level for level in LEVELS if level not in best_levels]
    if missing:
        raise ConfigurationError(
            f"ert discovery on {ref.describe()} saw no traffic at "
            f"{missing}; the working-set grid cannot size this hierarchy"
        )
    compute_best = max(measurements, key=lambda m: m.performance)
    return ErtCeilings(
        machine=plan.points[0].machine,
        compute_flops_per_second=compute_best.performance,
        compute_point=(compute_best.n,
                       compute_best.true_flops
                       // max(compute_best.n * sweeps, 1)),
        levels={level: best_levels[level] for level in LEVELS},
        measurements=measurements,
        sweep_stats=run.stats,
    )
