"""The roofline model: ceilings, attainable performance, ridge points.

``P(I) = min(pi, I * beta)`` — performance is bounded by the flat
compute roof ``pi`` and the slanted bandwidth roof ``I * beta``.  A
model carries *multiple* ceilings of each kind (scalar/SSE/AVX compute
tiers, per-method or per-thread-count bandwidths), exactly like the
layered plots in the paper; the topmost pair defines the roof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ComputeCeiling:
    """A horizontal roof: peak flops/s under some restriction."""

    label: str
    flops_per_second: float

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0:
            raise ConfigurationError(f"ceiling {self.label!r} must be positive")


@dataclass(frozen=True)
class MemoryCeiling:
    """A slanted roof: peak bytes/s under some restriction."""

    label: str
    bytes_per_second: float

    def __post_init__(self) -> None:
        if self.bytes_per_second <= 0:
            raise ConfigurationError(f"ceiling {self.label!r} must be positive")


class RooflineModel:
    """One platform's roofline: a set of compute and memory ceilings."""

    def __init__(self, name: str,
                 compute: Sequence[ComputeCeiling],
                 memory: Sequence[MemoryCeiling]) -> None:
        if not compute or not memory:
            raise ConfigurationError(
                "a roofline needs at least one compute and one memory ceiling"
            )
        self.name = name
        self.compute = sorted(compute, key=lambda c: c.flops_per_second)
        self.memory = sorted(memory, key=lambda m: m.bytes_per_second)

    # ------------------------------------------------------------------
    # the roof
    # ------------------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        """pi: the topmost compute ceiling."""
        return self.compute[-1].flops_per_second

    @property
    def peak_bandwidth(self) -> float:
        """beta: the topmost memory ceiling."""
        return self.memory[-1].bytes_per_second

    @property
    def ridge_intensity(self) -> float:
        """Intensity where the two topmost roofs meet (flops/byte)."""
        return self.peak_flops / self.peak_bandwidth

    def attainable(self, intensity: float,
                   compute: Optional[ComputeCeiling] = None,
                   memory: Optional[MemoryCeiling] = None) -> float:
        """``min(pi, I*beta)`` against chosen (default topmost) ceilings."""
        if intensity <= 0:
            raise ConfigurationError("intensity must be positive")
        pi = (compute or self.compute[-1]).flops_per_second
        beta = (memory or self.memory[-1]).bytes_per_second
        return min(pi, intensity * beta)

    def ridge_of(self, compute: ComputeCeiling,
                 memory: Optional[MemoryCeiling] = None) -> float:
        """Ridge intensity of one compute ceiling against a bandwidth."""
        beta = (memory or self.memory[-1]).bytes_per_second
        return compute.flops_per_second / beta

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def with_point_ceilings(self) -> "RooflineModel":
        """A copy of the model (hook for derived plots)."""
        return RooflineModel(self.name, list(self.compute), list(self.memory))

    def compute_ceiling(self, label: str) -> ComputeCeiling:
        for ceiling in self.compute:
            if ceiling.label == label:
                return ceiling
        raise ConfigurationError(f"no compute ceiling labelled {label!r}")

    def memory_ceiling(self, label: str) -> MemoryCeiling:
        for ceiling in self.memory:
            if ceiling.label == label:
                return ceiling
        raise ConfigurationError(f"no memory ceiling labelled {label!r}")

    def __repr__(self) -> str:
        return (
            f"RooflineModel({self.name!r}: pi={self.peak_flops / 1e9:.2f} GF/s, "
            f"beta={self.peak_bandwidth / 1e9:.2f} GB/s, "
            f"ridge={self.ridge_intensity:.2f} F/B)"
        )
