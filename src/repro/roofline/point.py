"""Kernel points on a roofline plot.

A point is ``(I, P)`` with a label; a *trajectory* is the series of
points one kernel traces as its problem size sweeps from cache-resident
to DRAM-resident — the curves the paper's figures are made of.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigurationError
from ..measure.runner import Measurement


@dataclass(frozen=True)
class KernelPoint:
    """One measured kernel at one configuration."""

    label: str
    intensity: float
    performance: float
    series: str = ""
    n: Optional[int] = None
    protocol: str = ""
    threads: int = 1

    def __post_init__(self) -> None:
        if self.intensity <= 0 or self.performance <= 0:
            raise ConfigurationError(
                f"point {self.label!r} needs positive coordinates"
            )

    @classmethod
    def from_measurement(cls, m: Measurement,
                         series: Optional[str] = None) -> "KernelPoint":
        """Roofline coordinates of a measurement (validated work over
        measured runtime and measured traffic)."""
        return cls(
            label=m.label(),
            intensity=m.intensity,
            performance=m.performance,
            series=series if series is not None else m.kernel,
            n=m.n,
            protocol=m.protocol,
            threads=m.threads,
        )


@dataclass
class Trajectory:
    """An ordered series of points for one kernel/protocol sweep."""

    series: str
    points: List[KernelPoint] = field(default_factory=list)

    def add(self, point: KernelPoint) -> None:
        self.points.append(point)

    @classmethod
    def from_measurements(cls, series: str, measurements) -> "Trajectory":
        traj = cls(series)
        for m in measurements:
            traj.add(KernelPoint.from_measurement(m, series=series))
        return traj

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)
