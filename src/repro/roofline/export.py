"""Export roofline data: CSV series and JSON documents.

Experiments persist their results through these helpers so every figure
in EXPERIMENTS.md is backed by regenerable machine-readable data.
"""

from __future__ import annotations

import io
import json
from typing import Iterable, Optional

from .model import RooflineModel
from .point import KernelPoint, Trajectory


def points_to_csv(points: Iterable[KernelPoint]) -> str:
    """CSV with one row per kernel point."""
    out = io.StringIO()
    out.write("series,label,n,threads,protocol,intensity_flops_per_byte,"
              "performance_flops_per_s\n")
    for p in points:
        out.write(
            f"{p.series},{p.label},{p.n if p.n is not None else ''},"
            f"{p.threads},{p.protocol},{p.intensity:.6g},{p.performance:.6g}\n"
        )
    return out.getvalue()


def trajectories_to_csv(trajectories: Iterable[Trajectory]) -> str:
    """CSV for a set of sweeps (concatenated point rows)."""
    all_points = []
    for trajectory in trajectories:
        all_points.extend(trajectory.points)
    return points_to_csv(all_points)


def model_to_dict(model: RooflineModel) -> dict:
    """JSON-ready representation of a model."""
    return {
        "name": model.name,
        "peak_flops_per_s": model.peak_flops,
        "peak_bytes_per_s": model.peak_bandwidth,
        "ridge_intensity": model.ridge_intensity,
        "compute_ceilings": [
            {"label": c.label, "flops_per_s": c.flops_per_second}
            for c in model.compute
        ],
        "memory_ceilings": [
            {"label": m.label, "bytes_per_s": m.bytes_per_second}
            for m in model.memory
        ],
    }


def to_json(model: RooflineModel,
            points: Iterable[KernelPoint] = (),
            trajectories: Iterable[Trajectory] = (),
            indent: Optional[int] = 2) -> str:
    """Full document: model plus every point, JSON-encoded."""
    doc = {
        "model": model_to_dict(model),
        "points": [
            {
                "series": p.series,
                "label": p.label,
                "n": p.n,
                "threads": p.threads,
                "protocol": p.protocol,
                "intensity": p.intensity,
                "performance": p.performance,
            }
            for p in list(points)
            + [p for t in trajectories for p in t.points]
        ],
    }
    return json.dumps(doc, indent=indent)
