"""Roofline interpretation: bound classification, utilization, headroom.

These are the judgements the paper draws from its plots — "this kernel
is memory bound", "86% of peak, further tuning is futile", "Winograd
has headroom" — made programmatic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .model import RooflineModel
from .point import KernelPoint

BOUND_MEMORY = "memory-bound"
BOUND_COMPUTE = "compute-bound"


@dataclass(frozen=True)
class PointAnalysis:
    """Everything the model says about one kernel point."""

    point: KernelPoint
    bound: str
    attainable_flops: float
    utilization_of_roof: float     # P / attainable(I)
    utilization_of_peak: float     # P / pi
    headroom_factor: float         # attainable(I) / P

    def summary(self) -> str:
        return (
            f"{self.point.label}: {self.bound}, "
            f"{self.utilization_of_roof:.0%} of its roof "
            f"({self.utilization_of_peak:.0%} of peak), "
            f"{self.headroom_factor:.2f}x headroom"
        )


def analyze_point(model: RooflineModel, point: KernelPoint) -> PointAnalysis:
    """Classify one point against a model's topmost roofs."""
    attainable = model.attainable(point.intensity)
    bound = (
        BOUND_MEMORY if point.intensity < model.ridge_intensity
        else BOUND_COMPUTE
    )
    return PointAnalysis(
        point=point,
        bound=bound,
        attainable_flops=attainable,
        utilization_of_roof=point.performance / attainable,
        utilization_of_peak=point.performance / model.peak_flops,
        headroom_factor=attainable / point.performance,
    )


def check_point_sanity(model: RooflineModel, point: KernelPoint,
                       tolerance: float = 0.15) -> None:
    """Raise when a point lies meaningfully above the roof.

    The paper treats above-roof points as measurement bugs (wrong
    bandwidth reference, unpinned threads, turbo left on); experiments
    use this check as a guardrail.
    """
    attainable = model.attainable(point.intensity)
    if point.performance > attainable * (1.0 + tolerance):
        raise ConfigurationError(
            f"point {point.label!r} is {point.performance / attainable:.2f}x "
            f"above the roof — measurement methodology violated"
        )


def speedup_if_compute_bound(model: RooflineModel, point: KernelPoint) -> float:
    """Potential gain from raising intensity to the ridge (e.g. by
    blocking): attainable at ridge over current performance."""
    return model.peak_flops / point.performance
