"""Automatic roofline construction: measure a machine, get its model.

This is the paper's headline deliverable — rooflines produced entirely
from measurement, no datasheet numbers: every compute ceiling comes
from the FP-chain microbenchmark at one SIMD width, and every memory
ceiling from the best of the bandwidth checks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bench.peakbw import best_bandwidth
from ..bench.peakflops import measure_peak_flops
from ..machine.machine import Machine
from ..units import format_bandwidth, format_flops
from .model import ComputeCeiling, MemoryCeiling, RooflineModel

_WIDTH_NAMES = {64: "scalar", 128: "SSE", 256: "AVX", 512: "AVX-512"}


def build_roofline(machine: Machine, cores: Sequence[int] = (0,),
                   widths: Optional[Sequence[int]] = None,
                   bandwidth_methods: Optional[Sequence[str]] = None,
                   stream_elements: Optional[int] = None,
                   trips: int = 16384,
                   include_thread_scaling: bool = False) -> RooflineModel:
    """Measure ``machine`` and assemble its roofline for ``cores``.

    ``include_thread_scaling`` adds a single-thread compute ceiling
    below the full one (the "no multithreading" tier of the paper's
    layered plots) when ``cores`` spans more than one core.
    """
    cores = tuple(cores)
    if widths is None:
        widths = [w for w in (64, 128, 256, 512)
                  if machine.ports.supports_width(w)]
    compute = []
    for width in widths:
        result = measure_peak_flops(machine, width, cores, trips=trips)
        name = _WIDTH_NAMES.get(width, f"{width}-bit")
        suffix = f", {len(cores)}t" if len(cores) > 1 else ""
        compute.append(ComputeCeiling(
            f"{name}{suffix} ({format_flops(result.flops_per_second)})",
            result.flops_per_second,
        ))
    if include_thread_scaling and len(cores) > 1:
        single = measure_peak_flops(machine, widths[-1], (cores[0],),
                                    trips=trips)
        compute.append(ComputeCeiling(
            f"{_WIDTH_NAMES.get(widths[-1], widths[-1])}, 1t "
            f"({format_flops(single.flops_per_second)})",
            single.flops_per_second,
        ))

    bw = best_bandwidth(machine, cores, n=stream_elements,
                        methods=bandwidth_methods)
    memory = [MemoryCeiling(
        f"DRAM via {bw.method}, {len(cores)}t "
        f"({format_bandwidth(bw.bytes_per_second)})",
        bw.bytes_per_second,
    )]
    label = f"{machine.spec.name} [{len(cores)} thread(s)]"
    return RooflineModel(label, compute, memory)


def theoretical_roofline(machine: Machine, threads: int = 1) -> RooflineModel:
    """Datasheet roofline (no measurement) — the sanity baseline the
    measured model is compared against in the platform table."""
    widths = [w for w in (64, 128, 256, 512)
              if machine.ports.supports_width(w)]
    compute = [
        ComputeCeiling(
            f"{_WIDTH_NAMES.get(w, w)} theoretical",
            machine.theoretical_peak_flops(w, threads),
        )
        for w in widths
    ]
    nodes = max(
        1,
        min(machine.topology.sockets,
            (threads + machine.topology.cores_per_socket - 1)
            // machine.topology.cores_per_socket),
    )
    memory = [MemoryCeiling(
        "DRAM theoretical", machine.theoretical_peak_bandwidth(nodes)
    )]
    return RooflineModel(f"{machine.spec.name} (theoretical)", compute, memory)
