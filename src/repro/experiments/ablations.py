"""Ablations A1/A2: sensitivity of the methodology to substrate choices.

These go beyond the paper: they quantify how much the simulated
machine's internal knobs (replacement policy, reissue interval) move
the measured quantities, demonstrating that the reproduced effects are
mechanical rather than tuned-in.
"""

from __future__ import annotations

from ..kernels.blas1 import StreamTriad
from ..memory.replacement import policy_names
from ..units import round_to
from .base import Experiment, ExperimentConfig, ExperimentResult, Table


class ReplacementAblation(Experiment):
    """A1: L3 replacement policy vs measured traffic.

    Around the L3 capacity boundary the victim choice decides how much
    of the matrix survives between dgemv rows, so measured Q separates
    the policies.
    """

    id = "A1"
    title = "Replacement-policy ablation (measured Q)"
    paper_item = "ablation (ours): substrate sensitivity"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        import math

        result = self.new_result()
        probe = config.machine()
        l3 = probe.spec.hierarchy.l3.size_bytes
        n = round_to(int(math.sqrt(1.25 * l3 / 8)), 8)
        table = Table(
            f"dgemv-row at n={n} (footprint ~1.25x L3), warm protocol",
            ["L3 policy", "Q / compulsory", "P [Gflop/s]"],
        )
        ratios = {}
        for policy in policy_names():
            ref = config.ref().with_overrides(l3_policy=policy)
            m = config.measure("dgemv-row", n, protocol="warm", reps=1,
                               machine=ref)
            ratios[policy] = m.traffic_ratio
            table.add(policy, f"{m.traffic_ratio:.3f}",
                      f"{m.performance / 1e9:.3f}")
        result.tables.append(table)
        result.check(
            "every policy's traffic stays within 4x of compulsory",
            all(0.1 <= r <= 4.0 for r in ratios.values()),
            str({k: f"{v:.2f}" for k, v in sorted(ratios.items())}),
        )
        result.check(
            "policies disagree (the substrate is sensitive to the choice)",
            max(ratios.values()) > min(ratios.values()),
        )
        return result


class MultiplexAblation(Experiment):
    """A3: why the methodology limits itself to four FP events.

    perf-style counter multiplexing scales observed counts by scheduled
    time, assuming uniform activity.  A measurement window is bursty by
    construction (idle, setup, kernel), so the scaled W estimate drifts
    once the event set exceeds the programmable slots — and the error
    grows with the rotation quantum.
    """

    id = "A3"
    title = "Counter-multiplexing ablation (W estimate error)"
    paper_item = "ablation (ours): event-set size vs slot count"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        from ..kernels.base import CodegenCaps
        from ..pmu.multiplex import MultiplexedPerfSession

        result = self.new_result()
        table = Table(
            "Multiplexed fp_256_f64 estimate vs ground truth (triad burst "
            "inside an idle window)",
            ["events programmed", "groups", "rotation quantum [cycles]",
             "estimate / true"],
        )
        dedicated_events = ["fp_256_f64", "cycles", "instructions",
                            "llc_misses"]
        oversubscribed = dedicated_events + ["l1_replacement",
                                             "l2_lines_in", "dtlb_walks"]
        rows = []
        for events, quantum in ((dedicated_events, 100_000.0),
                                (oversubscribed, 100_000.0),
                                (oversubscribed, 10_000.0),
                                (oversubscribed, 1_000.0)):
            machine = config.machine()
            caps = CodegenCaps.from_machine(machine)
            kernel = StreamTriad()
            n = round_to(machine.spec.hierarchy.l2.size_bytes // 24, 32)
            loaded = machine.load(kernel.build(n, caps))
            with MultiplexedPerfSession(machine, events, slots=4,
                                        rotation_cycles=quantum) as session:
                machine.advance_tsc(quantum * 1.1)  # skewed idle lead-in
                machine.run(loaded, core_id=0)
                machine.advance_tsc(quantum * 0.9)
            ratio = (session.estimate("fp_256_f64")
                     / session.true_delta("fp_256_f64"))
            groups = len(session.groups)
            table.add(len(events), groups, int(quantum), f"{ratio:.3f}")
            rows.append((groups, quantum, ratio))
        result.tables.append(table)
        result.check(
            "within the slot budget the estimate is exact",
            abs(rows[0][2] - 1.0) < 1e-9,
        )
        result.check(
            "oversubscribed coarse-quantum estimates are visibly wrong",
            abs(rows[1][2] - 1.0) > 0.05,
            f"ratio {rows[1][2]:.2f}",
        )
        result.check(
            "finer rotation quanta reduce the error",
            abs(rows[3][2] - 1.0) < abs(rows[1][2] - 1.0),
            f"{rows[1][2]:.2f} -> {rows[3][2]:.2f}",
        )
        result.note(
            "The paper's W measurement needs exactly the four FP-width "
            "events, which fit Sandy Bridge's four programmable counters "
            "— no multiplexing, no estimation error."
        )
        return result


class ReissueAblation(Experiment):
    """A2: the overcount artifact vs the reissue interval.

    The cold-cache work overcount must shrink as re-dispatch becomes
    rarer and vanish when replay latency is fully hidden — evidence the
    F2 effect is produced by the modelled mechanism.
    """

    id = "A2"
    title = "Reissue-interval ablation (W overcount)"
    paper_item = "ablation (ours): source of the FP overcount"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        l3 = config.machine().spec.hierarchy.l3.size_bytes
        n = round_to(2 * l3 // 24, 32)
        table = Table(
            f"triad cold-cache overcount at n={n}",
            ["reissue interval [cycles]", "max reissues/miss",
             "measured W / true W"],
        )
        rows = []
        for interval, cap in ((8, 8), (16, 4), (32, 2), (64, 1)):
            # prefetchers off so replays wait on full DRAM latency —
            # otherwise L2-hit replays (one per line) flatten the sweep
            ref = config.ref().with_overrides(
                timing={"reissue_interval_cycles": interval,
                        "max_reissue_per_miss": cap},
                prefetch_enabled=False,
            )
            m = config.measure("triad", n, protocol="cold", reps=1,
                               machine=ref)
            rows.append(m.work_overcount)
            table.add(interval, cap, f"{m.work_overcount:.2f}")
        # the hide-everything configuration: replays never fire
        ref = config.ref().with_overrides(
            timing={"reissue_hide_cycles": 10_000}, prefetch_enabled=False)
        m = config.measure("triad", n, protocol="cold", reps=1, machine=ref)
        table.add("hidden (no replays)", 0, f"{m.work_overcount:.2f}")
        result.tables.append(table)
        result.check(
            "overcount decreases monotonically with rarer replays",
            all(rows[i] >= rows[i + 1] for i in range(len(rows) - 1)),
            str([f"{r:.2f}" for r in rows]),
        )
        result.check(
            "with replays disabled, cold W measurement is exact",
            abs(m.work_overcount - 1.0) < 0.02,
            f"{m.work_overcount:.3f}",
        )
        return result
