"""Experiment registry: id -> experiment class."""

from __future__ import annotations

from typing import Dict, List, Type

from ..errors import ExperimentError
from .ablations import MultiplexAblation, ReissueAblation, ReplacementAblation
from .base import Experiment
from .effects import ColdWarmEffect, NumaBindingEffect, PrefetchEffect, TurboEffect
from .extensions import CacheAwareRoofline, SpmvRoofline
from .rooflines import (
    DaxpyRoofline,
    DgemmRoofline,
    DgemvRoofline,
    ExampleRoofline,
    FftRoofline,
    ParallelRoofline,
)
from .tables import PeakBandwidthTable, PeakFlopsTable, PlatformTable
from .validation import FmaCounterCheck, TrafficValidation, WorkValidation

_EXPERIMENTS: Dict[str, Type[Experiment]] = {
    cls.id: cls
    for cls in (
        PlatformTable,
        PeakFlopsTable,
        PeakBandwidthTable,
        ExampleRoofline,
        WorkValidation,
        FmaCounterCheck,
        TrafficValidation,
        DaxpyRoofline,
        DgemvRoofline,
        DgemmRoofline,
        FftRoofline,
        ParallelRoofline,
        PrefetchEffect,
        ColdWarmEffect,
        TurboEffect,
        NumaBindingEffect,
        CacheAwareRoofline,
        SpmvRoofline,
        ReplacementAblation,
        ReissueAblation,
        MultiplexAblation,
    )
}


def experiment_ids() -> List[str]:
    """All registered experiment ids in run order."""
    order = ["T1", "T2", "T3", "F1", "F2", "F2b", "F3", "F4", "F5", "F6",
             "F7", "F8", "F9", "F10", "F11", "F12", "E1", "E2", "A1", "A2", "A3"]
    missing = set(_EXPERIMENTS) - set(order)
    if missing:
        raise ExperimentError(f"experiments missing from run order: {missing}")
    return [i for i in order if i in _EXPERIMENTS]


def make_experiment(experiment_id: str) -> Experiment:
    """Instantiate one experiment by id."""
    try:
        return _EXPERIMENTS[experiment_id]()
    except KeyError as exc:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {experiment_ids()}"
        ) from exc
