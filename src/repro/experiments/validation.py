"""Experiments F2/F3: counter validation — the paper's core contribution.

F2 validates work measurement: for kernels with exactly known flop
counts, the FP counters are exact under warm caches but **overcount**
under cold caches because µops dependent on missing loads are reissued
and counted again (the Sandy Bridge artifact the paper quantifies).

F3 validates traffic measurement: IMC-counted bytes match a streaming
kernel's compulsory traffic only once hardware prefetchers are disabled;
with prefetch on, run-ahead overfetch inflates Q.
"""

from __future__ import annotations

from typing import List, Tuple

from ..kernels.blas1 import Daxpy, Dot, StreamTriad, SumReduction
from ..kernels.blas2 import Dgemv
from ..measure.runner import Measurement, measure_kernel
from ..units import format_bytes
from .base import Experiment, ExperimentConfig, ExperimentResult, Table


from ..units import round_to  # re-export: historical home of the helper


class WorkValidation(Experiment):
    """F2: measured flops / true flops, warm vs cold."""

    id = "F2"
    title = "Work (W) counter validation"
    paper_item = "FP-counter validation figure (overcount on cold caches)"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        l1 = machine.spec.hierarchy.l1.size_bytes
        l3 = machine.spec.hierarchy.l3.size_bytes
        granule = 32  # lanes * max accumulators used below
        kernels = [
            (StreamTriad(), 24),
            (Daxpy(), 16),
            (Dot(accumulators=8), 16),
            (SumReduction(accumulators=4), 8),
        ]
        table = Table(
            "Measured W / expected W (FP instruction counters)",
            ["kernel", "warm n", "warm ratio", "cold n", "cold ratio"],
        )
        worst_warm = 0.0
        min_cold = float("inf")
        for kernel, bytes_per_elem in kernels:
            warm_n = round_to(l1 // (2 * bytes_per_elem), granule)
            cold_n = round_to(4 * l3 // bytes_per_elem, granule)
            if config.quick:
                cold_n = round_to(2 * l3 // bytes_per_elem, granule)
            warm = measure_kernel(machine, kernel, warm_n, protocol="warm",
                                  reps=config.reps)
            cold = measure_kernel(machine, kernel, cold_n, protocol="cold",
                                  reps=config.reps)
            table.add(kernel.name, warm_n, f"{warm.work_overcount:.3f}",
                      cold_n, f"{cold.work_overcount:.3f}")
            worst_warm = max(worst_warm, abs(warm.work_overcount - 1.0))
            min_cold = min(min_cold, cold.work_overcount)
        result.tables.append(table)
        result.check(
            "warm-cache W measurement is exact within 10%",
            worst_warm <= 0.10, f"worst warm deviation {worst_warm:.1%}",
        )
        result.check(
            "cold-cache W overcounts by >= 1.3x for streaming kernels",
            min_cold >= 1.3, f"smallest cold overcount {min_cold:.2f}x",
        )
        result.note(
            "The overcount is mechanical: FP events increment at issue and "
            "µops dependent on cache-missing loads are re-dispatched — "
            "measure W with warm caches (or validate against known flops)."
        )
        return result


class FmaCounterCheck(Experiment):
    """F2b: the paper's FMA-vs-ADD counter experiment.

    A retired FMA must bump the FP counter twice (one fused op counts
    both the multiply and the add); a plain vector add bumps it once.
    """

    id = "F2b"
    title = "FMA counter increment check"
    paper_item = "FMA counting validation, section 2.3"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        from ..bench.peakflops import peak_flops_program
        from ..machine.presets import haswell_node
        from ..pmu.perf import PerfSession

        result = self.new_result()
        machine = haswell_node(scale=config.scale)
        trips = 1024
        fma_prog = peak_flops_program(256, has_fma=True, chains=4,
                                      trips=trips)
        add_prog = peak_flops_program(256, has_fma=False, chains=4,
                                      trips=trips)
        table = Table(
            "Counter increments per retired instruction",
            ["code", "instructions", "counter delta", "delta per instr"],
        )
        ratios = []
        for label, program in (("FMA chains", fma_prog),
                               ("ADD/MUL chains", add_prog)):
            loaded = machine.load(program)
            instr = 4 * trips
            with PerfSession(machine, core_events=("fp_256_f64",),
                             cores=(0,)) as session:
                machine.run(loaded, core_id=0)
            delta = session.core_delta("fp_256_f64")
            table.add(label, instr, delta, f"{delta / instr:.2f}")
            ratios.append(delta / instr)
        result.tables.append(table)
        result.check("FMA increments the counter by 2 per instruction",
                     abs(ratios[0] - 2.0) < 1e-9)
        result.check("plain vector ops increment by 1 per instruction",
                     abs(ratios[1] - 1.0) < 1e-9)
        return result


class TrafficValidation(Experiment):
    """F3: three ways to measure Q against known compulsory traffic.

    The paper's progression: counting last-level-cache miss events
    *undercounts* badly when prefetchers fetch the data (no demand miss
    ever happens); disabling the prefetch MSR fixes the event-based
    count for simple kernels; counting raw CAS transfers at the IMC is
    accurate regardless.
    """

    id = "F3"
    title = "Traffic (Q) counter validation"
    paper_item = "traffic-measurement validation (LLC events vs IMC)"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        l3 = machine.spec.hierarchy.l3.size_bytes
        kernel = StreamTriad()
        factors = [2, 4] if config.quick else [2, 4, 8]
        table = Table(
            "Measured Q / expected Q for the STREAM triad (cold caches)",
            ["working set", "n", "LLC events, pf ON", "LLC events, pf OFF",
             "IMC, pf ON", "IMC, pf OFF"],
        )
        llc_on_r: List[float] = []
        llc_off_r: List[float] = []
        imc_r: List[float] = []
        for factor in factors:
            n = round_to(factor * l3 // 24, 32)
            expected_reads = 24 * n   # b, c, and the RFO of a
            expected_total = kernel.compulsory_bytes(n)
            machine.prefetch_control.enable_all()
            on = measure_kernel(machine, kernel, n, protocol="cold",
                                reps=config.reps)
            machine.prefetch_control.disable_all()
            off = measure_kernel(machine, kernel, n, protocol="cold",
                                 reps=config.reps)
            machine.prefetch_control.enable_all()
            llc_on = on.llc_bytes / expected_reads
            llc_off = off.llc_bytes / expected_reads
            table.add(format_bytes(kernel.footprint_bytes(n)), n,
                      f"{llc_on:.3f}", f"{llc_off:.3f}",
                      f"{on.traffic_bytes / expected_total:.3f}",
                      f"{off.traffic_bytes / expected_total:.3f}")
            llc_on_r.append(llc_on)
            llc_off_r.append(llc_off)
            imc_r.extend([on.traffic_bytes / expected_total,
                          off.traffic_bytes / expected_total])
        result.tables.append(table)
        result.check(
            "LLC-miss events undercount badly while prefetchers run",
            all(r <= 0.6 for r in llc_on_r),
            f"ratios {['%.2f' % r for r in llc_on_r]}",
        )
        result.check(
            "disabling the prefetch MSR fixes the event-based count "
            "(within 15%)",
            all(abs(r - 1.0) <= 0.15 for r in llc_off_r),
            f"ratios {['%.2f' % r for r in llc_off_r]}",
        )
        result.check(
            "IMC CAS counting matches expected traffic within 15% with "
            "prefetchers ON or OFF",
            all(abs(r - 1.0) <= 0.15 for r in imc_r),
            f"ratios {['%.2f' % r for r in imc_r]}",
        )
        result.note(
            "Useful prefetches replace demand misses one-for-one at the "
            "controller, so the IMC stays accurate for streams; LLC-event "
            "counting silently attributes that traffic to nobody — the "
            "reason the methodology reads uncore counters."
        )
        return result
