"""Experiments F9-F11: methodology effect studies.

F9 — hardware prefetch changes *measured* intensity (overfetch) while
helping runtime: the reason Q must be measured at the IMC and why the
paper runs prefetch-off validations.

F10 — cold vs warm protocols move kernel points: warm runs filter
traffic through the cache, raising intensity and performance.

F11 — why the paper disables Turbo Boost: with turbo on, the operative
clock depends on the number of active cores, so peak (and hence every
roof) is unstable.
"""

from __future__ import annotations

from dataclasses import replace

from ..bench.peakflops import measure_peak_flops
from ..kernels.blas1 import Daxpy, StreamTriad, StridedSum
from ..kernels.blas2 import Dgemv
from ..kernels.fft import Fft
from ..machine.machine import Machine
from ..measure.runner import measure_kernel
from ..units import format_bytes
from .base import Experiment, ExperimentConfig, ExperimentResult, Table
from .validation import round_to


class PrefetchEffect(Experiment):
    """F9: prefetch on/off — measured I drops, runtime improves."""

    id = "F9"
    title = "Hardware prefetch: traffic inflation vs runtime gain"
    paper_item = "prefetcher discussion, section on counting traffic"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        import math

        result = self.new_result()
        machine = config.machine()
        l3 = machine.spec.hierarchy.l3.size_bytes
        daxpy_n = round_to((2 if config.quick else 4) * l3 // 16, 32)
        strided_n = round_to(2 * l3 // 128, 32)  # footprint 2x L3 at stride 16
        cases = [
            ("unit-stride stream", Daxpy(), daxpy_n),
            ("line-skipping stride", StridedSum(stride_elems=16), strided_n),
        ]
        table = Table(
            "Prefetch effect (cold caches, DRAM-resident)",
            ["access pattern", "kernel", "n", "Q on / Q off",
             "runtime on", "runtime off", "speedup from prefetch"],
        )
        measurements = {}
        for pattern, kernel, n in cases:
            machine.prefetch_control.enable_all()
            on = measure_kernel(machine, kernel, n, protocol="cold",
                                reps=config.reps)
            machine.prefetch_control.disable_all()
            off = measure_kernel(machine, kernel, n, protocol="cold",
                                 reps=config.reps)
            machine.prefetch_control.enable_all()
            measurements[pattern] = (on, off)
            table.add(pattern, kernel.name, n,
                      f"{on.traffic_bytes / off.traffic_bytes:.3f}",
                      f"{on.runtime_seconds * 1e6:.1f} us",
                      f"{off.runtime_seconds * 1e6:.1f} us",
                      f"{off.runtime_seconds / on.runtime_seconds:.2f}x")
        result.tables.append(table)
        stream_on, stream_off = measurements["unit-stride stream"]
        walk_on, walk_off = measurements["line-skipping stride"]
        result.check(
            "prefetch improves unit-stride runtime (>5%)",
            stream_off.runtime_seconds > 1.05 * stream_on.runtime_seconds,
            f"{stream_off.runtime_seconds / stream_on.runtime_seconds:.2f}x",
        )
        result.check(
            "unit-stride streams see little traffic inflation (useful "
            "prefetches replace demand fetches)",
            stream_on.traffic_bytes <= 1.15 * stream_off.traffic_bytes,
        )
        result.check(
            "line-skipping strides suffer real overfetch (next-line "
            "prefetch fetches lines the kernel never touches)",
            walk_on.traffic_bytes >= 1.25 * walk_off.traffic_bytes,
            f"{walk_on.traffic_bytes / walk_off.traffic_bytes:.2f}x",
        )
        return result


class ColdWarmEffect(Experiment):
    """F10: the same kernel under cold vs warm protocols."""

    id = "F10"
    title = "Cold vs warm cache protocols"
    paper_item = "cold/warm measurement comparison"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        l3 = machine.spec.hierarchy.l3.size_bytes
        import math
        gemv_n = round_to(int(math.sqrt(l3 / 2 / 8)), 8)
        fft_n = 1 << int(math.log2(max(l3 // 2 // 24, 256)))
        table = Table(
            "Cache-resident working sets: protocol comparison",
            ["kernel", "n", "protocol", "I [F/B]", "P [Gflop/s]",
             "Q / compulsory"],
        )
        gains = {}
        for kernel, n in ((Dgemv(layout="row"), gemv_n), (Fft(), fft_n)):
            cold = measure_kernel(machine, kernel, n, protocol="cold",
                                  reps=config.reps)
            warm = measure_kernel(machine, kernel, n, protocol="warm",
                                  reps=config.reps)
            for m in (cold, warm):
                table.add(kernel.name, n, m.protocol, f"{m.intensity:.3f}",
                          f"{m.performance / 1e9:.3f}",
                          f"{m.traffic_ratio:.2f}")
            gains[kernel.name] = (warm.intensity / cold.intensity,
                                  warm.performance / cold.performance)
        result.tables.append(table)
        result.check(
            "warm caches raise measured intensity (traffic filtered)",
            all(gain_i > 1.2 for gain_i, _ in gains.values()),
            f"intensity gains: "
            f"{ {k: '%.1fx' % g for k, (g, _) in gains.items()} }",
        )
        result.check(
            "warm caches raise single-pass kernel performance (dgemv)",
            gains["dgemv-row"][1] > 1.2,
            f"{gains['dgemv-row'][1]:.1f}x",
        )
        result.check(
            "multi-pass FFT amortises its cold first pass (warm within 5%)",
            gains["fft"][1] > 0.95,
            f"{gains['fft'][1]:.2f}x",
        )
        result.note(
            "Work W is identical in both protocols, so higher warm "
            "intensity directly shows the cache filtering Q — the paper's "
            "inner-product observation."
        )
        return result


class TurboEffect(Experiment):
    """F11: why measurements pin the clock."""

    id = "F11"
    title = "Turbo Boost instability"
    paper_item = "experimental setup (Turbo Boost disabled)"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        ncores = machine.topology.total_cores
        counts = [1, 2, ncores // 2, ncores]
        counts = sorted({c for c in counts if c >= 1})
        table = Table(
            "Per-core peak vs active cores (AVX microbenchmark)",
            ["active cores", "fixed clock [Gflop/s/core]",
             "turbo clock [Gflop/s/core]"],
        )
        fixed_vals = []
        turbo_vals = []
        for active in counts:
            cores = machine.topology.first_cores(active)
            machine.governor.disable_turbo()
            fixed = measure_peak_flops(machine, None, cores, trips=2048)
            machine.governor.enable_turbo()
            turbo = measure_peak_flops(machine, None, cores, trips=2048)
            machine.governor.disable_turbo()
            fixed_vals.append(fixed.flops_per_second / active)
            turbo_vals.append(turbo.flops_per_second / active)
            table.add(active, f"{fixed_vals[-1] / 1e9:.2f}",
                      f"{turbo_vals[-1] / 1e9:.2f}")
        result.tables.append(table)
        spread_fixed = (max(fixed_vals) - min(fixed_vals)) / fixed_vals[0]
        result.check(
            "fixed-clock per-core peak is stable across active-core counts",
            spread_fixed < 0.01, f"spread {spread_fixed:.1%}",
        )
        result.check(
            "turbo per-core peak varies with active cores",
            turbo_vals[0] > turbo_vals[-1] * 1.05,
            f"1 core {turbo_vals[0] / 1e9:.2f} vs all cores "
            f"{turbo_vals[-1] / 1e9:.2f} Gflop/s/core",
        )
        result.check(
            "turbo exceeds the fixed-clock roof (unstable ceilings)",
            turbo_vals[0] > fixed_vals[0] * 1.05,
        )
        return result


class NumaBindingEffect(Experiment):
    """F12 (ours): why the paper pins threads and memory with numactl."""

    id = "F12"
    title = "NUMA binding: bound vs unbound bandwidth"
    paper_item = "NUMA/numactl discussion (sections 2.2, 2.5)"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        from ..bench.peakbw import measure_bandwidth

        result = self.new_result()
        machine = config.machine(sockets=2)
        ncores = machine.topology.total_cores
        cores = machine.topology.first_cores(ncores)
        table = Table(
            "Two-socket streaming bandwidth (triad, all cores)",
            ["memory placement", "bandwidth [GB/s]"],
        )
        bound = measure_bandwidth(machine, "triad", cores, reps=1,
                                  bind_memory=True)
        unbound = measure_bandwidth(machine, "triad", cores, reps=1,
                                    bind_memory=False)
        table.add("bound to local node (numactl discipline)",
                  f"{bound.bytes_per_second / 1e9:.2f}")
        table.add("all on node 0 (unbound)",
                  f"{unbound.bytes_per_second / 1e9:.2f}")
        result.tables.append(table)
        result.check(
            "node-local binding beats unbound placement",
            bound.bytes_per_second > 1.3 * unbound.bytes_per_second,
            f"{bound.bytes_per_second / unbound.bytes_per_second:.2f}x",
        )
        result.note(
            "Unbound, every socket-1 access crosses the interconnect and "
            "both sockets contend for node 0's controllers — the paper "
            "runs one bound benchmark copy per node and sums instead."
        )
        return result
