"""Experiments: one class per paper table/figure, plus ablations,
with shape checks and report generation."""

from .base import Check, Experiment, ExperimentConfig, ExperimentResult, Table
from .registry import experiment_ids, make_experiment
from .report import render_report, run_experiments, write_artifacts

__all__ = [
    "Check",
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "Table",
    "experiment_ids",
    "make_experiment",
    "render_report",
    "run_experiments",
    "write_artifacts",
]
