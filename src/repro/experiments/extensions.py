"""Experiment E1: cache-aware roofline (the extension direction).

The paper's single-DRAM-roof model cannot place cache-resident kernels
against a meaningful bandwidth bound; its natural extension (Ilic et
al., IEEE CAL 2014) measures one bandwidth ceiling per memory level.
We build that model with the same measured-microbenchmark discipline
and verify that warm working-set sweeps of daxpy land under the roof of
the level they reside in.
"""

from __future__ import annotations

from ..kernels.blas1 import Daxpy
from ..kernels.spmv import Spmv
from ..machine.ref import MachineRef
from ..roofline.cache_aware import (
    build_cache_aware_roofline,
    level_bandwidth_map,
    served_from,
)
from ..roofline.plot_svg import svg_plot
from ..roofline.point import KernelPoint
from ..units import format_bandwidth, format_bytes, round_to
from .base import Experiment, ExperimentConfig, ExperimentResult, Table


class CacheAwareRoofline(Experiment):
    """E1: per-level bandwidth ceilings and level attribution."""

    id = "E1"
    title = "Cache-aware roofline (extension)"
    paper_item = "extension: hierarchical bandwidth ceilings"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        hier = machine.spec.hierarchy
        model = build_cache_aware_roofline(
            machine, trips=2048 if config.quick else 8192,
            sweeps=4 if config.quick else 8,
        )
        levels = level_bandwidth_map(model)
        table = Table(
            "Measured per-level read bandwidth (one core)",
            ["level", "bandwidth"],
        )
        for level in ("L1", "L2", "L3", "DRAM"):
            table.add(level, format_bandwidth(levels[level]))
        result.tables.append(table)

        # warm daxpy at working sets resident in each level
        targets = {
            "L2": (hier.l1.size_bytes + hier.l2.size_bytes) // 2,
            "L3": (hier.l2.size_bytes + hier.l3.size_bytes) // 2,
            "DRAM": 4 * hier.l3.size_bytes,
        }
        placement = Table(
            "Warm daxpy placement against the layered roofs",
            ["working set", "n", "P [Gflop/s]", "served from (model)"],
        )
        points = []
        attribution = {}
        for level, footprint in targets.items():
            n = round_to(footprint // 16, 32)
            protocol = "warm" if level != "DRAM" else "cold"
            m = config.measure("daxpy", n, protocol=protocol)
            point = KernelPoint(
                f"daxpy {level}-resident",
                # judge throughput against each level's roof at the
                # kernel's *compulsory* intensity (2 flops / 24 bytes):
                # measured warm Q is near zero by design
                intensity=2.0 / 24.0,
                performance=m.performance,
                series=f"daxpy {level}",
            )
            points.append(point)
            attribution[level] = served_from(model, point)
            placement.add(format_bytes(Daxpy().footprint_bytes(n)), n,
                          f"{m.performance / 1e9:.2f}", attribution[level])
        result.tables.append(placement)
        result.artifacts["e1_cache_aware.svg"] = svg_plot(
            model, points=points, title="Cache-aware roofline"
        )

        ordered = [levels[l] for l in ("L1", "L2", "L3", "DRAM")]
        result.check(
            "bandwidth ceilings are ordered L1 >= L2 >= L3 > DRAM",
            all(a >= 0.95 * b for a, b in zip(ordered, ordered[1:]))
            and ordered[2] > ordered[3],
        )
        result.check(
            "DRAM-resident daxpy is attributed to the DRAM roof",
            attribution["DRAM"] == "DRAM",
        )
        result.check(
            "cache-resident daxpy exceeds the DRAM roof (needs the "
            "layered model to be classified)",
            attribution["L2"] in ("L1", "L2", "L3")
            and attribution["L2"] != "DRAM",
            str(attribution),
        )
        result.note(
            "The single-roof model would show the warm points floating in "
            "no-man's-land above the DRAM roof; the layered ceilings give "
            "each one a level-specific bound, extending the paper's "
            "methodology to cache-resident working sets."
        )
        return result


class SpmvRoofline(Experiment):
    """E2: sparse matrix-vector multiply on the roofline (extension).

    SpMV's intensity is pinned near (2k+1)/(16k+24) flops/byte by its
    value+index streams, but its *performance* depends on gather
    locality: a narrow band keeps x cache-resident, a matrix-wide band
    turns every gather into a long-latency access.  The roofline shows
    two kernels at the same intensity with very different heights — the
    situation the paper's "room for improvement at fixed intensity"
    reading is about.
    """

    id = "E2"
    title = "Roofline: SpMV (gather locality, extension)"
    paper_item = "extension: sparse kernel with data-dependent access"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        from ..roofline.builder import build_roofline
        from ..roofline.point import KernelPoint

        result = self.new_result()
        # a further-shrunk machine keeps the x-vector-misses-L3 regime
        # reachable with an affordable gather count
        ref = MachineRef.of("snb-ep", scale=config.scale / 4)
        machine = ref.build()
        l3 = machine.spec.hierarchy.l3.size_bytes
        l2 = machine.spec.hierarchy.l2.size_bytes
        row_nnz = 4
        # square matrix: 8n-byte x spans 2 L3s so wide gathers miss,
        # while row_nnz*n gathers revisit each x line many times
        n = round_to(2 * l3 // 8, 64)
        model = build_roofline(
            machine, cores=(0,), trips=2048,
            stream_elements=round_to(2 * l3 // 8, 64),
            bandwidth_methods=("memset-nt", "read"),
        )
        table = Table(
            f"SpMV at n={n} ({row_nnz} nnz/row), cold caches",
            ["gather band", "I [F/B]", "P [Gflop/s]", "Q / compulsory"],
        )
        points = []
        results = {}
        narrow_band = max(l2 // 16, 64)  # window well inside L2
        for label, bandwidth in (("narrow (cache-resident)", narrow_band),
                                 ("matrix-wide", 1 << 30)):
            kernel = Spmv(row_nnz=row_nnz, bandwidth=bandwidth)
            m = config.measure(
                "spmv", n, protocol="cold", machine=ref,
                kernel_args={"row_nnz": row_nnz, "bandwidth": bandwidth},
            )
            results[label] = m
            table.add(label, f"{m.intensity:.4f}",
                      f"{m.performance / 1e9:.3f}",
                      f"{m.traffic_ratio:.2f}")
            points.append(KernelPoint.from_measurement(
                m, series=f"spmv {label}"))
        result.tables.append(table)
        result.artifacts["e2_spmv.svg"] = svg_plot(
            model, points=points, title="Roofline: SpMV gather locality"
        )
        narrow = results["narrow (cache-resident)"]
        wide = results["matrix-wide"]
        analytic = kernel.operational_intensity(n)
        result.check(
            "narrow-band intensity matches the analytic value within 40%",
            abs(narrow.intensity - analytic) / analytic < 0.40,
            f"measured {narrow.intensity:.3f} vs analytic {analytic:.3f}",
        )
        result.check(
            "wide gathers inflate traffic well beyond the narrow band",
            wide.traffic_bytes > 1.5 * narrow.traffic_bytes,
            f"{wide.traffic_bytes / narrow.traffic_bytes:.2f}x",
        )
        result.check(
            "gather locality moves performance",
            narrow.performance > 1.3 * wide.performance,
            f"{narrow.performance / wide.performance:.2f}x",
        )
        result.check(
            "SpMV is deeply memory-bound",
            narrow.intensity < 0.5 * model.ridge_intensity,
        )
        return result
