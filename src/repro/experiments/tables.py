"""Experiments T1-T3: the paper's platform and peak tables."""

from __future__ import annotations

from ..bench.peakbw import bandwidth_methods, measure_bandwidth
from ..bench.peakflops import measure_peak_flops
from ..machine.presets import (
    dual_socket_ep,
    haswell_node,
    ivy_bridge_desktop,
    sandy_bridge_ep,
)
from ..units import format_bandwidth, format_bytes, format_flops
from .base import Experiment, ExperimentConfig, ExperimentResult, Table


class PlatformTable(Experiment):
    """T1: machine characteristics (the paper's platform table)."""

    id = "T1"
    title = "Platform characteristics"
    paper_item = "platform table (evaluated machines)"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machines = [
            sandy_bridge_ep(scale=config.scale),
            ivy_bridge_desktop(scale=config.scale),
            haswell_node(scale=config.scale),
            dual_socket_ep(scale=config.scale),
        ]
        table = Table(
            "Simulated platforms",
            ["machine", "sockets x cores", "clock", "SIMD", "FMA",
             "L1d", "L2", "L3/socket", "peak pi (all cores)",
             "peak beta (platform)"],
        )
        for machine in machines:
            spec = machine.spec
            topo = machine.topology
            table.add(
                spec.name,
                f"{topo.sockets} x {topo.cores_per_socket}",
                f"{spec.base_hz / 1e9:.2f} GHz",
                f"{machine.ports.max_simd_width}-bit",
                "yes" if machine.ports.has_fma else "no",
                format_bytes(spec.hierarchy.l1.size_bytes),
                format_bytes(spec.hierarchy.l2.size_bytes),
                format_bytes(spec.hierarchy.l3.size_bytes),
                format_flops(machine.theoretical_peak_flops(
                    cores=topo.total_cores)),
                format_bandwidth(machine.theoretical_peak_bandwidth(
                    topo.sockets)),
            )
        result.tables.append(table)
        snb = machines[0]
        hsw = machines[2]
        result.check(
            "FMA machine has 2x the per-core peak of the SNB machine",
            abs(hsw.theoretical_peak_flops() / hsw.spec.base_hz
                / (snb.theoretical_peak_flops() / snb.spec.base_hz) - 2.0)
            < 1e-9,
        )
        result.check(
            "two-socket platform doubles bandwidth",
            machines[3].theoretical_peak_bandwidth(2)
            == 2 * snb.theoretical_peak_bandwidth(1),
        )
        return result


class PeakFlopsTable(Experiment):
    """T2: measured vs theoretical peak performance."""

    id = "T2"
    title = "Peak computational performance (measured)"
    paper_item = "peak performance table, section 2.1"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        trips = 2048 if config.quick else 16384
        thread_counts = [1, machine.topology.total_cores]
        widths = [w for w in (64, 128, 256)
                  if machine.ports.supports_width(w)]
        table = Table(
            f"Measured peak flop/s on {machine.spec.name}",
            ["SIMD width", "threads", "measured", "theoretical", "efficiency"],
        )
        worst = 1.0
        for width in widths:
            for threads in thread_counts:
                cores = machine.topology.first_cores(threads)
                r = measure_peak_flops(machine, width, cores, trips=trips)
                table.add(
                    f"{width}-bit", threads,
                    format_flops(r.flops_per_second),
                    format_flops(r.theoretical_flops_per_second),
                    f"{r.efficiency:.1%}",
                )
                worst = min(worst, r.efficiency)
        result.tables.append(table)
        result.check(
            "microbenchmark reaches >= 95% of theoretical peak everywhere",
            worst >= 0.95, f"worst efficiency {worst:.1%}",
        )
        result.note(
            "The benchmark is runtime-generated dependency-free FP chains "
            "(balanced add+mul on FMA-less cores), as in the paper."
        )
        return result


class PeakBandwidthTable(Experiment):
    """T3: measured peak bandwidth by method and thread count."""

    id = "T3"
    title = "Peak memory bandwidth (measured)"
    paper_item = "bandwidth table, section 2.2"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        all_cores = machine.topology.total_cores
        n = None
        if config.quick:
            from ..bench.peakbw import default_stream_elements
            n = default_stream_elements(machine) // 2
        table = Table(
            f"Measured bandwidth on {machine.spec.name} (application bytes)",
            ["method", "threads", "measured", "theoretical", "efficiency"],
        )
        values = {}
        for method in bandwidth_methods():
            for threads in (1, all_cores):
                cores = machine.topology.first_cores(threads)
                r = measure_bandwidth(machine, method, cores, n=n, reps=1)
                values[(method, threads)] = r.bytes_per_second
                table.add(
                    method, threads,
                    format_bandwidth(r.bytes_per_second),
                    format_bandwidth(r.theoretical_bytes_per_second),
                    f"{r.efficiency:.1%}",
                )
        result.tables.append(table)
        result.check(
            "non-temporal memset beats write-allocate memset (socket run)",
            values[("memset-nt", all_cores)] > values[("memset", all_cores)],
            f"{values[('memset-nt', all_cores)] / values[('memset', all_cores)]:.2f}x",
        )
        result.check(
            "all-core bandwidth exceeds single-core bandwidth",
            values[("memset-nt", all_cores)] > values[("memset-nt", 1)],
        )
        result.check(
            "socket peak reaches >= 85% of theoretical via NT stores",
            values[("memset-nt", all_cores)]
            >= 0.85 * machine.theoretical_peak_bandwidth(1),
        )
        result.note(
            "As in the paper, the reported beta is the maximum over "
            "independent checks; NT stores win on sockets because they "
            "avoid read-for-ownership."
        )
        return result
