"""Experiments F1, F4-F8: the roofline figures themselves.

Measurement grids are submitted to the sweep engine
(:mod:`repro.sweep`) rather than looped inline: points run under the
config's ``jobs``/``cache`` settings, so repeated experiment runs only
simulate points whose inputs changed.  Size selection lives in
:mod:`repro.sweep.grids`, shared with ``repro sweep --grid``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..measure.runner import Measurement
from ..roofline.analysis import analyze_point
from ..roofline.builder import build_roofline, theoretical_roofline
from ..roofline.export import trajectories_to_csv
from ..roofline.plot_ascii import ascii_plot
from ..roofline.plot_svg import svg_plot
from ..roofline.point import KernelPoint, Trajectory
from ..sweep.grids import (
    DGEMM_VARIANTS,
    daxpy_sizes,
    dgemm_sizes,
    dgemv_sizes,
    fft_sizes,
)
from ..units import round_to
from .base import Experiment, ExperimentConfig, ExperimentResult, Table


def _sweep(config: ExperimentConfig, kernel: str, sizes, protocol,
           series=None, cores=(0,),
           ) -> Tuple[Trajectory, List[Measurement]]:
    """Submit a size sweep and wrap it as a plot trajectory."""
    measurements = config.sweep(kernel, sizes, protocol=protocol,
                                cores=cores)
    name = series or f"{kernel} ({protocol})"
    return Trajectory.from_measurements(name, measurements), measurements


def _points_table(title: str, measurements: Sequence[Measurement]) -> Table:
    table = Table(title, ["kernel", "n", "protocol", "threads",
                          "I [F/B]", "P [Gflop/s]"])
    for m in measurements:
        table.add(m.kernel, m.n, m.protocol, m.threads,
                  f"{m.intensity:.3f}", f"{m.performance / 1e9:.3f}")
    return table


class ExampleRoofline(Experiment):
    """F1: the illustrative roofline (model only, no kernel points)."""

    id = "F1"
    title = "Example roofline model"
    paper_item = "Figure 1 (model illustration)"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        model = theoretical_roofline(machine, threads=1)
        table = Table(
            "Model parameters",
            ["quantity", "value"],
        )
        table.add("peak pi", f"{model.peak_flops / 1e9:.2f} Gflop/s")
        table.add("peak beta", f"{model.peak_bandwidth / 1e9:.2f} GB/s")
        table.add("ridge intensity", f"{model.ridge_intensity:.2f} flops/byte")
        result.tables.append(table)
        result.artifacts["f1_example.svg"] = svg_plot(
            model, title="Example roofline (theoretical)"
        )
        result.artifacts["f1_example.txt"] = ascii_plot(model)
        below = model.attainable(model.ridge_intensity / 10)
        result.check(
            "attainable performance is bandwidth-limited left of the ridge",
            abs(below - model.peak_bandwidth * model.ridge_intensity / 10)
            < 1e-6 * model.peak_flops,
        )
        result.check(
            "attainable performance equals pi right of the ridge",
            model.attainable(model.ridge_intensity * 10) == model.peak_flops,
        )
        return result


class DaxpyRoofline(Experiment):
    """F4: daxpy trajectory across sizes, cold and warm."""

    id = "F4"
    title = "Roofline: daxpy"
    paper_item = "daxpy roofline figure (memory-bound trajectory)"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        hier = machine.spec.hierarchy
        sizes = daxpy_sizes(machine, config.quick)
        model = build_roofline(machine, cores=(0,), trips=4096,
                               stream_elements=round_to(
                                   2 * hier.l3.size_bytes // 8, 64))
        cold_t, cold_m = _sweep(config, "daxpy", sizes, "cold")
        warm_t, warm_m = _sweep(config, "daxpy", sizes, "warm")
        result.tables.append(_points_table("daxpy points", cold_m + warm_m))
        result.artifacts["f4_daxpy.svg"] = svg_plot(
            model, trajectories=[cold_t, warm_t], title="Roofline: daxpy"
        )
        result.artifacts["f4_daxpy.csv"] = trajectories_to_csv(
            [cold_t, warm_t])

        largest_cold = cold_m[-1]
        roof = model.attainable(largest_cold.intensity)
        result.check(
            "DRAM-resident daxpy rides the bandwidth roof (60-135%)",
            0.60 <= largest_cold.performance / roof <= 1.35,
            f"{largest_cold.performance / roof:.0%} of roof",
        )
        result.check(
            "daxpy stays memory-bound at every size",
            all(m.intensity < model.ridge_intensity for m in cold_m),
        )
        result.check(
            "warm cache-resident daxpy outperforms DRAM-resident daxpy",
            warm_m[0].performance > cold_m[-1].performance,
        )
        result.note(
            "Cold memory-bound points can sit slightly above the roof: "
            "measured Q includes prefetch overfetch, pushing I left of the "
            "kernel's useful-traffic intensity — the paper reports the same."
        )
        return result


class DgemvRoofline(Experiment):
    """F5: dgemv, row-major vs column-major layouts."""

    id = "F5"
    title = "Roofline: dgemv (row vs column major)"
    paper_item = "dgemv roofline figure"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        hier = machine.spec.hierarchy
        sizes = dgemv_sizes(machine, config.quick)
        model = build_roofline(machine, cores=(0,), trips=4096,
                               stream_elements=round_to(
                                   2 * hier.l3.size_bytes // 8, 64))
        row_t, row_m = _sweep(config, "dgemv-row", sizes, "cold")
        col_t, col_m = _sweep(config, "dgemv-col", sizes, "cold")
        result.tables.append(_points_table("dgemv points", row_m + col_m))
        result.artifacts["f5_dgemv.svg"] = svg_plot(
            model, trajectories=[row_t, col_t],
            title="Roofline: dgemv row vs column major",
        )
        largest = -1
        result.check(
            "row-major dgemv beats column-major at the largest size",
            row_m[largest].performance > col_m[largest].performance,
            f"{row_m[largest].performance / col_m[largest].performance:.1f}x",
        )
        result.check(
            "dgemv is memory-bound",
            all(m.intensity < model.ridge_intensity for m in row_m),
        )
        result.check(
            "column-major walk inflates traffic beyond row-major",
            col_m[largest].traffic_bytes > row_m[largest].traffic_bytes,
        )
        return result


class DgemmRoofline(Experiment):
    """F6: dgemm implementations approaching the compute roof."""

    id = "F6"
    title = "Roofline: dgemm (naive / ikj / tiled)"
    paper_item = "dgemm roofline figure (compute-bound kernel)"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        sizes = dgemm_sizes(machine, config.quick)
        model = build_roofline(machine, cores=(0,), trips=4096,
                               stream_elements=round_to(
                                   machine.spec.hierarchy.l3.size_bytes // 8,
                                   64))
        trajectories = []
        by_variant = {}
        for variant in DGEMM_VARIANTS:
            vsizes = [n for n in sizes if n % 32 == 0]
            traj, ms = _sweep(config, f"dgemm-{variant}", vsizes, "warm")
            trajectories.append(traj)
            by_variant[variant] = ms
        result.tables.append(_points_table(
            "dgemm points",
            [m for ms in by_variant.values() for m in ms],
        ))
        result.artifacts["f6_dgemm.svg"] = svg_plot(
            model, trajectories=trajectories, title="Roofline: dgemm variants"
        )
        tiled = by_variant["tiled"][-1]
        naive = by_variant["naive"][-1]
        util = tiled.performance / model.peak_flops
        result.check(
            "register-tiled dgemm reaches >= 60% of the compute peak",
            util >= 0.60, f"{util:.0%} of peak",
        )
        result.check(
            "tiled dgemm outperforms naive dgemm",
            tiled.performance > naive.performance,
            f"{tiled.performance / naive.performance:.1f}x",
        )
        result.check(
            "tiled dgemm is compute-bound at the largest size",
            tiled.intensity >= model.ridge_intensity,
            f"I={tiled.intensity:.2f} vs ridge {model.ridge_intensity:.2f}",
        )
        return result


class FftRoofline(Experiment):
    """F7: FFT — intermediate intensity growing with log n."""

    id = "F7"
    title = "Roofline: FFT"
    paper_item = "FFT roofline figure"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        l3 = machine.spec.hierarchy.l3.size_bytes
        sizes = fft_sizes(machine, config.quick)
        model = build_roofline(machine, cores=(0,), trips=4096,
                               stream_elements=round_to(2 * l3 // 8, 64))
        warm_t, warm_m = _sweep(config, "fft", sizes, "warm")
        cold_t, cold_m = _sweep(config, "fft", sizes, "cold")
        result.tables.append(_points_table("fft points", warm_m + cold_m))
        result.artifacts["f7_fft.svg"] = svg_plot(
            model, trajectories=[warm_t, cold_t], title="Roofline: FFT"
        )
        daxpy_like = 2 / 24
        result.check(
            "FFT intensity exceeds BLAS-1 streaming intensity",
            all(m.intensity > daxpy_like for m in cold_m),
        )
        result.check(
            "warm cache-resident FFT achieves higher intensity than cold",
            warm_m[0].intensity > cold_m[0].intensity,
        )
        return result


class ParallelRoofline(Experiment):
    """F8: multithreaded rooflines — dgemm scales, daxpy saturates."""

    id = "F8"
    title = "Parallel rooflines (1 to all cores)"
    paper_item = "multithreaded roofline figures"

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.new_result()
        machine = config.machine()
        hier = machine.spec.hierarchy
        ncores = machine.topology.total_cores
        thread_counts = [1, 2, ncores] if not config.quick else [1, ncores]
        daxpy_n = round_to(4 * hier.l3.size_bytes // 16, 32 * ncores)
        gemm_n = 128 if not config.quick else 64
        table = Table(
            "Scaling with threads",
            ["kernel", "threads", "P [Gflop/s]", "speedup vs 1t"],
        )
        speedups = {}
        points = []
        for kernel, n, protocol in (
            ("daxpy", daxpy_n, "cold"),
            ("dgemm-tiled", gemm_n, "warm"),
        ):
            base = None
            for threads in thread_counts:
                cores = tuple(machine.topology.first_cores(threads))
                m = config.measure(kernel, n, protocol=protocol,
                                   reps=1, cores=cores)
                if base is None:
                    base = m.performance
                speedup = m.performance / base
                speedups[(kernel, threads)] = speedup
                table.add(kernel, threads,
                          f"{m.performance / 1e9:.2f}", f"{speedup:.2f}x")
                points.append(KernelPoint.from_measurement(
                    m, series=f"{kernel} {threads}t"))
        result.tables.append(table)
        model_all = build_roofline(
            machine, cores=machine.topology.first_cores(ncores),
            widths=[machine.ports.max_simd_width], trips=4096,
            stream_elements=round_to(2 * hier.l3.size_bytes // 8, 64 * ncores),
            include_thread_scaling=True,
        )
        result.artifacts["f8_parallel.svg"] = svg_plot(
            model_all, points=points, title="Parallel roofline"
        )
        result.check(
            "compute-bound dgemm scales with cores",
            speedups[("dgemm-tiled", ncores)] >= 0.5 * ncores,
            f"{speedups[('dgemm-tiled', ncores)]:.1f}x on {ncores} cores",
        )
        result.check(
            "memory-bound daxpy saturates well below linear scaling",
            speedups[("daxpy", ncores)] <= 0.75 * ncores,
            f"{speedups[('daxpy', ncores)]:.1f}x on {ncores} cores",
        )
        result.note(
            "Memory-bound kernels gain only the bandwidth headroom one core "
            "cannot reach alone; the paper sees the same rigid-point shift "
            "when moving from one thread to a socket."
        )
        return result
