"""Report generation: run experiments and render EXPERIMENTS.md."""

from __future__ import annotations

import os
import time
from typing import Iterable, List, Optional

from .base import ExperimentConfig, ExperimentResult
from .registry import experiment_ids, make_experiment

_HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure of Ofenbeck et al.,
"Applying the Roofline Model" (ISPASS 2014), on the simulated platform
described in DESIGN.md.  Absolute numbers come from the simulator, so
the comparison is against the paper's *shapes*: each experiment carries
explicit shape checks (who wins, what inflates, where crossovers sit)
whose verdicts are recorded below.

Machines are cache-scaled presets (capacities x{scale}, bandwidths and
latencies unscaled) so the DRAM-resident regime is reached at
simulation-friendly sizes; see DESIGN.md for the substitution table.
"""


def run_experiments(ids: Optional[Iterable[str]] = None,
                    config: Optional[ExperimentConfig] = None,
                    verbose: bool = True) -> List[ExperimentResult]:
    """Run a set of experiments and return their results."""
    config = config or ExperimentConfig()
    results = []
    for experiment_id in (list(ids) if ids else experiment_ids()):
        experiment = make_experiment(experiment_id)
        start = time.time()
        if verbose:
            print(f"[{experiment_id}] {experiment.title} ...", flush=True)
        result = experiment.run(config)
        if verbose:
            status = "ok" if result.passed else "SHAPE-CHECK FAILURES"
            print(f"[{experiment_id}] {status} ({time.time() - start:.1f}s)",
                  flush=True)
        results.append(result)
    return results


def render_report(results: Iterable[ExperimentResult],
                  config: Optional[ExperimentConfig] = None) -> str:
    """EXPERIMENTS.md content for a set of results."""
    config = config or ExperimentConfig()
    parts = [_HEADER.format(scale=config.scale)]
    results = list(results)
    passed = sum(1 for r in results if r.passed)
    parts.append(
        f"**Summary: {passed}/{len(results)} experiments pass all their "
        f"shape checks.**\n"
    )
    for result in results:
        parts.append(result.render())
    return "\n".join(parts)


def write_artifacts(results: Iterable[ExperimentResult],
                    directory: str) -> List[str]:
    """Persist every experiment artifact (SVGs, CSVs) to ``directory``."""
    os.makedirs(directory, exist_ok=True)
    written = []
    for result in results:
        for name, content in result.artifacts.items():
            path = os.path.join(directory, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)
            written.append(path)
    return written
