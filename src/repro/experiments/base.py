"""Experiment framework: one class per paper table/figure.

Every experiment produces tables (the rows the paper reports), shape
*checks* (the qualitative claims that must hold for the reproduction to
count — who wins, what inflates, where crossovers sit), optional plot
artifacts, and free-form notes.  ``report.py`` renders the lot into
EXPERIMENTS.md.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ExperimentError
from ..machine.presets import sandy_bridge_ep


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``scale`` shrinks preset cache capacities (see presets docstring);
    ``quick`` trims sweep sizes and repetitions for test/bench runs.
    """

    scale: float = 0.125
    quick: bool = False
    reps: int = 2
    machine_factory: Optional[Callable] = None

    def machine(self, sockets: int = 1):
        """A fresh machine for this experiment run."""
        if self.machine_factory is not None:
            return self.machine_factory()
        return sandy_bridge_ep(scale=self.scale, sockets=sockets)


@dataclass
class Table:
    """One reported table."""

    title: str
    columns: List[str]
    rows: List[List] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ExperimentError(
                f"row width {len(values)} != {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """GitHub-flavoured markdown."""
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
        return "\n".join(lines)


@dataclass
class Check:
    """One shape criterion with its verdict."""

    name: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"- [{mark}] {self.name}" + (f" — {self.detail}" if self.detail else "")


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    paper_item: str
    tables: List[Table] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    artifacts: Dict[str, str] = field(default_factory=dict)  # name -> content

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(Check(name, bool(passed), detail))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        lines = [f"### {self.experiment_id} — {self.title}",
                 "",
                 f"*Paper item:* {self.paper_item}",
                 ""]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        if self.checks:
            lines.append("**Shape checks**")
            lines.append("")
            lines.extend(c.render() for c in self.checks)
            lines.append("")
        for note in self.notes:
            lines.append(f"> {note}")
            lines.append("")
        return "\n".join(lines)


class Experiment(ABC):
    """Base class: subclasses define id/title/paper_item and run()."""

    id: str = "X0"
    title: str = "abstract"
    paper_item: str = ""

    @abstractmethod
    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """Execute and return results (must not mutate global state)."""

    def new_result(self) -> ExperimentResult:
        return ExperimentResult(self.id, self.title, self.paper_item)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id})"
