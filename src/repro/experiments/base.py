"""Experiment framework: one class per paper table/figure.

Every experiment produces tables (the rows the paper reports), shape
*checks* (the qualitative claims that must hold for the reproduction to
count — who wins, what inflates, where crossovers sit), optional plot
artifacts, and free-form notes.  ``report.py`` renders the lot into
EXPERIMENTS.md.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..machine.ref import MachineRef
from ..measure.runner import Measurement
from ..sweep.cache import SweepCache
from ..sweep.executor import SweepStats, run_plan
from ..sweep.plan import SweepPlan


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``scale`` shrinks preset cache capacities (see presets docstring);
    ``quick`` trims sweep sizes and repetitions for test/bench runs.

    The platform is described by a picklable :class:`MachineRef`
    (preset name + kwargs), *not* a factory callable: experiment
    measurement grids run through the sweep engine, whose worker
    processes rebuild machines from the ref.  ``machine_ref=None``
    means the default paper platform (Sandy Bridge-EP at ``scale``).

    ``jobs`` fans measurement points over a process pool (``None``
    defers to ``$REPRO_SWEEP_JOBS``, then serial); ``cache`` memoises
    every point in the content-addressed on-disk sweep cache so
    re-running an experiment only simulates points whose inputs
    changed.  ``stats``, when set, accumulates cache hit/miss counters
    across every sweep the experiments submit.  ``backend`` picks the
    sweep execution backend (a name from
    :data:`~repro.sweep.backends.BACKEND_NAMES` or an instance);
    ``None`` keeps the classic jobs-driven serial/pool choice.
    """

    scale: float = 0.125
    quick: bool = False
    reps: int = 2
    machine_ref: Optional[MachineRef] = None
    jobs: Optional[int] = None
    cache: bool = True
    cache_dir: Optional[str] = None
    backend: Optional[object] = None
    stats: Optional[SweepStats] = field(default=None, repr=False,
                                        compare=False)

    # ------------------------------------------------------------------
    # platform access
    # ------------------------------------------------------------------
    def ref(self, sockets: int = 1,
            scale: Optional[float] = None) -> MachineRef:
        """The platform as a picklable recipe.

        A custom ``machine_ref`` wins outright; ``sockets``/``scale``
        parameterise only the default preset (experiments that need a
        different geometry on a custom platform build their own ref).
        """
        if self.machine_ref is not None:
            return self.machine_ref
        options = {"scale": scale if scale is not None else self.scale}
        if sockets != 1:
            options["sockets"] = sockets
        return MachineRef.of("snb-ep", **options)

    def machine(self, sockets: int = 1):
        """A fresh live machine for this experiment run."""
        return self.ref(sockets=sockets).build()

    # ------------------------------------------------------------------
    # measurement through the sweep engine
    # ------------------------------------------------------------------
    def sweep_cache(self) -> Optional[SweepCache]:
        return SweepCache(self.cache_dir) if self.cache else None

    def run_plan(self, plan: SweepPlan) -> List[Measurement]:
        """Execute a plan under this config's jobs/cache/backend."""
        run = run_plan(plan, jobs=self.jobs, cache=self.sweep_cache(),
                       stats=self.stats, backend=self.backend)
        return run.measurements

    def sweep(self, kernel: str, sizes: Sequence[int],
              protocol: str = "cold", reps: Optional[int] = None,
              cores: Tuple[int, ...] = (0,),
              machine: Optional[MachineRef] = None,
              kernel_args: Optional[dict] = None) -> List[Measurement]:
        """Measure one kernel across sizes (a roofline trajectory)."""
        plan = SweepPlan()
        plan.add_sweep(machine or self.ref(), kernel, sizes,
                       protocol=protocol,
                       reps=self.reps if reps is None else reps,
                       cores=cores, kernel_args=kernel_args)
        return self.run_plan(plan)

    def measure(self, kernel: str, n: int, protocol: str = "cold",
                reps: Optional[int] = None, cores: Tuple[int, ...] = (0,),
                machine: Optional[MachineRef] = None,
                kernel_args: Optional[dict] = None) -> Measurement:
        """Measure a single point through the same engine (cached too)."""
        return self.sweep(kernel, [n], protocol=protocol, reps=reps,
                          cores=cores, machine=machine,
                          kernel_args=kernel_args)[0]


@dataclass
class Table:
    """One reported table."""

    title: str
    columns: List[str]
    rows: List[List] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ExperimentError(
                f"row width {len(values)} != {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """GitHub-flavoured markdown."""
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
        return "\n".join(lines)


@dataclass
class Check:
    """One shape criterion with its verdict."""

    name: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"- [{mark}] {self.name}" + (f" — {self.detail}" if self.detail else "")


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    paper_item: str
    tables: List[Table] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    artifacts: Dict[str, str] = field(default_factory=dict)  # name -> content

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(Check(name, bool(passed), detail))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        lines = [f"### {self.experiment_id} — {self.title}",
                 "",
                 f"*Paper item:* {self.paper_item}",
                 ""]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        if self.checks:
            lines.append("**Shape checks**")
            lines.append("")
            lines.extend(c.render() for c in self.checks)
            lines.append("")
        for note in self.notes:
            lines.append(f"> {note}")
            lines.append("")
        return "\n".join(lines)


class Experiment(ABC):
    """Base class: subclasses define id/title/paper_item and run()."""

    id: str = "X0"
    title: str = "abstract"
    paper_item: str = ""

    @abstractmethod
    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """Execute and return results (must not mutate global state)."""

    def new_result(self) -> ExperimentResult:
        return ExperimentResult(self.id, self.title, self.paper_item)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id})"
