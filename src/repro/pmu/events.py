"""Performance-monitoring event definitions.

Event ids are short snake_case strings used throughout the library; each
carries the Intel event name the paper programs, so reports can show
the hardware-level provenance of every measured quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import PmuError

SCOPE_CORE = "core"
SCOPE_UNCORE = "uncore"


@dataclass(frozen=True)
class EventDef:
    """One programmable event."""

    id: str
    intel_name: str
    scope: str
    description: str


_EVENTS: List[EventDef] = [
    # --- core FP events (the W counters; overcount artifact applies) ---
    EventDef("fp_scalar_f64", "FP_COMP_OPS_EXE.SSE_SCALAR_DOUBLE", SCOPE_CORE,
             "scalar double-precision FP instruction executions"),
    EventDef("fp_128_f64", "FP_COMP_OPS_EXE.SSE_PACKED_DOUBLE", SCOPE_CORE,
             "128-bit packed double FP instruction executions"),
    EventDef("fp_256_f64", "SIMD_FP_256.PACKED_DOUBLE", SCOPE_CORE,
             "256-bit packed double FP instruction executions"),
    EventDef("fp_512_f64", "FP_ARITH_INST_RETIRED.512B_PACKED_DOUBLE", SCOPE_CORE,
             "512-bit packed double FP instruction executions"),
    EventDef("fp_scalar_f32", "FP_COMP_OPS_EXE.SSE_SCALAR_SINGLE", SCOPE_CORE,
             "scalar single-precision FP instruction executions"),
    EventDef("fp_128_f32", "FP_COMP_OPS_EXE.SSE_PACKED_SINGLE", SCOPE_CORE,
             "128-bit packed single FP instruction executions"),
    EventDef("fp_256_f32", "SIMD_FP_256.PACKED_SINGLE", SCOPE_CORE,
             "256-bit packed single FP instruction executions"),
    EventDef("fp_512_f32", "FP_ARITH_INST_RETIRED.512B_PACKED_SINGLE", SCOPE_CORE,
             "512-bit packed single FP instruction executions"),
    # --- core execution events ---
    EventDef("cycles", "CPU_CLK_UNHALTED.THREAD", SCOPE_CORE,
             "unhalted core cycles"),
    EventDef("instructions", "INST_RETIRED.ANY", SCOPE_CORE,
             "retired instructions"),
    # --- core cache events ---
    EventDef("l1_accesses", "L1D.ALL_REF", SCOPE_CORE,
             "demand line accesses resolved by the data-cache hierarchy"),
    EventDef("l1_replacement", "L1D.REPLACEMENT", SCOPE_CORE,
             "lines brought into L1D"),
    EventDef("l2_lines_in", "L2_LINES_IN.ALL", SCOPE_CORE,
             "lines brought into L2"),
    EventDef("llc_misses", "LONGEST_LAT_CACHE.MISS", SCOPE_CORE,
             "demand misses at the last-level cache"),
    EventDef("dtlb_walks", "DTLB_LOAD_MISSES.WALK_COMPLETED", SCOPE_CORE,
             "completed data-TLB page walks"),
    # --- uncore IMC events (the Q counters) ---
    EventDef("imc_cas_reads", "UNC_M_CAS_COUNT.RD", SCOPE_UNCORE,
             "64-byte DRAM read CAS commands"),
    EventDef("imc_cas_writes", "UNC_M_CAS_COUNT.WR", SCOPE_UNCORE,
             "64-byte DRAM write CAS commands"),
]

_BY_ID: Dict[str, EventDef] = {e.id: e for e in _EVENTS}
_BY_INTEL: Dict[str, EventDef] = {e.intel_name: e for e in _EVENTS}

#: events the work-measurement driver programs, with the flop multiplier
#: (lanes) applied when converting instruction executions to flops
FP_EVENT_LANES_F64: Tuple[Tuple[str, int], ...] = (
    ("fp_scalar_f64", 1),
    ("fp_128_f64", 2),
    ("fp_256_f64", 4),
    ("fp_512_f64", 8),
)

FP_EVENT_LANES_F32: Tuple[Tuple[str, int], ...] = (
    ("fp_scalar_f32", 2),
    ("fp_128_f32", 4),
    ("fp_256_f32", 8),
    ("fp_512_f32", 16),
)

_WIDTH_PRECISION_TO_EVENT: Dict[Tuple[int, str], str] = {
    (64, "f64"): "fp_scalar_f64",
    (128, "f64"): "fp_128_f64",
    (256, "f64"): "fp_256_f64",
    (512, "f64"): "fp_512_f64",
    (64, "f32"): "fp_scalar_f32",
    (128, "f32"): "fp_128_f32",
    (256, "f32"): "fp_256_f32",
    (512, "f32"): "fp_512_f32",
}


def event(event_id: str) -> EventDef:
    """Look up an event by id or Intel name."""
    if event_id in _BY_ID:
        return _BY_ID[event_id]
    if event_id in _BY_INTEL:
        return _BY_INTEL[event_id]
    raise PmuError(f"unknown PMU event {event_id!r}")


def all_events(scope: str = None) -> List[EventDef]:
    """All defined events, optionally filtered by scope."""
    if scope is None:
        return list(_EVENTS)
    if scope not in (SCOPE_CORE, SCOPE_UNCORE):
        raise PmuError(f"unknown scope {scope!r}")
    return [e for e in _EVENTS if e.scope == scope]


def fp_event_for(width_bits: int, precision: str) -> str:
    """Event id counting FP instructions of one width/precision."""
    try:
        return _WIDTH_PRECISION_TO_EVENT[(width_bits, precision)]
    except KeyError as exc:
        raise PmuError(
            f"no FP event for width={width_bits}, precision={precision!r}"
        ) from exc
