"""Per-core performance counters.

The counters are incremented by the interpreter as it executes — FP
events at *issue* granularity (which is what makes the reissue
overcount artifact possible), cache events from the functional
hierarchy, cycles from the timing model.
"""

from __future__ import annotations

from typing import Dict

from ..errors import PmuError
from .events import SCOPE_CORE, event, fp_event_for


class CorePmu:
    """Monotonic counter bank of one core."""

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self._counters: Dict[str, int] = {}

    def add(self, event_id: str, count: int) -> None:
        """Bump a core-scope counter."""
        if count < 0:
            raise PmuError(f"negative increment {count} for {event_id}")
        if event(event_id).scope != SCOPE_CORE:
            raise PmuError(f"{event_id} is not a core event")
        self._counters[event_id] = self._counters.get(event_id, 0) + count

    def add_fp(self, width_bits: int, precision: str,
               instr_count: int, is_fma: bool = False) -> None:
        """Count FP instruction executions.

        A retired FMA bumps the counter by two — the behaviour verified
        on real hardware (one increment per fused operation), which is
        what keeps flop derivation exact for FMA code.
        """
        increments = instr_count * (2 if is_fma else 1)
        self.add(fp_event_for(width_bits, precision), increments)

    def read(self, event_id: str) -> int:
        """Current value (0 if never incremented)."""
        if event(event_id).scope != SCOPE_CORE:
            raise PmuError(f"{event_id} is not a core event")
        return self._counters.get(event_id, 0)

    def snapshot(self) -> Dict[str, int]:
        """Copy of all counters (for delta computation)."""
        return dict(self._counters)

    def reset(self) -> None:
        self._counters.clear()

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self._counters.items() if v}
        return f"CorePmu(core={self.core_id}, {nonzero})"
