"""Counter multiplexing: what happens when you program more events than
the PMU has programmable slots.

Real cores have a handful of programmable counters (four per thread on
the paper's Sandy Bridge).  ``perf`` silently *time-multiplexes* larger
event sets: groups rotate onto the hardware on a timer, each event is
counted only while its group is scheduled, and the reported value is
scaled by observed/enabled time.  For bursty workloads (exactly what a
measurement window around one kernel is) the uniform-activity
assumption behind the scaling breaks and estimates go wrong.

The paper's methodology implicitly avoids this: its W measurement needs
exactly the four FP events, which fit the four slots.  This module
makes the hazard measurable: :class:`MultiplexedPerfSession` snapshots
counters at every run boundary (the machine notifies registered
sessions), applies a deterministic rotation schedule, and reports both
the scaled estimate and the ground truth, so experiment A3 can show the
error and its dependence on the rotation quantum.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import PmuError
from .events import SCOPE_CORE, event

#: programmable counters per core on the simulated machines
DEFAULT_SLOTS = 4


def _chunk(items: List[str], size: int) -> List[List[str]]:
    return [items[i:i + size] for i in range(0, len(items), size)]


class MultiplexedPerfSession:
    """A perf-like session with slot-limited, time-rotated event groups.

    Usage mirrors :class:`~repro.pmu.perf.PerfSession`; after the window
    closes, :meth:`estimate` returns the scaled (perf-style) value and
    :meth:`true_delta` the ground truth the simulator knows.
    """

    def __init__(self, machine, core_events: Iterable[str],
                 cores: Iterable[int] = (0,), slots: int = DEFAULT_SLOTS,
                 rotation_cycles: float = 100_000.0) -> None:
        self.machine = machine
        self.core_events = list(core_events)
        for event_id in self.core_events:
            if event(event_id).scope != SCOPE_CORE:
                raise PmuError(f"{event_id} is not a core event")
        if slots <= 0:
            raise PmuError("need at least one programmable slot")
        if rotation_cycles <= 0:
            raise PmuError("rotation quantum must be positive")
        self.cores = tuple(cores)
        self.slots = slots
        self.rotation_cycles = rotation_cycles
        self.groups = _chunk(self.core_events, slots)
        self._snapshots: List[Tuple[float, Dict[Tuple[int, str], int]]] = []
        self._open = False
        self._closed = False

    # ------------------------------------------------------------------
    # window control
    # ------------------------------------------------------------------
    def _snapshot(self) -> None:
        values = {}
        for core in self.cores:
            pmu = self.machine.core_pmu(core)
            for event_id in self.core_events:
                values[(core, event_id)] = pmu.read(event_id)
        self._snapshots.append((self.machine.tsc, values))

    def __enter__(self) -> "MultiplexedPerfSession":
        if self._open or self._closed:
            raise PmuError("multiplexed sessions are single-use")
        self._open = True
        self.machine.register_session(self)
        self._snapshot()
        return self

    def on_run_boundary(self) -> None:
        """Called by the machine after every program run."""
        if self._open:
            self._snapshot()

    def __exit__(self, exc_type, exc, tb) -> None:
        self._snapshot()
        self.machine.unregister_session(self)
        self._open = False
        self._closed = True

    # ------------------------------------------------------------------
    # rotation schedule
    # ------------------------------------------------------------------
    def _scheduled_fraction(self, group_index: int,
                            t0: float, t1: float) -> float:
        """Fraction of ``[t0, t1)`` during which ``group_index`` owned
        the hardware counters under round-robin rotation."""
        if t1 <= t0:
            return 0.0
        n_groups = len(self.groups)
        if n_groups == 1:
            return 1.0
        quantum = self.rotation_cycles
        period = quantum * n_groups
        scheduled = 0.0
        # walk whole periods analytically, edges exactly
        first_period = math.floor(t0 / period)
        last_period = math.floor((t1 - 1e-9) / period)
        for k in range(int(first_period), int(last_period) + 1):
            window_lo = k * period + group_index * quantum
            window_hi = window_lo + quantum
            scheduled += max(0.0, min(t1, window_hi) - max(t0, window_lo))
        return scheduled / (t1 - t0)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _require_closed(self) -> None:
        if not self._closed:
            raise PmuError("session window not closed yet")

    def _group_of(self, event_id: str) -> int:
        for index, group in enumerate(self.groups):
            if event_id in group:
                return index
        raise PmuError(f"{event_id} was not programmed in this session")

    def true_delta(self, event_id: str, core: Optional[int] = None) -> int:
        """Ground-truth delta over the whole window."""
        self._require_closed()
        self._group_of(event_id)
        cores = self.cores if core is None else (core,)
        first, last = self._snapshots[0][1], self._snapshots[-1][1]
        return sum(last[(c, event_id)] - first[(c, event_id)] for c in cores)

    def estimate(self, event_id: str, core: Optional[int] = None) -> float:
        """The perf-style scaled estimate: counts observed while the
        event's group was scheduled, divided by the scheduled fraction.
        Assumes uniform activity *within* each run interval — the
        assumption that breaks on bursty windows."""
        self._require_closed()
        group = self._group_of(event_id)
        cores = self.cores if core is None else (core,)
        observed = 0.0
        scheduled_time = 0.0
        total_time = 0.0
        for (t0, before), (t1, after) in zip(self._snapshots,
                                             self._snapshots[1:]):
            fraction = self._scheduled_fraction(group, t0, t1)
            delta = sum(after[(c, event_id)] - before[(c, event_id)]
                        for c in cores)
            observed += delta * fraction
            scheduled_time += fraction * (t1 - t0)
            total_time += t1 - t0
        if scheduled_time <= 0.0:
            raise PmuError(
                f"group {group} was never scheduled during the window; "
                "shrink the rotation quantum"
            )
        return observed * total_time / scheduled_time

    def estimate_error(self, event_id: str) -> float:
        """Relative error of the multiplexed estimate vs ground truth."""
        true = self.true_delta(event_id)
        if true == 0:
            return 0.0
        return (self.estimate(event_id) - true) / true

    @property
    def multiplexing(self) -> bool:
        """Whether the event set actually exceeds the slots."""
        return len(self.groups) > 1
