"""Uncore (IMC) counter access with platform background noise.

The IMC counters observe *everything* crossing a node's memory
controller — the evaluated kernel, other processes, the OS.  The paper
handles this by measuring a setup-only run and subtracting.  To keep
that protocol honest the simulated uncore injects a small deterministic
background-traffic rate proportional to elapsed TSC cycles, so naive
single-run measurements are visibly polluted while the subtraction
protocol recovers the kernel's true traffic.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import PmuError
from ..memory.dram import DramNode
from .events import SCOPE_UNCORE, event


class UncorePmu:
    """IMC counter view over the machine's DRAM nodes."""

    def __init__(self, dram_nodes: List[DramNode],
                 noise_lines_per_megacycle: float = 20.0,
                 noise_read_fraction: float = 0.65) -> None:
        if noise_lines_per_megacycle < 0:
            raise PmuError("background noise rate cannot be negative")
        if not 0.0 <= noise_read_fraction <= 1.0:
            raise PmuError("noise read fraction must be within [0, 1]")
        self._nodes = dram_nodes
        self.noise_lines_per_megacycle = noise_lines_per_megacycle
        self._noise_read_fraction = noise_read_fraction

    def _noise_lines(self, tsc: float, reads: bool) -> int:
        total = self.noise_lines_per_megacycle * tsc / 1e6
        share = self._noise_read_fraction if reads else 1.0 - self._noise_read_fraction
        return int(total * share)

    def read(self, event_id: str, tsc: float, node: Optional[int] = None) -> int:
        """Counter value as software would read it at time ``tsc``.

        ``node=None`` sums across nodes (a whole-platform read).
        """
        if event(event_id).scope != SCOPE_UNCORE:
            raise PmuError(f"{event_id} is not an uncore event")
        nodes = self._nodes if node is None else [self._node(node)]
        if event_id == "imc_cas_reads":
            raw = sum(n.counters.cas_reads for n in nodes)
            noise = self._noise_lines(tsc, reads=True) * len(nodes)
        else:
            raw = sum(n.counters.cas_writes for n in nodes)
            noise = self._noise_lines(tsc, reads=False) * len(nodes)
        return raw + noise

    def _node(self, node: int) -> DramNode:
        if not 0 <= node < len(self._nodes):
            raise PmuError(f"no DRAM node {node}")
        return self._nodes[node]

    @property
    def node_count(self) -> int:
        return len(self._nodes)
