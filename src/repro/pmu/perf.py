"""A ``perf``-like measurement session.

The paper reads counters around the kernel under test (and, for the
uncore, goes through the same syscall interface ``perf`` uses).  A
:class:`PerfSession` is the equivalent here: it snapshots the selected
core and uncore counters on entry and exit and exposes the deltas.

Usage::

    with PerfSession(machine, core_events=("fp_256_f64",),
                     uncore_events=("imc_cas_reads", "imc_cas_writes"),
                     cores=(0,)) as session:
        machine.run(loaded, core_id=0)
    flops = 4 * session.core_delta("fp_256_f64")
    q = 64 * (session.uncore_delta("imc_cas_reads")
              + session.uncore_delta("imc_cas_writes"))
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..errors import PmuError
from ..trace.events import COUNTERS, TraceEvent
from .events import SCOPE_CORE, SCOPE_UNCORE, event


class PerfSession:
    """Counter deltas over a measurement window on one machine."""

    def __init__(self, machine, core_events: Iterable[str] = (),
                 uncore_events: Iterable[str] = (),
                 cores: Optional[Iterable[int]] = None) -> None:
        self.machine = machine
        self.core_events = tuple(core_events)
        self.uncore_events = tuple(uncore_events)
        for event_id in self.core_events:
            if event(event_id).scope != SCOPE_CORE:
                raise PmuError(f"{event_id} is not a core event")
        for event_id in self.uncore_events:
            if event(event_id).scope != SCOPE_UNCORE:
                raise PmuError(f"{event_id} is not an uncore event")
        self.cores = tuple(cores) if cores is not None else tuple(
            range(machine.topology.total_cores)
        )
        self._start_core: Dict[Tuple[int, str], int] = {}
        self._end_core: Dict[Tuple[int, str], int] = {}
        self._start_uncore: Dict[str, int] = {}
        self._end_uncore: Dict[str, int] = {}
        self._start_tsc: float = 0.0
        self._end_tsc: float = 0.0
        self._open = False
        self._closed = False

    # ------------------------------------------------------------------
    # window control
    # ------------------------------------------------------------------
    def __enter__(self) -> "PerfSession":
        if self._open or self._closed:
            raise PmuError("PerfSession windows are single-use")
        self._open = True
        self._start_tsc = self.machine.tsc
        for core in self.cores:
            pmu = self.machine.core_pmu(core)
            for event_id in self.core_events:
                self._start_core[(core, event_id)] = pmu.read(event_id)
        for event_id in self.uncore_events:
            self._start_uncore[event_id] = self.machine.uncore.read(
                event_id, self._start_tsc
            )
        self._emit_snapshot("session:begin", self._start_core,
                            self._start_uncore, self._start_tsc)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._end_tsc = self.machine.tsc
        for core in self.cores:
            pmu = self.machine.core_pmu(core)
            for event_id in self.core_events:
                self._end_core[(core, event_id)] = pmu.read(event_id)
        for event_id in self.uncore_events:
            self._end_uncore[event_id] = self.machine.uncore.read(
                event_id, self._end_tsc
            )
        self._emit_snapshot("session:end", self._end_core,
                            self._end_uncore, self._end_tsc)
        self._open = False
        self._closed = True

    def _emit_snapshot(self, name: str, core_values, uncore_values,
                       tsc: float) -> None:
        """Publish a counter snapshot on the machine's trace bus."""
        bus = getattr(self.machine, "trace", None)
        if bus is None or not bus.enabled:
            return
        args: Dict[str, float] = {"tsc": tsc}
        for (core, event_id), value in core_values.items():
            args[f"core{core}.{event_id}"] = value
        for event_id, value in uncore_values.items():
            args[f"uncore.{event_id}"] = value
        bus.emit(TraceEvent(COUNTERS, name, tsc, args=args))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _require_closed(self) -> None:
        if not self._closed:
            raise PmuError("session window not closed yet")

    def core_delta(self, event_id: str, core: Optional[int] = None) -> int:
        """Delta of one core event (summed over cores when ``core=None``)."""
        self._require_closed()
        if event_id not in self.core_events:
            raise PmuError(f"{event_id} was not programmed in this session")
        cores = self.cores if core is None else (core,)
        total = 0
        for c in cores:
            if (c, event_id) not in self._end_core:
                raise PmuError(f"core {c} was not monitored")
            total += self._end_core[(c, event_id)] - self._start_core[(c, event_id)]
        return total

    def uncore_delta(self, event_id: str) -> int:
        """Delta of one uncore event (whole platform)."""
        self._require_closed()
        if event_id not in self.uncore_events:
            raise PmuError(f"{event_id} was not programmed in this session")
        return self._end_uncore[event_id] - self._start_uncore[event_id]

    @property
    def tsc_delta(self) -> float:
        """Elapsed TSC cycles over the window."""
        self._require_closed()
        return self._end_tsc - self._start_tsc
