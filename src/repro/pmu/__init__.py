"""Simulated performance-monitoring units: core counters (with the
Sandy Bridge FP overcount artifact), uncore IMC counters (with platform
background noise), and a perf-like session API."""

from .core_pmu import CorePmu
from .events import (
    FP_EVENT_LANES_F32,
    FP_EVENT_LANES_F64,
    SCOPE_CORE,
    SCOPE_UNCORE,
    EventDef,
    all_events,
    event,
    fp_event_for,
)
from .multiplex import DEFAULT_SLOTS, MultiplexedPerfSession
from .perf import PerfSession
from .uncore import UncorePmu

__all__ = [
    "CorePmu",
    "DEFAULT_SLOTS",
    "MultiplexedPerfSession",
    "EventDef",
    "FP_EVENT_LANES_F32",
    "FP_EVENT_LANES_F64",
    "PerfSession",
    "SCOPE_CORE",
    "SCOPE_UNCORE",
    "UncorePmu",
    "all_events",
    "event",
    "fp_event_for",
]
