/* Compiled datapath kernel for the fast engine (array-state machines).
 *
 * This is a statement-for-statement transliteration of the inlined
 * dict-LRU loop in repro/engine/datapath.py (_execute_inline and
 * _single_miss), operating on the numpy array state shared with the
 * Python side:
 *
 *   - Cache array backend (memory/cache.py): tags / dirty / stamp
 *     per (set, way), LRU as a monotone stamp; victim = smallest stamp
 *     among all-valid ways, empty ways (tag == -1) fill first.
 *   - ArrayTlb (memory/tlb.py): fully-associative page arrays with
 *     stamp-LRU replicating the dict insertion-order recency.
 *   - Array prefetcher tables (prefetch/arraystate.py).
 *   - PrefetchedSet (memory/prefetched.py): open-addressing int64 hash,
 *     -1 empty / -2 tombstone; capacity is ensured by Python before
 *     every call, so this side never grows the table.
 *
 * All counters are accumulated into the `out` array; the Python caller
 * applies them to BatchStats / CacheStats / TlbStats / PrefetchStats /
 * IMC counters exactly as the inline loop's flush epilogue does.
 * Per-home DRAM traffic accumulates into ctx->homes (nnodes x 4:
 * [demand_reads, prefetch_reads, writes, remote_lines]).
 *
 * The equivalence contract (cross-engine conformance fuzz and
 * tests/engine) gates this file counter-for-counter against the
 * reference interpreter.
 */

#include <stdint.h>

/* out[] layout -- keep in sync with OUT_* in engine/ckernel.py */
enum {
    O_ACC, O_L1H, O_L2H, O_L3H, O_DRD, O_WBK, O_NTL,
    O_E1, O_E2, O_E3, O_SWP, O_HWI, O_PFR, O_PFU, O_REM, O_FLS,
    O_TLBM, O_TLBW, O_DACC,
    O_C1F, O_C1D, O_C1I, O_C2F, O_C2D, O_C2I,
    O_C3H, O_C3M, O_C3F, O_C3D, O_C3I,
    O_OCC1, O_OCC2, O_OCC3,
    O_NLI, O_SMI, O_STI, O_USEFUL,
    O_TACC, O_T1H, O_T2H, O_TWALK,
    O_COUNT
};

/* run_meta[] per-run layout -- keep in sync with engine/plan.py */
enum { RM_OP, RM_HOME, RM_REMOTE, RM_OFF, RM_N, RM_SID, RM_FIELDS };

typedef struct {
    /* caches: 0 = L1, 1 = L2, 2 = L3 */
    int64_t *tags[3];
    uint8_t *dirty[3];
    int64_t *stamp[3];
    int64_t  set_mask[3];
    int64_t  assoc[3];
    /* TLB */
    int64_t *tlb1_pages, *tlb1_stamp;
    int64_t *tlb2_pages, *tlb2_stamp;
    int64_t *tlb_regs;            /* [tick, l1_count, l2_count] */
    int64_t  tlb1_entries, tlb2_entries, walk_latency;
    /* prefetched-line hash set */
    int64_t *pf_slots;
    int64_t *pf_regs;             /* [size, tombstones] */
    int64_t  pf_mask;
    /* stride table */
    int64_t *st_keys, *st_last, *st_strd, *st_conf, *st_lruv, *st_regs;
    int64_t  st_sites, st_deg, st_thr, st_maxs;
    /* stream table */
    int64_t *sm_keys, *sm_last, *sm_dirn, *sm_conf, *sm_front,
            *sm_lruv, *sm_regs;
    int64_t  sm_trackers, sm_deg, sm_dist, sm_thr, sm_lpp;
    /* next-line */
    int64_t  nl_lpp;
    /* port */
    int64_t  page_shift;
    /* per-call enable flags (MSR mask) */
    int64_t  nl_on, sm_on, st_on;
    /* shared scalar registers: [l1_tick, l2_tick, l3_tick, last_page] */
    int64_t *regs;
    /* per-home DRAM accumulators, nnodes x 4 */
    int64_t *homes;
} Ctx;

/* ------------------------------------------------------------------ */
/* cache primitives (array backend semantics)                          */
/* ------------------------------------------------------------------ */

static inline int64_t way_find(const Ctx *c, int l, int64_t set,
                               int64_t line) {
    const int64_t *t = c->tags[l] + set * c->assoc[l];
    int64_t a = c->assoc[l];
    for (int64_t w = 0; w < a; w++)
        if (t[w] == line)
            return w;
    return -1;
}

static inline void touch(Ctx *c, int l, int64_t set, int64_t way) {
    c->regs[l] += 1;
    c->stamp[l][set * c->assoc[l] + way] = c->regs[l];
}

/* insert an absent line; returns 1 when a victim was evicted
 * (ev_line/ev_dirty set), 0 when an empty way was used (occupancy
 * grows at the caller) */
static int fill_absent(Ctx *c, int l, int64_t line, int dirty,
                       int64_t *ev_line, int *ev_dirty) {
    int64_t set = line & c->set_mask[l];
    int64_t a = c->assoc[l];
    int64_t *t = c->tags[l] + set * a;
    uint8_t *d = c->dirty[l] + set * a;
    int64_t way = -1;
    for (int64_t w = 0; w < a; w++)
        if (t[w] == -1) { way = w; break; }
    int evicted = 0;
    if (way < 0) {
        int64_t *s = c->stamp[l] + set * a;
        way = 0;
        for (int64_t w = 1; w < a; w++)
            if (s[w] < s[way])
                way = w;
        *ev_line = t[way];
        *ev_dirty = d[way];
        evicted = 1;
    }
    t[way] = line;
    d[way] = (uint8_t)dirty;
    touch(c, l, set, way);
    return evicted;
}

/* drop a line; returns -1 absent, else its dirty flag (0/1) */
static int cache_invalidate(Ctx *c, int l, int64_t line) {
    int64_t set = line & c->set_mask[l];
    int64_t w = way_find(c, l, set, line);
    if (w < 0)
        return -1;
    int64_t i = set * c->assoc[l] + w;
    int dirty = c->dirty[l][i];
    c->tags[l][i] = -1;
    c->dirty[l][i] = 0;
    return dirty;
}

static inline int contains(const Ctx *c, int l, int64_t line) {
    return way_find(c, l, line & c->set_mask[l], line) >= 0;
}

/* ------------------------------------------------------------------ */
/* prefetched-line hash set                                            */
/* ------------------------------------------------------------------ */

static inline int64_t pf_home(int64_t line, int64_t mask) {
    uint64_t h = (uint64_t)line * 0x9E3779B97F4A7C15ULL;
    return (int64_t)((h >> 32) & (uint64_t)mask);
}

static void pf_add(Ctx *c, int64_t line) {
    int64_t mask = c->pf_mask;
    int64_t *s = c->pf_slots;
    int64_t i = pf_home(line, mask);
    int64_t first_tomb = -1;
    for (;;) {
        int64_t v = s[i];
        if (v == line)
            return;
        if (v == -1)
            break;
        if (v == -2 && first_tomb < 0)
            first_tomb = i;
        i = (i + 1) & mask;
    }
    if (first_tomb >= 0) {
        s[first_tomb] = line;
        c->pf_regs[1] -= 1;
    } else {
        s[i] = line;
    }
    c->pf_regs[0] += 1;
}

/* returns 1 when the line was present (and is now removed) */
static int pf_discard(Ctx *c, int64_t line) {
    int64_t mask = c->pf_mask;
    int64_t *s = c->pf_slots;
    int64_t i = pf_home(line, mask);
    for (;;) {
        int64_t v = s[i];
        if (v == line) {
            s[i] = -2;
            c->pf_regs[0] -= 1;
            c->pf_regs[1] += 1;
            return 1;
        }
        if (v == -1)
            return 0;
        i = (i + 1) & mask;
    }
}

/* ------------------------------------------------------------------ */
/* TLB (ArrayTlb semantics)                                            */
/* ------------------------------------------------------------------ */

static void tlb_fill(Ctx *c, int64_t page) {
    int64_t *r = c->tlb_regs;
    if (r[1] >= c->tlb1_entries) {
        /* L1 full -> every slot valid; smallest stamp is the dict head */
        int64_t v = 0;
        for (int64_t k = 1; k < c->tlb1_entries; k++)
            if (c->tlb1_stamp[k] < c->tlb1_stamp[v])
                v = k;
        int64_t victim = c->tlb1_pages[v];
        c->tlb1_pages[v] = -1;
        r[1] -= 1;
        if (r[2] >= c->tlb2_entries) {
            int64_t w = 0;
            for (int64_t k = 1; k < c->tlb2_entries; k++)
                if (c->tlb2_stamp[k] < c->tlb2_stamp[w])
                    w = k;
            c->tlb2_pages[w] = -1;
            r[2] -= 1;
        }
        int64_t f = 0;
        while (c->tlb2_pages[f] != -1)
            f++;
        r[0] += 1;
        c->tlb2_pages[f] = victim;
        c->tlb2_stamp[f] = r[0];
        r[2] += 1;
    }
    int64_t f = 0;
    while (c->tlb1_pages[f] != -1)
        f++;
    r[0] += 1;
    c->tlb1_pages[f] = page;
    c->tlb1_stamp[f] = r[0];
    r[1] += 1;
}

static int64_t tlb_translate(Ctx *c, int64_t page, int64_t *o) {
    o[O_TACC] += 1;
    for (int64_t k = 0; k < c->tlb1_entries; k++)
        if (c->tlb1_pages[k] == page) {
            c->tlb_regs[0] += 1;
            c->tlb1_stamp[k] = c->tlb_regs[0];
            o[O_T1H] += 1;
            return 0;
        }
    for (int64_t k = 0; k < c->tlb2_entries; k++)
        if (c->tlb2_pages[k] == page) {
            c->tlb2_pages[k] = -1;
            c->tlb_regs[2] -= 1;
            o[O_T2H] += 1;
            tlb_fill(c, page);
            return 0;
        }
    o[O_TWALK] += 1;
    tlb_fill(c, page);
    return c->walk_latency;
}

static inline void page_check(Ctx *c, int64_t line, int64_t *o) {
    int64_t page = line >> c->page_shift;
    if (page != c->regs[3]) {
        c->regs[3] = page;
        int64_t walk = tlb_translate(c, page, o);
        if (walk) {
            o[O_TLBM] += 1;
            o[O_TLBW] += walk;
        }
    }
}

/* ------------------------------------------------------------------ */
/* fill / writeback chains (CorePort._absorb_dirty inlines)            */
/* ------------------------------------------------------------------ */

static void absorb_l3(Ctx *c, int64_t line, int64_t home, int64_t *o) {
    int64_t set = line & c->set_mask[2];
    int64_t w = way_find(c, 2, set, line);
    if (w >= 0) {
        /* mark-dirty absorption: no recency touch */
        c->dirty[2][set * c->assoc[2] + w] = 1;
        return;
    }
    o[O_C3F] += 1;
    int64_t evl;
    int evd;
    if (fill_absent(c, 2, line, 1, &evl, &evd)) {
        o[O_E3] += 1;
        if (evd) {
            o[O_C3D] += 1;
            o[O_WBK] += 1;
            c->homes[home * 4 + 2] += 1;
        }
    } else {
        o[O_OCC3] += 1;
    }
}

static void absorb_l2(Ctx *c, int64_t line, int64_t home, int64_t *o) {
    int64_t set = line & c->set_mask[1];
    int64_t w = way_find(c, 1, set, line);
    if (w >= 0) {
        c->dirty[1][set * c->assoc[1] + w] = 1;
        return;
    }
    o[O_C2F] += 1;
    int64_t evl;
    int evd;
    if (fill_absent(c, 1, line, 1, &evl, &evd)) {
        o[O_E2] += 1;
        if (evd) {
            o[O_C2D] += 1;
            absorb_l3(c, evl, home, o);
        }
    } else {
        o[O_OCC2] += 1;
    }
}

/* one non-resident hw-prefetch candidate's fill chain (the body of
 * CorePort._hw_prefetch past its residency skip) */
static void hw_fill(Ctx *c, int64_t line, int64_t home, int64_t *o) {
    o[O_HWI] += 1;
    int64_t set3 = line & c->set_mask[2];
    int64_t w = way_find(c, 2, set3, line);
    int64_t evl;
    int evd;
    if (w >= 0) {
        touch(c, 2, set3, w);
        o[O_C3H] += 1;
    } else {
        o[O_C3M] += 1;
        o[O_PFR] += 1;
        c->homes[home * 4 + 1] += 1;
        o[O_C3F] += 1;
        if (fill_absent(c, 2, line, 0, &evl, &evd)) {
            o[O_E3] += 1;
            if (evd) {
                o[O_C3D] += 1;
                o[O_WBK] += 1;
                c->homes[home * 4 + 2] += 1;
            }
        } else {
            o[O_OCC3] += 1;
        }
    }
    /* fill L2 (absent: resident lines were skipped by the caller) */
    o[O_C2F] += 1;
    if (fill_absent(c, 1, line, 0, &evl, &evd)) {
        o[O_E2] += 1;
        if (evd) {
            o[O_C2D] += 1;
            absorb_l3(c, evl, home, o);
        }
    } else {
        o[O_OCC2] += 1;
    }
    pf_add(c, line);
}

/* ------------------------------------------------------------------ */
/* prefetch engines (array-table semantics, identical to observe())    */
/* ------------------------------------------------------------------ */

static void nl_observe(Ctx *c, int64_t line, int64_t home, int64_t *o) {
    int64_t nxt = line + 1;
    if (nxt % c->nl_lpp == 0)
        return; /* never crosses a page */
    o[O_NLI] += 1;
    if (contains(c, 1, nxt) || contains(c, 0, nxt))
        return;
    hw_fill(c, nxt, home, o);
}

static void sm_observe(Ctx *c, int64_t line, int64_t home, int64_t *o) {
    c->sm_regs[0] += 1;
    int64_t page = line / c->sm_lpp;
    int64_t n = c->sm_trackers, i = -1;
    for (int64_t k = 0; k < n; k++)
        if (c->sm_keys[k] == page) { i = k; break; }
    if (i < 0) {
        if (c->sm_regs[1] >= n) {
            int64_t v = 0;
            for (int64_t k = 1; k < n; k++)
                if (c->sm_lruv[k] < c->sm_lruv[v])
                    v = k;
            c->sm_keys[v] = -1;
            c->sm_regs[1] -= 1;
        }
        int64_t f = 0;
        while (c->sm_keys[f] != -1)
            f++;
        c->sm_keys[f] = page;
        c->sm_last[f] = line;
        c->sm_dirn[f] = 0;
        c->sm_conf[f] = 0;
        c->sm_front[f] = line;
        c->sm_lruv[f] = c->sm_regs[0];
        c->sm_regs[1] += 1;
        return;
    }
    c->sm_lruv[i] = c->sm_regs[0];
    int64_t delta = line - c->sm_last[i];
    c->sm_last[i] = line;
    if (delta == 0)
        return;
    int64_t dirn = delta > 0 ? 1 : -1;
    if (dirn == c->sm_dirn[i]) {
        c->sm_conf[i] += 1;
    } else {
        c->sm_dirn[i] = dirn;
        c->sm_conf[i] = 1;
        c->sm_front[i] = line;
    }
    if (c->sm_conf[i] < c->sm_thr)
        return;
    int64_t pfirst = page * c->sm_lpp;
    if (dirn > 0) {
        int64_t start = c->sm_front[i] + 1;
        if (start < line + 1)
            start = line + 1;
        int64_t end = line + c->sm_dist;
        int64_t plast = pfirst + c->sm_lpp - 1;
        if (end > plast)
            end = plast;
        int64_t cnt = end - start + 1;
        if (cnt > 0) {
            if (cnt > c->sm_deg)
                cnt = c->sm_deg;
            end = start + cnt - 1;
            c->sm_front[i] = end;
            o[O_SMI] += cnt;
            for (int64_t p = start; p <= end; p++) {
                if (contains(c, 1, p) || contains(c, 0, p))
                    continue;
                hw_fill(c, p, home, o);
            }
        }
    } else {
        int64_t start = c->sm_front[i] - 1;
        if (start > line - 1)
            start = line - 1;
        int64_t end = line - c->sm_dist;
        if (end < pfirst)
            end = pfirst;
        int64_t cnt = start - end + 1;
        if (cnt > 0) {
            if (cnt > c->sm_deg)
                cnt = c->sm_deg;
            end = start - cnt + 1;
            c->sm_front[i] = end;
            o[O_SMI] += cnt;
            for (int64_t p = start; p >= end; p--) {
                if (contains(c, 1, p) || contains(c, 0, p))
                    continue;
                hw_fill(c, p, home, o);
            }
        }
    }
}

static void st_observe(Ctx *c, int64_t line, int64_t sid, int64_t home,
                       int64_t *o) {
    c->st_regs[0] += 1;
    int64_t n = c->st_sites, i = -1;
    for (int64_t k = 0; k < n; k++)
        if (c->st_keys[k] == sid) { i = k; break; }
    if (i < 0) {
        if (c->st_regs[1] >= n) {
            int64_t v = 0;
            for (int64_t k = 1; k < n; k++)
                if (c->st_lruv[k] < c->st_lruv[v])
                    v = k;
            c->st_keys[v] = -1;
            c->st_regs[1] -= 1;
        }
        int64_t f = 0;
        while (c->st_keys[f] != -1)
            f++;
        c->st_keys[f] = sid;
        c->st_last[f] = line;
        c->st_strd[f] = 0;
        c->st_conf[f] = 0;
        c->st_lruv[f] = c->st_regs[0];
        c->st_regs[1] += 1;
        return;
    }
    c->st_lruv[i] = c->st_regs[0];
    int64_t d = line - c->st_last[i];
    c->st_last[i] = line;
    if (d == 0 || d > c->st_maxs || d < -c->st_maxs) {
        c->st_conf[i] = 0;
        c->st_strd[i] = 0;
        return;
    }
    if (d == c->st_strd[i]) {
        c->st_conf[i] += 1;
    } else {
        c->st_strd[i] = d;
        c->st_conf[i] = 1;
    }
    if (c->st_conf[i] < c->st_thr)
        return;
    int64_t deg = c->st_deg;
    if (line + d * deg < 0) {
        /* some candidate underflows line 0: filtered slow path */
        for (int64_t k = 1; k <= deg; k++) {
            int64_t p = line + d * k;
            if (p < 0)
                continue;
            o[O_STI] += 1;
            if (contains(c, 1, p) || contains(c, 0, p))
                continue;
            hw_fill(c, p, home, o);
        }
        return;
    }
    o[O_STI] += deg;
    int64_t p = line;
    for (int64_t k = 0; k < deg; k++) {
        p += d;
        if (contains(c, 1, p) || contains(c, 0, p))
            continue;
        hw_fill(c, p, home, o);
    }
}

/* ------------------------------------------------------------------ */
/* per-line op bodies                                                  */
/* ------------------------------------------------------------------ */

static void demand_line(Ctx *c, int64_t line, int64_t sid, int is_write,
                        int64_t home, int remote, int64_t *o) {
    o[O_ACC] += 1;
    o[O_DACC] += 1;
    page_check(c, line, o);
    int64_t set1 = line & c->set_mask[0];
    int64_t w1 = way_find(c, 0, set1, line);
    if (w1 >= 0) {
        touch(c, 0, set1, w1);
        if (is_write)
            c->dirty[0][set1 * c->assoc[0] + w1] = 1;
        o[O_L1H] += 1;
        /* only the IP-stride engine trains on hits */
        if (c->st_on)
            st_observe(c, line, sid, home, o);
        return;
    }
    int64_t evl;
    int evd;
    int64_t set2 = line & c->set_mask[1];
    int64_t w2 = way_find(c, 1, set2, line);
    if (w2 >= 0) {
        touch(c, 1, set2, w2);
        o[O_L2H] += 1;
        if (pf_discard(c, line)) {
            o[O_PFU] += 1;
            o[O_USEFUL] += 1; /* every enabled engine's useful++ */
        }
    } else {
        int64_t set3 = line & c->set_mask[2];
        int64_t w3 = way_find(c, 2, set3, line);
        if (w3 >= 0) {
            touch(c, 2, set3, w3);
            o[O_L3H] += 1;
            if (pf_discard(c, line))
                o[O_PFU] += 1;
        } else {
            o[O_DRD] += 1;
            c->homes[home * 4 + 0] += 1;
            if (remote) {
                o[O_REM] += 1;
                c->homes[home * 4 + 3] += 1;
            }
            /* fill L3 (absent) */
            if (fill_absent(c, 2, line, 0, &evl, &evd)) {
                o[O_E3] += 1;
                if (evd) {
                    o[O_C3D] += 1;
                    o[O_WBK] += 1;
                    c->homes[home * 4 + 2] += 1;
                }
            } else {
                o[O_OCC3] += 1;
            }
        }
        /* fill L2 (absent: the L2 miss branch) */
        if (fill_absent(c, 1, line, 0, &evl, &evd)) {
            o[O_E2] += 1;
            if (evd) {
                o[O_C2D] += 1;
                absorb_l3(c, evl, home, o);
            }
        } else {
            o[O_OCC2] += 1;
        }
    }
    /* fill L1 (absent: the L1 miss branch) */
    if (fill_absent(c, 0, line, is_write, &evl, &evd)) {
        o[O_E1] += 1;
        if (evd) {
            o[O_C1D] += 1;
            absorb_l2(c, evl, home, o);
        }
    } else {
        o[O_OCC1] += 1;
    }
    if (c->nl_on)
        nl_observe(c, line, home, o);
    if (c->sm_on)
        sm_observe(c, line, home, o);
    if (c->st_on)
        st_observe(c, line, sid, home, o);
}

static void swpf_line(Ctx *c, int64_t line, int64_t home, int64_t *o) {
    if (contains(c, 0, line))
        return;
    int64_t evl;
    int evd;
    if (!contains(c, 1, line)) {
        int64_t set3 = line & c->set_mask[2];
        int64_t w = way_find(c, 2, set3, line);
        if (w >= 0) {
            touch(c, 2, set3, w);
            o[O_C3H] += 1;
        } else {
            o[O_C3M] += 1;
            o[O_PFR] += 1;
            c->homes[home * 4 + 1] += 1;
            o[O_C3F] += 1;
            if (fill_absent(c, 2, line, 0, &evl, &evd)) {
                o[O_E3] += 1;
                if (evd) {
                    o[O_C3D] += 1;
                    o[O_WBK] += 1;
                    c->homes[home * 4 + 2] += 1;
                }
            } else {
                o[O_OCC3] += 1;
            }
        }
        o[O_C2F] += 1;
        if (fill_absent(c, 1, line, 0, &evl, &evd)) {
            o[O_E2] += 1;
            if (evd) {
                o[O_C2D] += 1;
                absorb_l3(c, evl, home, o);
            }
        } else {
            o[O_OCC2] += 1;
        }
    }
    /* fill L1 clean (absent: resident lines returned above) */
    o[O_C1F] += 1;
    if (fill_absent(c, 0, line, 0, &evl, &evd)) {
        o[O_E1] += 1;
        if (evd) {
            o[O_C1D] += 1;
            absorb_l2(c, evl, home, o);
        }
    } else {
        o[O_OCC1] += 1;
    }
    pf_add(c, line);
}

static void flush_line(Ctx *c, int64_t line, int64_t home, int64_t *o) {
    int dirty = 0, d;
    if ((d = cache_invalidate(c, 0, line)) >= 0) {
        o[O_C1I] += 1;
        o[O_OCC1] -= 1;
        dirty |= d;
    }
    if ((d = cache_invalidate(c, 1, line)) >= 0) {
        o[O_C2I] += 1;
        o[O_OCC2] -= 1;
        dirty |= d;
    }
    if ((d = cache_invalidate(c, 2, line)) >= 0) {
        o[O_C3I] += 1;
        o[O_OCC3] -= 1;
        dirty |= d;
    }
    if (dirty) {
        o[O_WBK] += 1;
        c->homes[home * 4 + 2] += 1;
    }
}

static void nt_line(Ctx *c, int64_t line, int64_t *o) {
    page_check(c, line, o);
    if (cache_invalidate(c, 0, line) >= 0) {
        o[O_C1I] += 1;
        o[O_OCC1] -= 1;
    }
    if (cache_invalidate(c, 1, line) >= 0) {
        o[O_C2I] += 1;
        o[O_OCC2] -= 1;
    }
    if (cache_invalidate(c, 2, line) >= 0) {
        o[O_C3I] += 1;
        o[O_OCC3] -= 1;
    }
}

/* ------------------------------------------------------------------ */
/* entry points                                                        */
/* ------------------------------------------------------------------ */

int64_t repro_ctx_size(void) { return (int64_t)sizeof(Ctx); }

int64_t repro_execute_plan(Ctx *c, int64_t nruns, const int64_t *meta,
                           const int64_t *lines, const int64_t *sids,
                           int64_t *o) {
    for (int64_t i = 0; i < O_COUNT; i++)
        o[i] = 0;
    for (int64_t r = 0; r < nruns; r++) {
        const int64_t *m = meta + r * RM_FIELDS;
        int64_t op = m[RM_OP];
        int64_t home = m[RM_HOME];
        int remote = (int)m[RM_REMOTE];
        int64_t off = m[RM_OFF];
        int64_t n = m[RM_N];
        int64_t sid_mode = m[RM_SID];
        const int64_t *L = lines + off;
        if (n <= 0)
            continue;
        if (op <= 1) {
            int is_write = op == 1;
            if (sid_mode >= 0) {
                for (int64_t k = 0; k < n; k++)
                    demand_line(c, L[k], sid_mode, is_write, home,
                                remote, o);
            } else {
                const int64_t *S = sids + off;
                for (int64_t k = 0; k < n; k++)
                    demand_line(c, L[k], S[k], is_write, home, remote, o);
            }
        } else if (op == 3) {
            o[O_SWP] += n;
            for (int64_t k = 0; k < n; k++)
                swpf_line(c, L[k], home, o);
        } else if (op == 4) {
            o[O_FLS] += n;
            for (int64_t k = 0; k < n; k++)
                flush_line(c, L[k], home, o);
        } else { /* op == 2: non-temporal store */
            o[O_ACC] += n;
            o[O_NTL] += n;
            c->homes[home * 4 + 2] += n;
            if (remote) {
                o[O_REM] += n;
                c->homes[home * 4 + 3] += n;
            }
            for (int64_t k = 0; k < n; k++)
                nt_line(c, L[k], o);
        }
    }
    return 0;
}

int64_t repro_execute_single(Ctx *c, int64_t line, int64_t is_write,
                             int64_t home, int64_t remote, int64_t *o) {
    for (int64_t i = 0; i < O_COUNT; i++)
        o[i] = 0;
    demand_line(c, line, 0, (int)is_write, home, (int)remote, o);
    return 0;
}
