"""Two-tier execution engine: compiled access plans + batched datapath.

* the **compile tier** (:mod:`repro.engine.plan`) lowers a flat loop's
  memory sites into a reusable, cached :class:`AccessPlan`;
* the **execute tier** (:mod:`repro.engine.datapath`) streams a plan
  through the memory hierarchy with the per-line work inlined and
  counters flushed in bulk.

``engine="fast"`` (the default everywhere) uses both tiers;
``engine="reference"`` keeps the original per-line dispatch path.  The
two are counter-for-counter identical — see ``docs/ENGINE.md`` for the
equivalence argument and the conformance gates that enforce it.
"""

from ..errors import ConfigurationError
from .datapath import BatchDatapath
from .plan import (
    SYMBOLIC_REGISTRY,
    AccessPlan,
    PackedPlan,
    PlanCache,
    PlanCacheStats,
    PlanSegment,
    SymbolicPlan,
    SymbolicRegistry,
)

#: valid engine selectors, in CLI/choice order
ENGINES = ("fast", "reference")


def validate_engine(engine: str) -> str:
    """Return ``engine`` or raise for an unknown selector."""
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown execution engine {engine!r}; choose from {list(ENGINES)}"
        )
    return engine


__all__ = [
    "ENGINES",
    "SYMBOLIC_REGISTRY",
    "AccessPlan",
    "BatchDatapath",
    "PackedPlan",
    "PlanCache",
    "PlanCacheStats",
    "PlanSegment",
    "SymbolicPlan",
    "SymbolicRegistry",
    "validate_engine",
]
