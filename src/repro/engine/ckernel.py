"""Loader for the compiled datapath kernel (``_ckernel.c``).

The kernel is a single translation unit with no Python.h dependency,
compiled on demand with the system C compiler into a shared object
cached under ``~/.cache/repro-ckernel/`` (override with
``REPRO_CKERNEL_CACHE``), keyed by the source sha256 so stale binaries
can never be picked up.  Loading is best-effort: any failure — no
compiler, sandboxed filesystem, unsupported platform — degrades to
``lib() is None`` and the engine falls back to the pure-Python
datapath.  ``REPRO_CKERNEL=0`` disables the kernel outright (used by
the conformance suite to exercise the fallback).

The ctypes :class:`Ctx` mirrors the C struct field for field; every
member is 8 bytes wide, so the layouts agree without padding concerns.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

_SRC = Path(__file__).with_name("_ckernel.c")

#: out[] layout — keep in sync with the O_* enum in _ckernel.c
OUT_FIELDS = (
    "acc", "l1h", "l2h", "l3h", "drd", "wbk", "ntl",
    "e1", "e2", "e3", "swp", "hwi", "pfr", "pfu", "rem", "fls",
    "tlbm", "tlbw", "dacc",
    "c1f", "c1d", "c1i", "c2f", "c2d", "c2i",
    "c3h", "c3m", "c3f", "c3d", "c3i",
    "occ1", "occ2", "occ3",
    "nli", "smi", "sti", "useful",
    "tacc", "t1h", "t2h", "twalk",
)
OUT = {name: i for i, name in enumerate(OUT_FIELDS)}
OUT_COUNT = len(OUT_FIELDS)

#: run_meta[] per-run layout — keep in sync with the RM_* enum
RM_OP, RM_HOME, RM_REMOTE, RM_OFF, RM_N, RM_SID = range(6)
RM_FIELDS = 6

_c64 = ctypes.c_int64
_cp = ctypes.c_void_p


class Ctx(ctypes.Structure):
    """Mirror of the C ``Ctx`` struct (all members 8 bytes)."""

    _fields_ = [
        ("tags", _cp * 3),
        ("dirty", _cp * 3),
        ("stamp", _cp * 3),
        ("set_mask", _c64 * 3),
        ("assoc", _c64 * 3),
        ("tlb1_pages", _cp), ("tlb1_stamp", _cp),
        ("tlb2_pages", _cp), ("tlb2_stamp", _cp),
        ("tlb_regs", _cp),
        ("tlb1_entries", _c64), ("tlb2_entries", _c64),
        ("walk_latency", _c64),
        ("pf_slots", _cp), ("pf_regs", _cp), ("pf_mask", _c64),
        ("st_keys", _cp), ("st_last", _cp), ("st_strd", _cp),
        ("st_conf", _cp), ("st_lruv", _cp), ("st_regs", _cp),
        ("st_sites", _c64), ("st_deg", _c64), ("st_thr", _c64),
        ("st_maxs", _c64),
        ("sm_keys", _cp), ("sm_last", _cp), ("sm_dirn", _cp),
        ("sm_conf", _cp), ("sm_front", _cp), ("sm_lruv", _cp),
        ("sm_regs", _cp),
        ("sm_trackers", _c64), ("sm_deg", _c64), ("sm_dist", _c64),
        ("sm_thr", _c64), ("sm_lpp", _c64),
        ("nl_lpp", _c64),
        ("page_shift", _c64),
        ("nl_on", _c64), ("sm_on", _c64), ("st_on", _c64),
        ("regs", _cp), ("homes", _cp),
    ]


_lib = None
_tried = False


def _compile(src: Path, dest: Path) -> bool:
    dest.parent.mkdir(parents=True, exist_ok=True)
    cc = os.environ.get("CC", "gcc")
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(dest.parent))
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, str(src)],
            capture_output=True, timeout=120,
        )
        if proc.returncode != 0:
            return False
        os.replace(tmp, dest)  # atomic: concurrent builders race safely
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass


def lib() -> Optional[ctypes.CDLL]:
    """The loaded kernel, or None when unavailable (cached per process)."""
    global _lib, _tried
    if _tried:
        return _lib
    _tried = True
    if os.environ.get("REPRO_CKERNEL", "1") == "0":
        return None
    try:
        source = _SRC.read_bytes()
    except OSError:
        return None
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache_dir = Path(os.environ.get(
        "REPRO_CKERNEL_CACHE",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-ckernel"),
    ))
    so = cache_dir / f"ckernel-{digest}.so"
    if not so.exists() and not _compile(_SRC, so):
        return None
    try:
        loaded = ctypes.CDLL(str(so))
    except OSError:
        return None
    loaded.repro_ctx_size.restype = _c64
    loaded.repro_ctx_size.argtypes = []
    if loaded.repro_ctx_size() != ctypes.sizeof(Ctx):
        return None  # struct layout drift between C and ctypes
    loaded.repro_execute_plan.argtypes = [
        ctypes.POINTER(Ctx), _c64, _cp, _cp, _cp, _cp,
    ]
    loaded.repro_execute_plan.restype = _c64
    loaded.repro_execute_single.argtypes = [
        ctypes.POINTER(Ctx), _c64, _c64, _c64, _c64, _cp,
    ]
    loaded.repro_execute_single.restype = _c64
    _lib = loaded
    return _lib


def available() -> bool:
    return lib() is not None
